//! De-duplication (paper §3.1.4), including the shard routing that lets
//! the engine run many de-duplicators in parallel.
//!
//! Two passes, in the paper's order:
//!
//! 1. **Exact body** — a dox whose body byte-equals a previously seen dox
//!    is a duplicate (214 files, 3.9 %, in the paper).
//! 2. **Account set** — a dox whose extracted OSN account set is non-empty
//!    and identical to a previously seen dox's set targets the same victim
//!    (788 files, 14.2 %). The paper "saw no instances of dox files which
//!    had overlapping but non-identical sets".
//!
//! A third, optional fuzzy pass (SimHash near-duplicate detection) is
//! provided for the ablation benchmarks; it is **off** in the paper
//! configuration.
//!
//! ## Sharding
//!
//! [`Deduplicator`] is stateful and order-sensitive, which is why the
//! original pipeline ran it serially. But the state two documents share is
//! fully determined by their *routing signature* ([`shard_signature`]):
//! the account-set key when one is extracted, otherwise the body hash.
//! Extraction is a pure function of the body, so byte-identical bodies
//! always carry identical account sets — every pair of documents that
//! could ever match lands on the same signature, and therefore on the
//! same shard under [`shard_of`]. Running one `Deduplicator` per shard
//! over each shard's documents *in stream order* yields verdicts
//! bit-identical to one global deduplicator over the whole stream.

use dox_extract::record::ExtractedDox;
use dox_osn::network::Network;
use dox_store::{Store, Table};
use dox_textkit::hashing::fnv1a;
use dox_textkit::similarity::{hamming, simhash};
use serde::{Deserialize, Serialize};
// dox-lint:allow(determinism) see the field-level justifications on `Deduplicator`
use std::collections::HashMap;
use std::sync::Arc;

/// Why a document was marked a duplicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DuplicateKind {
    /// Byte-identical body.
    ExactBody,
    /// Identical extracted OSN account set.
    AccountSet,
    /// SimHash near-duplicate (optional third pass).
    Fuzzy,
}

// The vendored serde cannot derive `Deserialize`; checkpoints round-trip
// dedup state by hand.
impl serde::Deserialize for DuplicateKind {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        match value.as_str()? {
            "ExactBody" => Some(DuplicateKind::ExactBody),
            "AccountSet" => Some(DuplicateKind::AccountSet),
            "Fuzzy" => Some(DuplicateKind::Fuzzy),
            _ => None,
        }
    }
}

/// The stable routing signature of one classified dox: the hash of its
/// non-empty account-set key, else the hash of its body.
///
/// Two documents that the §3.1.4 rules could ever pair (equal bodies or
/// equal non-empty account sets) always produce the same signature, so
/// routing by `signature % shards` never splits a duplicate pair across
/// de-duplication shards.
pub fn shard_signature(body: &str, extracted: &ExtractedDox) -> u64 {
    let key = extracted.account_set_key();
    if key.is_empty() {
        fnv1a(body.as_bytes())
    } else {
        account_set_signature(&key)
    }
}

/// The stable hash of a (sorted) account-set key.
pub fn account_set_signature(key: &[(Network, String)]) -> u64 {
    let mut bytes = Vec::with_capacity(key.len() * 16);
    for (network, handle) in key {
        bytes.extend_from_slice(network.name().as_bytes());
        bytes.push(0x1F);
        bytes.extend_from_slice(handle.as_bytes());
        bytes.push(0x1E);
    }
    fnv1a(&bytes)
}

/// The shard a signature routes to, for an `shards`-way split.
pub fn shard_of(signature: u64, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard counts are validated at engine build");
    (signature % shards.max(1) as u64) as usize
}

/// Injective byte encoding of an account-set key, used as the store key
/// for spilled entries. Length-prefixed so handles containing separator
/// bytes can never alias a different set.
pub fn account_set_key_bytes(key: &[(Network, String)]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(key.len() * 24);
    for (network, handle) in key {
        let name = network.name().as_bytes();
        bytes.extend_from_slice(&(name.len() as u32).to_le_bytes());
        bytes.extend_from_slice(name);
        bytes.extend_from_slice(&(handle.len() as u32).to_le_bytes());
        bytes.extend_from_slice(handle.as_bytes());
    }
    bytes
}

/// Configuration for store-backed dedup spill, handed to
/// [`SessionBuilder::spill`](crate::SessionBuilder::spill).
#[derive(Debug, Clone)]
pub struct DedupSpillConfig {
    /// The store every shard spills into (distinct tables per shard).
    pub store: Arc<Store>,
    /// In-memory entry cap per shard; past it, entries drain to the
    /// store and memory is cleared.
    pub cap_entries: usize,
}

/// Store-backed overflow for one [`Deduplicator`] shard.
///
/// Lookups go memory-first, then to the shard's store tables; when the
/// in-memory maps grow past `cap_entries`, everything drains to the
/// store and memory starts empty again. Store appends are buffered in
/// memory until the owning coordinator calls
/// [`Store::checkpoint`], so the dedup hot path never does file I/O.
///
/// Verdicts are unaffected: the union of memory and store entries is
/// exactly what the unbounded in-memory maps would hold, and a key is
/// never present in both (inserts happen only after both lookups miss).
#[derive(Debug)]
pub struct DedupSpill {
    bodies: Table<u64, u64>,
    sets: Table<Vec<u8>, u64>,
    cap_entries: usize,
}

impl DedupSpill {
    /// Spill for shard `shard`, capped at `cap_entries` in-memory
    /// entries. Shards get disjoint tables so they stay isolated.
    pub fn new(store: Arc<Store>, shard: usize, cap_entries: usize) -> Self {
        Self {
            bodies: Table::new(Arc::clone(&store), &format!("dedup.bodies.{shard}")),
            sets: Table::new(store, &format!("dedup.sets.{shard}")),
            cap_entries,
        }
    }
}

/// Streaming de-duplicator.
///
/// ```
/// use dox_engine::dedup::{Deduplicator, DuplicateKind};
/// use dox_extract::extract;
///
/// let body = "Name: A Person\nfb: a.person9";
/// let record = extract(body);
/// let mut dedup = Deduplicator::new();
/// assert!(dedup.check(1, body, &record).is_none(), "first sighting");
/// assert_eq!(
///     dedup.check(2, body, &record),
///     Some((DuplicateKind::ExactBody, 1))
/// );
/// ```
#[derive(Debug, Default)]
pub struct Deduplicator {
    /// Hash of every body seen → first doc id.
    // dox-lint:allow(determinism) lookup-only map, never iterated; inserts follow commit order
    bodies: HashMap<u64, u64>,
    /// Account-set key → first doc id.
    // dox-lint:allow(determinism) lookup-only map, never iterated; inserts follow commit order
    account_sets: HashMap<Vec<(Network, String)>, u64>,
    /// SimHashes of seen docs (only consulted when fuzzy matching is on).
    simhashes: Vec<(u64, u64)>,
    /// Store-backed overflow; `None` keeps the classic all-in-memory
    /// behaviour.
    spill: Option<DedupSpill>,
    /// Enable the fuzzy third pass with this Hamming threshold.
    pub fuzzy_threshold: Option<u32>,
    /// Counters per kind.
    pub counts: DedupCounts,
}

/// Duplicate counters, for the Figure 1 funnel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupCounts {
    /// Documents checked.
    pub total: u64,
    /// Exact-body duplicates found.
    pub exact: u64,
    /// Account-set duplicates found.
    pub account_set: u64,
    /// Fuzzy duplicates found (0 in the paper configuration).
    pub fuzzy: u64,
}

impl serde::Deserialize for DedupCounts {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(DedupCounts {
            total: value.get("total")?.as_u64()?,
            exact: value.get("exact")?.as_u64()?,
            account_set: value.get("account_set")?.as_u64()?,
            fuzzy: value.get("fuzzy")?.as_u64()?,
        })
    }
}

/// A serializable snapshot of one [`Deduplicator`]'s state.
///
/// The live deduplicator keys its maps by hash for speed; the snapshot
/// flattens them into **sorted** entry lists so the serialized form is a
/// pure function of the state (the hash maps iterate in nondeterministic
/// order) and checkpoint files stay byte-stable across runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DedupSnapshot {
    /// `(body hash, first doc id)` pairs, sorted by hash.
    pub bodies: Vec<(u64, u64)>,
    /// `(account-set key, first doc id)` pairs, sorted by key.
    pub account_sets: Vec<(Vec<(Network, String)>, u64)>,
    /// SimHashes of seen docs, insertion order (only non-empty when the
    /// fuzzy pass is on, which the engine never enables).
    pub simhashes: Vec<(u64, u64)>,
    /// Fuzzy threshold, when the third pass is enabled.
    pub fuzzy_threshold: Option<u32>,
    /// Counters per kind.
    pub counts: DedupCounts,
}

impl serde::Deserialize for DedupSnapshot {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        use serde::value::Value;
        let u64_pair = |v: &Value| {
            let pair = v.as_array()?;
            Some((pair.first()?.as_u64()?, pair.get(1)?.as_u64()?))
        };
        Some(DedupSnapshot {
            bodies: value
                .get("bodies")?
                .as_array()?
                .iter()
                .map(u64_pair)
                .collect::<Option<Vec<_>>>()?,
            account_sets: value
                .get("account_sets")?
                .as_array()?
                .iter()
                .map(|entry| {
                    let entry = entry.as_array()?;
                    let key = entry
                        .first()?
                        .as_array()?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_array()?;
                            Some((
                                Network::from_value(pair.first()?)?,
                                pair.get(1)?.as_str()?.to_string(),
                            ))
                        })
                        .collect::<Option<Vec<_>>>()?;
                    Some((key, entry.get(1)?.as_u64()?))
                })
                .collect::<Option<Vec<_>>>()?,
            simhashes: value
                .get("simhashes")?
                .as_array()?
                .iter()
                .map(u64_pair)
                .collect::<Option<Vec<_>>>()?,
            fuzzy_threshold: match value.get("fuzzy_threshold")? {
                Value::Null => None,
                other => Some(u32::try_from(other.as_u64()?).ok()?),
            },
            counts: DedupCounts::from_value(value.get("counts")?)?,
        })
    }
}

impl DedupCounts {
    /// All duplicates.
    pub fn duplicates(&self) -> u64 {
        self.exact + self.account_set + self.fuzzy
    }

    /// Documents surviving dedup.
    pub fn unique(&self) -> u64 {
        self.total - self.duplicates()
    }
}

impl Deduplicator {
    /// A deduplicator in the paper configuration (no fuzzy pass).
    pub fn new() -> Self {
        Self::default()
    }

    /// A deduplicator with the fuzzy SimHash pass enabled.
    ///
    /// The fuzzy pass matches on body similarity alone, which the routing
    /// signature does not preserve — a fuzzy deduplicator is only sound
    /// unsharded. The engine always builds paper-configuration (non-fuzzy)
    /// deduplicators; the fuzzy pass exists for the sequential ablation
    /// benchmarks.
    pub fn with_fuzzy(threshold: u32) -> Self {
        Self {
            fuzzy_threshold: Some(threshold),
            ..Self::default()
        }
    }

    /// Capture this deduplicator's state as a stable snapshot (entries
    /// sorted, see [`DedupSnapshot`]).
    pub fn snapshot(&self) -> DedupSnapshot {
        let mut bodies: Vec<(u64, u64)> = self.bodies.iter().map(|(&k, &v)| (k, v)).collect();
        bodies.sort_unstable();
        let mut account_sets: Vec<(Vec<(Network, String)>, u64)> = self
            .account_sets
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect();
        account_sets.sort();
        DedupSnapshot {
            bodies,
            account_sets,
            simhashes: self.simhashes.clone(),
            fuzzy_threshold: self.fuzzy_threshold,
            counts: self.counts,
        }
    }

    /// Rebuild a deduplicator from a snapshot. Verdicts after the restore
    /// are identical to what the snapshotted instance would have produced.
    pub fn restore(snapshot: DedupSnapshot) -> Self {
        Self {
            bodies: snapshot.bodies.into_iter().collect(),
            account_sets: snapshot.account_sets.into_iter().collect(),
            simhashes: snapshot.simhashes,
            spill: None,
            fuzzy_threshold: snapshot.fuzzy_threshold,
            counts: snapshot.counts,
        }
    }

    /// Attach store-backed overflow to this deduplicator.
    ///
    /// [`snapshot`](Self::snapshot) then carries only the in-memory
    /// remainder: the full dedup state is the union of the snapshot and
    /// the store's committed tables, which the owning coordinator makes
    /// atomic by checkpointing the store and the session snapshot in one
    /// store commit.
    ///
    /// # Panics
    /// If the fuzzy pass is enabled — SimHash lookups are similarity
    /// scans, not key lookups, and never spill.
    pub fn attach_spill(&mut self, spill: DedupSpill) {
        assert!(
            self.fuzzy_threshold.is_none(),
            "dedup spill does not support the fuzzy pass"
        );
        self.spill = Some(spill);
    }

    /// Look `body_hash` up across memory and the spill tables.
    fn lookup_body(&self, body_hash: u64) -> Option<u64> {
        if let Some(&orig) = self.bodies.get(&body_hash) {
            return Some(orig);
        }
        let spill = self.spill.as_ref()?;
        // dox-lint:allow(panic-hygiene) spill reads hit memory or an already-validated segment; failure means the store directory was yanked mid-run, which the engine surfaces as a stage panic
        spill.bodies.get(&body_hash).expect("dedup spill read")
    }

    /// Look an account-set key up across memory and the spill tables.
    fn lookup_set(&self, key: &[(Network, String)]) -> Option<u64> {
        if let Some(&orig) = self.account_sets.get(key) {
            return Some(orig);
        }
        let spill = self.spill.as_ref()?;
        spill
            .sets
            .get(&account_set_key_bytes(key))
            // dox-lint:allow(panic-hygiene) spill reads hit memory or an already-validated segment; failure means the store directory was yanked mid-run, which the engine surfaces as a stage panic
            .expect("dedup spill read")
    }

    /// Drain all in-memory entries to the spill tables once past the
    /// cap. Store puts are buffered appends (no file I/O); durability
    /// comes from the coordinator's store checkpoint.
    fn maybe_spill(&mut self) {
        let Some(spill) = &self.spill else { return };
        if self.bodies.len() + self.account_sets.len() <= spill.cap_entries {
            return;
        }
        for (hash, orig) in self.bodies.drain() {
            // dox-lint:allow(panic-hygiene) put only appends to the store's in-memory pending buffer; it cannot do I/O
            spill.bodies.put(&hash, &orig).expect("dedup spill write");
        }
        for (key, orig) in self.account_sets.drain() {
            spill
                .sets
                .put(&account_set_key_bytes(&key), &orig)
                // dox-lint:allow(panic-hygiene) put only appends to the store's in-memory pending buffer; it cannot do I/O
                .expect("dedup spill write");
        }
    }

    /// Check one classified dox. Returns `Some((kind, original_doc_id))`
    /// when it duplicates an earlier document, else `None` and the
    /// document is recorded as an original.
    pub fn check(
        &mut self,
        doc_id: u64,
        body: &str,
        extracted: &ExtractedDox,
    ) -> Option<(DuplicateKind, u64)> {
        self.counts.total += 1;

        let body_hash = fnv1a(body.as_bytes());
        if let Some(orig) = self.lookup_body(body_hash) {
            self.counts.exact += 1;
            return Some((DuplicateKind::ExactBody, orig));
        }

        let key = extracted.account_set_key();
        if !key.is_empty() {
            if let Some(orig) = self.lookup_set(&key) {
                self.counts.account_set += 1;
                // Remember the body so an exact repost of this duplicate is
                // still caught by pass 1.
                self.bodies.insert(body_hash, orig);
                self.maybe_spill();
                return Some((DuplicateKind::AccountSet, orig));
            }
        }

        if let Some(threshold) = self.fuzzy_threshold {
            let h = simhash(body);
            if let Some(&(_, orig)) = self
                .simhashes
                .iter()
                .find(|(sh, _)| hamming(*sh, h) <= threshold)
            {
                self.counts.fuzzy += 1;
                return Some((DuplicateKind::Fuzzy, orig));
            }
            self.simhashes.push((h, doc_id));
        }

        self.bodies.insert(body_hash, doc_id);
        if !key.is_empty() {
            self.account_sets.insert(key, doc_id);
        }
        self.maybe_spill();
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_extract::record::extract;

    const DOX_A: &str = "Name: A Person\nFacebook: facebook.com/person.a1\ntwitter: person_a1";
    const DOX_A_REWORDED: &str =
        "[posted later]\nfull dox again\nFB person.a1\ntwitter; person_a1\nUPDATE: lol";
    const DOX_B: &str = "Name: B Person\nFacebook: facebook.com/person.b2";

    #[test]
    fn exact_body_caught() {
        let mut d = Deduplicator::new();
        let e = extract(DOX_A);
        assert!(d.check(1, DOX_A, &e).is_none());
        assert_eq!(d.check(2, DOX_A, &e), Some((DuplicateKind::ExactBody, 1)));
        assert_eq!(d.counts.exact, 1);
    }

    #[test]
    fn account_set_caught_across_rewording() {
        let mut d = Deduplicator::new();
        assert!(d.check(1, DOX_A, &extract(DOX_A)).is_none());
        let dup = d.check(2, DOX_A_REWORDED, &extract(DOX_A_REWORDED));
        assert_eq!(dup, Some((DuplicateKind::AccountSet, 1)));
    }

    #[test]
    fn different_victims_not_duplicates() {
        let mut d = Deduplicator::new();
        assert!(d.check(1, DOX_A, &extract(DOX_A)).is_none());
        assert!(d.check(2, DOX_B, &extract(DOX_B)).is_none());
        assert_eq!(d.counts.duplicates(), 0);
        assert_eq!(d.counts.unique(), 2);
    }

    #[test]
    fn empty_account_sets_never_match_each_other() {
        let mut d = Deduplicator::new();
        let x = "no accounts here just text one";
        let y = "no accounts here either, two";
        assert!(d.check(1, x, &extract(x)).is_none());
        assert!(d.check(2, y, &extract(y)).is_none());
    }

    #[test]
    fn exact_repost_of_a_duplicate_still_caught() {
        let mut d = Deduplicator::new();
        d.check(1, DOX_A, &extract(DOX_A));
        d.check(2, DOX_A_REWORDED, &extract(DOX_A_REWORDED));
        // Repost the reworded duplicate byte-exactly.
        let again = d.check(3, DOX_A_REWORDED, &extract(DOX_A_REWORDED));
        assert_eq!(again, Some((DuplicateKind::ExactBody, 1)));
    }

    #[test]
    fn fuzzy_pass_catches_near_duplicates_without_accounts() {
        let base = "long dox text about a victim name address phone city \
                    state zip isp details here padding words to stabilize simhash \
                    more words that remain identical across the two versions";
        let near = format!("{base} tiny edit");
        let mut d = Deduplicator::with_fuzzy(8);
        assert!(d.check(1, base, &extract(base)).is_none());
        let dup = d.check(2, &near, &extract(&near));
        assert_eq!(dup, Some((DuplicateKind::Fuzzy, 1)));
        assert_eq!(d.counts.fuzzy, 1);
    }

    #[test]
    fn paper_config_has_no_fuzzy_pass() {
        let mut d = Deduplicator::new();
        let base = "text without any osn accounts mentioned at all padding";
        let near = format!("{base} x");
        d.check(1, base, &extract(base));
        assert!(d.check(2, &near, &extract(&near)).is_none());
    }

    #[test]
    fn counters_add_up() {
        let mut d = Deduplicator::new();
        let e = extract(DOX_A);
        d.check(1, DOX_A, &e);
        d.check(2, DOX_A, &e);
        d.check(3, DOX_A_REWORDED, &extract(DOX_A_REWORDED));
        d.check(4, DOX_B, &extract(DOX_B));
        assert_eq!(d.counts.total, 4);
        assert_eq!(d.counts.exact, 1);
        assert_eq!(d.counts.account_set, 1);
        assert_eq!(d.counts.unique(), 2);
    }

    #[test]
    fn matching_docs_share_a_signature_and_shard() {
        // Reworded duplicates (same account set, different bodies).
        let a = extract(DOX_A);
        let b = extract(DOX_A_REWORDED);
        assert_eq!(a.account_set_key(), b.account_set_key());
        assert_eq!(
            shard_signature(DOX_A, &a),
            shard_signature(DOX_A_REWORDED, &b)
        );
        // Exact reposts (same body, extraction is pure so same record).
        assert_eq!(shard_signature(DOX_A, &a), shard_signature(DOX_A, &a));
        // Different victims usually diverge.
        let c = extract(DOX_B);
        assert_ne!(shard_signature(DOX_A, &a), shard_signature(DOX_B, &c));
        for shards in [1usize, 2, 7, 8] {
            assert_eq!(
                shard_of(shard_signature(DOX_A, &a), shards),
                shard_of(shard_signature(DOX_A_REWORDED, &b), shards)
            );
            assert!(shard_of(shard_signature(DOX_B, &c), shards) < shards);
        }
    }

    #[test]
    fn snapshot_restore_round_trips_state_and_verdicts() {
        let mut live = Deduplicator::new();
        live.check(1, DOX_A, &extract(DOX_A));
        live.check(2, "plain paste", &extract("plain paste"));
        live.check(3, DOX_A_REWORDED, &extract(DOX_A_REWORDED));

        let snap = live.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let parsed: DedupSnapshot = serde_json::from_str(&json).expect("parses back");
        assert_eq!(parsed, snap);

        let mut restored = Deduplicator::restore(parsed);
        // Both instances must agree on every future verdict.
        for (id, body) in [(4u64, DOX_A), (5, DOX_A_REWORDED), (6, DOX_B), (7, DOX_B)] {
            let rec = extract(body);
            assert_eq!(
                restored.check(id, body, &rec),
                live.check(id, body, &rec),
                "doc {id}"
            );
        }
        assert_eq!(restored.counts, live.counts);
    }

    #[test]
    fn snapshots_are_byte_stable() {
        // HashMap iteration order varies run to run; the snapshot must not.
        let build = || {
            let mut d = Deduplicator::new();
            for (i, body) in [DOX_A, DOX_B, DOX_A_REWORDED, "x", "y", "z"]
                .iter()
                .enumerate()
            {
                d.check(i as u64, body, &extract(body));
            }
            d.snapshot()
        };
        let a = serde_json::to_string(&build()).expect("serializes");
        let b = serde_json::to_string(&build()).expect("serializes");
        assert_eq!(a, b);
    }

    #[test]
    fn spilled_dedup_matches_in_memory_verdicts() {
        let dir = std::env::temp_dir().join(format!("dox_dedup_spill_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store =
            Arc::new(Store::open(&dir, &dox_obs::Registry::new()).expect("open spill store"));

        let docs: Vec<String> = (0..24)
            .map(|i| match i % 4 {
                0 => DOX_A.to_string(),
                1 => DOX_A_REWORDED.to_string(),
                2 => DOX_B.to_string(),
                // A run of distinct originals to push past the cap.
                _ => format!("unique paste number {i} with no accounts"),
            })
            .collect();

        let mut plain = Deduplicator::new();
        let mut spilled = Deduplicator::new();
        // A tiny cap forces several drain cycles over this stream.
        spilled.attach_spill(DedupSpill::new(Arc::clone(&store), 0, 3));

        for (i, body) in docs.iter().enumerate() {
            let rec = extract(body);
            assert_eq!(
                spilled.check(i as u64, body, &rec),
                plain.check(i as u64, body, &rec),
                "doc {i}"
            );
        }
        assert_eq!(spilled.counts, plain.counts);
        // The snapshot carries only the in-memory remainder; the drained
        // entries live in the store.
        let remainder = spilled.snapshot();
        let full = plain.snapshot();
        assert!(remainder.bodies.len() < full.bodies.len());
        assert!(!store.is_empty(), "entries drained to the store");

        // Store survives a checkpoint + reopen and still backs verdicts.
        store.checkpoint().expect("store checkpoint");
        drop(spilled);
        drop(store);
        let store =
            Arc::new(Store::open(&dir, &dox_obs::Registry::new()).expect("reopen spill store"));
        let mut restored = Deduplicator::restore(remainder);
        restored.attach_spill(DedupSpill::new(store, 0, 3));
        for (i, body) in docs.iter().enumerate() {
            let rec = extract(body);
            let verdict = restored.check(100 + i as u64, body, &rec);
            assert!(verdict.is_some(), "doc {i} was seen before the reopen");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_dedup_matches_global_dedup() {
        // The soundness claim behind the engine: per-shard deduplicators,
        // each fed its shard's documents in stream order, reproduce the
        // global deduplicator's verdicts exactly.
        let docs: Vec<&str> = vec![
            DOX_A,
            "random paste with no accounts",
            DOX_A_REWORDED,
            DOX_B,
            DOX_A_REWORDED,
            "random paste with no accounts",
            DOX_B,
        ];
        let records: Vec<ExtractedDox> = docs.iter().map(|d| extract(d)).collect();

        let mut global = Deduplicator::new();
        let global_verdicts: Vec<_> = docs
            .iter()
            .zip(&records)
            .enumerate()
            .map(|(i, (body, rec))| global.check(i as u64, body, rec))
            .collect();

        for shards in [1usize, 2, 3, 8] {
            let mut pool: Vec<Deduplicator> = (0..shards).map(|_| Deduplicator::new()).collect();
            let sharded: Vec<_> = docs
                .iter()
                .zip(&records)
                .enumerate()
                .map(|(i, (body, rec))| {
                    let shard = shard_of(shard_signature(body, rec), shards);
                    pool[shard].check(i as u64, body, rec)
                })
                .collect();
            assert_eq!(sharded, global_verdicts, "shards = {shards}");
        }
    }
}
