//! A sequence-number reorder buffer.
//!
//! Parallel stages complete out of order; the stateful commit stages
//! (funnel counters, the detected-dox log) must observe items in stream
//! order or the run stops being a pure function of `(config, seed)`.
//! [`ReorderBuffer`] sits in front of each stateful consumer: items are
//! inserted under the sequence number the producer stamped at dispatch,
//! and [`pop_ready`](ReorderBuffer::pop_ready) releases them in exactly
//! `0, 1, 2, …` order, holding back anything that arrived early.

use std::collections::BTreeMap;

/// Releases out-of-order `(seq, item)` arrivals in sequence order.
#[derive(Debug)]
pub struct ReorderBuffer<T> {
    next: u64,
    pending: BTreeMap<u64, T>,
}

impl<T> Default for ReorderBuffer<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ReorderBuffer<T> {
    /// An empty buffer expecting sequence number 0 first.
    pub fn new() -> Self {
        Self::with_next(0)
    }

    /// An empty buffer expecting `next` first — how a resumed session
    /// restores its sequence cursor (checkpoints are taken at quiescence,
    /// so only the cursor needs to survive, never pending items).
    pub fn with_next(next: u64) -> Self {
        Self {
            next,
            pending: BTreeMap::new(),
        }
    }

    /// Insert an item under its sequence number.
    ///
    /// # Panics
    /// Panics if `seq` was already released or is already pending — either
    /// means a producer double-stamped a sequence number, which would
    /// silently corrupt the commit order if tolerated.
    pub fn push(&mut self, seq: u64, item: T) {
        assert!(seq >= self.next, "sequence {seq} already released");
        let clash = self.pending.insert(seq, item);
        assert!(clash.is_none(), "sequence {seq} inserted twice");
    }

    /// Remove and return the next in-order item, if it has arrived.
    pub fn pop_ready(&mut self) -> Option<T> {
        let item = self.pending.remove(&self.next)?;
        self.next += 1;
        Some(item)
    }

    /// The sequence number the buffer is waiting for.
    pub fn next_seq(&self) -> u64 {
        self.next
    }

    /// Items held back waiting for earlier sequence numbers.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is buffered.
    pub fn is_drained(&self) -> bool {
        self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_in_sequence_order() {
        let mut r = ReorderBuffer::new();
        r.push(2, "c");
        r.push(0, "a");
        assert_eq!(r.pop_ready(), Some("a"));
        assert_eq!(r.pop_ready(), None, "1 has not arrived");
        r.push(1, "b");
        assert_eq!(r.pop_ready(), Some("b"));
        assert_eq!(r.pop_ready(), Some("c"));
        assert!(r.is_drained());
        assert_eq!(r.next_seq(), 3);
    }

    #[test]
    fn restored_cursor_resumes_mid_sequence() {
        let mut r = ReorderBuffer::with_next(7);
        assert_eq!(r.next_seq(), 7);
        r.push(8, "b");
        assert_eq!(r.pop_ready(), None);
        r.push(7, "a");
        assert_eq!(r.pop_ready(), Some("a"));
        assert_eq!(r.pop_ready(), Some("b"));
    }

    #[test]
    fn tracks_pending_count() {
        let mut r = ReorderBuffer::new();
        r.push(5, ());
        r.push(3, ());
        assert_eq!(r.pending(), 2);
        assert!(!r.is_drained());
    }

    #[test]
    #[should_panic(expected = "inserted twice")]
    fn duplicate_sequence_panics() {
        let mut r = ReorderBuffer::new();
        r.push(1, ());
        r.push(1, ());
    }

    #[test]
    #[should_panic(expected = "already released")]
    fn stale_sequence_panics() {
        let mut r = ReorderBuffer::new();
        r.push(0, ());
        r.pop_ready();
        r.push(0, ());
    }
}
