//! Session checkpoints: the serializable quiescent state of an ingest
//! run.
//!
//! A checkpoint is taken only at **quiescence** — every dispatched chunk
//! routed, every routed dox committed (see
//! [`Session::checkpoint`](crate::Session::checkpoint)). At that moment
//! both reorder buffers are empty, so the only sequencing state worth
//! persisting is the pair of cursors (`next_chunk_seq`, `dox_seq`); the
//! heavy state is the dedup shards, the funnel counters and the detected
//! log. Restoring a checkpoint into a fresh session and replaying the
//! remaining document stream yields output byte-identical to the
//! uninterrupted run — the property the fault-matrix test enforces.
//!
//! The format is JSON via the workspace's value-tree serde; field order
//! and the sorted [`DedupSnapshot`] entry lists make the encoding a pure
//! function of the state, so identical states produce identical bytes.

use crate::dedup::DedupSnapshot;
use crate::output::{DetectedDox, PipelineCounters};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Format version stamped into every checkpoint; bumped on any encoding
/// change so a stale file is rejected instead of misread.
pub const CHECKPOINT_VERSION: u32 = 1;

/// The complete quiescent state of a [`Session`](crate::Session).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SessionCheckpoint {
    /// Encoding version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Dedup shard count the state was sharded for. A checkpoint can be
    /// resumed under any worker count but **only** the same shard count —
    /// dedup state is partitioned by `signature % shards`.
    pub shards: usize,
    /// The next chunk sequence number the session will stamp (and the
    /// router's reorder cursor — equal at quiescence).
    pub next_chunk_seq: u64,
    /// The next dox sequence number the router will stamp (and the
    /// committer's reorder cursor — equal at quiescence).
    pub dox_seq: u64,
    /// Funnel counters accumulated by the router (document-level half).
    pub router_counters: PipelineCounters,
    /// Ids of documents labeled dox so far.
    pub dox_ids: BTreeSet<u64>,
    /// Documents lost to poisoned stage workers so far.
    pub stage_gap_docs: u64,
    /// Funnel counters accumulated by the committer (dedup-level half).
    pub committer_counters: PipelineCounters,
    /// Every detected dox committed so far, stream order.
    pub detected: Vec<DetectedDox>,
    /// One snapshot per dedup shard, shard order.
    pub dedups: Vec<DedupSnapshot>,
}

impl Deserialize for SessionCheckpoint {
    fn from_value(value: &Value) -> Option<Self> {
        let checkpoint = SessionCheckpoint {
            version: u32::try_from(value.get("version")?.as_u64()?).ok()?,
            shards: usize::try_from(value.get("shards")?.as_u64()?).ok()?,
            next_chunk_seq: value.get("next_chunk_seq")?.as_u64()?,
            dox_seq: value.get("dox_seq")?.as_u64()?,
            router_counters: PipelineCounters::from_value(value.get("router_counters")?)?,
            dox_ids: value
                .get("dox_ids")?
                .as_array()?
                .iter()
                .map(Value::as_u64)
                .collect::<Option<BTreeSet<_>>>()?,
            stage_gap_docs: value.get("stage_gap_docs")?.as_u64()?,
            committer_counters: PipelineCounters::from_value(value.get("committer_counters")?)?,
            detected: value
                .get("detected")?
                .as_array()?
                .iter()
                .map(DetectedDox::from_value)
                .collect::<Option<Vec<_>>>()?,
            dedups: value
                .get("dedups")?
                .as_array()?
                .iter()
                .map(DedupSnapshot::from_value)
                .collect::<Option<Vec<_>>>()?,
        };
        (checkpoint.version == CHECKPOINT_VERSION).then_some(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dedup::Deduplicator;
    use dox_extract::record::extract;
    use dox_osn::clock::SimTime;
    use dox_synth::corpus::Source;

    fn sample() -> SessionCheckpoint {
        let mut dedup = Deduplicator::new();
        let body = "Name: A Person\nfb: a.person9";
        dedup.check(3, body, &extract(body));
        let router_counters = PipelineCounters {
            total: 5,
            per_period: [3, 2],
            per_source: [("pastebin.com".to_string(), 5)].into_iter().collect(),
            classified_dox: 1,
            ..PipelineCounters::default()
        };
        SessionCheckpoint {
            version: CHECKPOINT_VERSION,
            shards: 2,
            next_chunk_seq: 4,
            dox_seq: 1,
            router_counters,
            dox_ids: [3u64].into_iter().collect(),
            stage_gap_docs: 0,
            committer_counters: PipelineCounters::default(),
            detected: vec![DetectedDox {
                doc_id: 3,
                source: Source::Pastebin,
                period: 1,
                posted_at: SimTime(10),
                observed_at: SimTime(15),
                text: body.to_string(),
                extracted: extract(body),
                duplicate: None,
                truth: None,
            }],
            dedups: vec![dedup.snapshot(), Deduplicator::new().snapshot()],
        }
    }

    #[test]
    fn checkpoints_round_trip_byte_identically() {
        let original = sample();
        let json = serde_json::to_string(&original).expect("serializes");
        let parsed: SessionCheckpoint = serde_json::from_str(&json).expect("parses");
        assert_eq!(parsed, original);
        let rewritten = serde_json::to_string(&parsed).expect("serializes again");
        assert_eq!(rewritten, json, "round trip is byte-stable");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut stale = sample();
        stale.version = CHECKPOINT_VERSION + 1;
        let json = serde_json::to_string(&stale).expect("serializes");
        assert!(
            serde_json::from_str::<SessionCheckpoint>(&json).is_err(),
            "future version must not parse"
        );
    }
}
