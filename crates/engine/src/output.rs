//! The ingest data model: what the pipeline emits per detected dox, the
//! Figure 1 funnel counters, and the combined output both the sequential
//! reference pipeline and the streaming engine produce.

use crate::dedup::DuplicateKind;
use dox_extract::record::ExtractedDox;
use dox_osn::clock::SimTime;
use dox_synth::corpus::Source;
use dox_synth::truth::DoxTruth;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A document the classifier flagged as a dox.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DetectedDox {
    /// Document id from the stream.
    pub doc_id: u64,
    /// Source site.
    pub source: Source,
    /// Collection period (1 or 2).
    pub period: u8,
    /// Posting time.
    pub posted_at: SimTime,
    /// When the collector saw it (monitoring starts here).
    pub observed_at: SimTime,
    /// Plain-text body (after HTML conversion).
    pub text: String,
    /// Extraction record.
    pub extracted: ExtractedDox,
    /// De-duplication verdict; `None` means this is the first dox of its
    /// victim.
    pub duplicate: Option<(DuplicateKind, u64)>,
    /// Ground truth when the document really is a dox (false positives
    /// carry `None`). Used only by evaluation, never by inference.
    pub truth: Option<Box<DoxTruth>>,
}

// The vendored serde cannot derive `Deserialize`; checkpoints round-trip
// detected doxes by hand, mirroring the derive's Serialize encoding.
impl serde::Deserialize for DetectedDox {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        use serde::value::Value;
        Some(DetectedDox {
            doc_id: value.get("doc_id")?.as_u64()?,
            source: Source::from_value(value.get("source")?)?,
            period: u8::try_from(value.get("period")?.as_u64()?).ok()?,
            posted_at: SimTime::from_value(value.get("posted_at")?)?,
            observed_at: SimTime::from_value(value.get("observed_at")?)?,
            text: value.get("text")?.as_str()?.to_string(),
            extracted: ExtractedDox::from_value(value.get("extracted")?)?,
            duplicate: match value.get("duplicate")? {
                Value::Null => None,
                other => {
                    let pair = other.as_array()?;
                    Some((
                        DuplicateKind::from_value(pair.first()?)?,
                        pair.get(1)?.as_u64()?,
                    ))
                }
            },
            truth: match value.get("truth")? {
                Value::Null => None,
                other => Some(Box::new(DoxTruth::from_value(other)?)),
            },
        })
    }
}

/// Per-stage counters — the numbers on the Figure 1 funnel.
///
/// Construct with [`PipelineCounters::default`] and the struct-update
/// syntax is reserved to this crate: the struct is `#[non_exhaustive]` so
/// new funnel stages can be added without breaking downstream crates.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct PipelineCounters {
    /// Documents processed per source.
    pub per_source: BTreeMap<String, u64>,
    /// Documents processed per period: `[period1, period2]`.
    pub per_period: [u64; 2],
    /// Classified as dox per period.
    pub dox_per_period: [u64; 2],
    /// Duplicates removed per period.
    pub duplicates_per_period: [u64; 2],
    /// Total documents.
    pub total: u64,
    /// Total classified as dox.
    pub classified_dox: u64,
    /// Exact-body duplicates.
    pub exact_duplicates: u64,
    /// Account-set duplicates.
    pub account_set_duplicates: u64,
}

impl serde::Deserialize for PipelineCounters {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        let period_pair = |v: &serde::value::Value| {
            let pair = v.as_array()?;
            Some([pair.first()?.as_u64()?, pair.get(1)?.as_u64()?])
        };
        Some(PipelineCounters {
            per_source: value
                .get("per_source")?
                .as_object()?
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_u64()?)))
                .collect::<Option<BTreeMap<_, _>>>()?,
            per_period: period_pair(value.get("per_period")?)?,
            dox_per_period: period_pair(value.get("dox_per_period")?)?,
            duplicates_per_period: period_pair(value.get("duplicates_per_period")?)?,
            total: value.get("total")?.as_u64()?,
            classified_dox: value.get("classified_dox")?.as_u64()?,
            exact_duplicates: value.get("exact_duplicates")?.as_u64()?,
            account_set_duplicates: value.get("account_set_duplicates")?.as_u64()?,
        })
    }
}

impl PipelineCounters {
    /// Unique doxes after dedup. Saturates at zero: counters assembled
    /// from partial or merged streams can carry more recorded duplicates
    /// than classified doxes, and a funnel count must never wrap.
    pub fn unique_doxes(&self) -> u64 {
        self.classified_dox
            .saturating_sub(self.exact_duplicates)
            .saturating_sub(self.account_set_duplicates)
    }

    /// Unique doxes in one period (saturating, like [`Self::unique_doxes`]).
    pub fn unique_in_period(&self, which: u8) -> u64 {
        let i = usize::from(which - 1);
        self.dox_per_period[i].saturating_sub(self.duplicates_per_period[i])
    }

    /// Fold `other` into `self`, field by field. The engine accumulates
    /// the document-level counters in its router and the dedup-level
    /// counters in its committer; the merged result equals what one
    /// sequential pass would have counted because the two halves touch
    /// disjoint fields.
    pub fn absorb(&mut self, other: &PipelineCounters) {
        for (source, n) in &other.per_source {
            *self.per_source.entry(source.clone()).or_insert(0) += n;
        }
        for i in 0..2 {
            self.per_period[i] += other.per_period[i];
            self.dox_per_period[i] += other.dox_per_period[i];
            self.duplicates_per_period[i] += other.duplicates_per_period[i];
        }
        self.total += other.total;
        self.classified_dox += other.classified_dox;
        self.exact_duplicates += other.exact_duplicates;
        self.account_set_duplicates += other.account_set_duplicates;
    }
}

/// The outcome of the pure per-document stage: `None` when the classifier
/// rejects the document, else the plain text plus its extraction record.
pub type StagedDoc = Option<(String, ExtractedDox)>;

/// Everything an ingest run accumulates: the detected doxes (stream
/// order), the funnel counters, and the set of document ids labeled dox
/// (the Table 3 deletion survey's membership oracle).
#[derive(Debug, Default)]
pub struct PipelineOutput {
    /// Every detected dox, stream order.
    pub detected: Vec<DetectedDox>,
    /// Figure 1 funnel counters.
    pub counters: PipelineCounters,
    /// Ids of documents labeled dox.
    pub dox_ids: BTreeSet<u64>,
    /// Documents dropped because a poisoned stage worker exhausted its
    /// retry budget — an explicit coverage gap, never a silent loss. Zero
    /// in fault-free and fully-recovered runs.
    pub stage_gap_docs: u64,
}

impl PipelineOutput {
    /// Every detected dox, stream order.
    pub fn detected(&self) -> &[DetectedDox] {
        &self.detected
    }

    /// Detected doxes that survived de-duplication.
    pub fn unique_doxes(&self) -> impl Iterator<Item = &DetectedDox> {
        self.detected.iter().filter(|d| d.duplicate.is_none())
    }

    /// Whether the run labeled document `id` a dox (Table 3 survey).
    pub fn labeled_dox(&self, id: u64) -> bool {
        self.dox_ids.contains(&id)
    }

    /// Stage counters.
    pub fn counters(&self) -> &PipelineCounters {
        &self.counters
    }

    /// Ground-truth confusion counts over everything detected:
    /// `(true_pos, false_pos)` — false negatives need the caller's truth
    /// stream, so only what the pipeline can see is reported.
    pub fn detection_quality(&self) -> (u64, u64) {
        let tp = self.detected.iter().filter(|d| d.truth.is_some()).count() as u64;
        let fp = self.detected.len() as u64 - tp;
        (tp, fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unique_counts_saturate_when_duplicates_exceed_doxes() {
        // Counters merged from partial streams can record more duplicates
        // than classified doxes; the funnel arithmetic must clamp at zero
        // instead of wrapping to ~2^64.
        let c = PipelineCounters {
            classified_dox: 3,
            exact_duplicates: 2,
            account_set_duplicates: 2,
            dox_per_period: [1, 2],
            duplicates_per_period: [4, 0],
            ..PipelineCounters::default()
        };
        assert_eq!(c.unique_doxes(), 0);
        assert_eq!(c.unique_in_period(1), 0);
        assert_eq!(c.unique_in_period(2), 2);
    }

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn absorb_is_fieldwise_addition() {
        let mut a = PipelineCounters::default();
        a.total = 10;
        a.per_period = [6, 4];
        a.per_source.insert("pastebin.com".into(), 10);
        a.classified_dox = 3;
        a.dox_per_period = [2, 1];

        let mut b = PipelineCounters::default();
        b.duplicates_per_period = [1, 0];
        b.exact_duplicates = 1;
        b.per_source.insert("pastebin.com".into(), 2);
        b.per_source.insert("4chan/b".into(), 5);

        a.absorb(&b);
        assert_eq!(a.total, 10);
        assert_eq!(a.per_source["pastebin.com"], 12);
        assert_eq!(a.per_source["4chan/b"], 5);
        assert_eq!(a.exact_duplicates, 1);
        assert_eq!(a.unique_doxes(), 2);
        assert_eq!(a.unique_in_period(1), 1);
    }
}
