//! A bounded multi-producer/multi-consumer work queue, hand-rolled on
//! `std::sync::{Mutex, Condvar}` (this workspace vendors no lock-free
//! channel crates, and the pipeline's throughput is dominated by the stage
//! work, not queue handoff).
//!
//! Semantics:
//!
//! * [`Queue::push`] blocks while the queue is at capacity — this is the
//!   engine's backpressure: a fast producer is paced by the slowest
//!   consumer instead of buffering the whole corpus in memory.
//! * [`Queue::pop`] blocks while the queue is empty and returns `None`
//!   only once the queue has been [closed](Queue::close) **and** drained,
//!   so consumers can use `while let Some(item) = q.pop()` as their whole
//!   run loop.
//! * [`Queue::close`] wakes every waiter; pushes after close fail and
//!   return the rejected item.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

struct State<T> {
    buf: VecDeque<T>,
    closed: bool,
}

/// What a successful [`Queue::push`] observed — the raw material for the
/// engine's backpressure metrics.
#[derive(Debug, Clone, Copy)]
pub struct Pushed {
    /// Time spent blocked waiting for capacity (zero when the queue had
    /// room immediately).
    pub stalled_for: Duration,
    /// Queue depth right after the push (including the pushed item).
    pub depth: usize,
}

/// The bounded MPMC queue.
pub struct Queue<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Queue<T> {
    /// Lock the queue state, recovering from poisoning. Every critical
    /// section below performs a single `VecDeque` push/pop or a flag
    /// write, none of which can leave `State` half-updated if some other
    /// holder panicked — so continuing with the inner value is sound and
    /// keeps the engine's shutdown path free of cascading panics.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// A queue holding at most `capacity` items (`capacity` ≥ 1; a zero
    /// capacity would deadlock the first push and is rejected upstream by
    /// the engine builder).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                buf: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Push one item, blocking while the queue is full. Returns the
    /// rejected item if the queue was closed before space opened up.
    pub fn push(&self, item: T) -> Result<Pushed, T> {
        let mut state = self.lock();
        let mut stalled_for = Duration::ZERO;
        if state.buf.len() >= self.capacity && !state.closed {
            // dox-lint:allow(determinism) backpressure stall timing feeds metrics only, never the report
            let start = Instant::now();
            while state.buf.len() >= self.capacity && !state.closed {
                state = self
                    .not_full
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            stalled_for = start.elapsed();
        }
        if state.closed {
            return Err(item);
        }
        state.buf.push_back(item);
        let depth = state.buf.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(Pushed { stalled_for, depth })
    }

    /// Pop one item, blocking while the queue is empty. Returns `None`
    /// once the queue is closed and fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.buf.pop_front() {
                drop(state);
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Close the queue: pending items remain poppable, new pushes fail,
    /// and every blocked waiter wakes up.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current depth (racy by nature; for gauges only).
    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    /// Whether the queue is currently empty (racy; for gauges only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = Queue::bounded(4);
        for i in 0..4 {
            assert!(q.push(i).is_ok());
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Queue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert!(q.push(3).is_err(), "push after close is rejected");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_blocks_until_consumer_makes_room() {
        let q = Arc::new(Queue::bounded(1));
        q.push(0u32).unwrap();
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).map(|p| p.stalled_for))
        };
        // Give the producer time to block, then drain.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(q.pop(), Some(0));
        let stalled = producer.join().unwrap().expect("push succeeds");
        assert!(stalled >= Duration::from_millis(5), "producer stalled");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn mpmc_transfers_every_item_exactly_once() {
        let q = Arc::new(Queue::bounded(8));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..500u32 {
                        q.push(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..500).chain(1000..1500).collect();
        assert_eq!(all, expect);
    }
}
