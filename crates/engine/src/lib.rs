//! `dox-engine` — the sharded streaming ingest engine.
//!
//! The batch pipeline in `dox-core` processes the collected corpus in
//! fill-then-drain batches: collect 8 k documents, block, fan the pure
//! stage out, reduce, repeat. This crate replaces that with a streaming
//! topology — a bounded work queue with real backpressure, a pool of
//! stage workers, dedup state sharded by account-set signature, and
//! sequence-number reorder buffers in front of every stateful commit —
//! while keeping the output **byte-identical** to a sequential pass for
//! any `(workers, shards)` configuration. Determinism is the contract:
//! an [`crate::output::PipelineOutput`] is a pure function of the
//! document stream, never of thread scheduling.
//!
//! # Example
//!
//! ```
//! use dox_engine::{DoxDetector, Engine};
//! use std::sync::Arc;
//!
//! struct Keyword;
//! impl DoxDetector for Keyword {
//!     fn is_dox(&self, text: &str) -> bool { text.contains("dox") }
//! }
//!
//! let engine = Engine::builder().workers(2).shards(4).build()?;
//! let registry = dox_obs::Registry::new();
//! let mut session = engine
//!     .session_builder()
//!     .detector(Arc::new(Keyword))
//!     .registry(&registry)
//!     .start()?;
//! // session.ingest(period, collected_doc)? for every document…
//! let output = session.finish()?;
//! assert_eq!(output.counters().total, 0);
//! # Ok::<(), dox_engine::EngineError>(())
//! ```
//!
//! The engine deliberately knows nothing about the trained classifier in
//! `dox-core`: it accepts anything implementing [`DoxDetector`], which is
//! what lets `dox-core` sit *above* this crate and re-export it.
//!
//! # Fault tolerance
//!
//! An engine built with [`EngineBuilder::faults`] injects deterministic
//! stage faults from a [`dox_fault::FaultPlanConfig`] — slow and poisoned
//! chunks — and [`Session::checkpoint`] plus
//! [`SessionBuilder::resume_from`] make a killed run resumable with
//! byte-identical output. See the [`session`] and [`checkpoint`] module
//! docs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod checkpoint;
pub mod dedup;
pub mod output;
pub mod queue;
pub mod reorder;
pub mod session;
pub mod stage;

pub use checkpoint::{SessionCheckpoint, CHECKPOINT_VERSION};
pub use dedup::{DedupSnapshot, DedupSpill, DedupSpillConfig, Deduplicator, DuplicateKind};
pub use output::{DetectedDox, PipelineCounters, PipelineOutput, StagedDoc};
pub use session::Session;
pub use stage::{classify_and_extract, DoxDetector, StageLocal, StageMetrics};

use dox_fault::{FaultPlanConfig, RetryPolicy};
use dox_obs::{Registry, Tracer};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The panic message recovered from a dead engine thread — the chained
/// [`source`](std::error::Error::source) behind
/// [`EngineError::StageFailed`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePanic(pub String);

impl std::fmt::Display for StagePanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for StagePanic {}

/// Errors from building an engine or running a session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// `workers` was zero — nothing would ever pop the work queue.
    ZeroWorkers,
    /// `shards` was zero — no dedup shard to route doxes to.
    ZeroShards,
    /// `queue_depth` was zero — the first push would deadlock.
    ZeroQueueDepth,
    /// `chunk` was zero — chunks could never fill and dispatch.
    ZeroChunk,
    /// `ingest` was handed a period outside the study's two collection
    /// periods.
    InvalidPeriod(u8),
    /// A stage queue was closed while the session was still feeding it
    /// (only possible if a downstream thread died).
    Disconnected,
    /// A named engine thread panicked; the recovered panic message is the
    /// chained [`source`](std::error::Error::source).
    StageFailed {
        /// Which pipeline stage died.
        stage: &'static str,
        /// The panic payload it died with.
        cause: StagePanic,
    },
    /// A checkpoint was resumed under a different dedup shard count than
    /// it was taken with — the shard-partitioned state would be routed
    /// wrongly.
    CheckpointShardMismatch {
        /// Shards the resuming engine is configured for.
        expected: usize,
        /// Shards the checkpoint was taken with.
        found: usize,
    },
    /// The pipeline failed to quiesce within the checkpoint deadline.
    CheckpointStalled,
    /// [`SessionBuilder::start`] was called without a detector — there is
    /// no default classifier, so the session could never label anything.
    MissingDetector,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroWorkers => write!(f, "engine needs at least one stage worker"),
            EngineError::ZeroShards => write!(f, "engine needs at least one dedup shard"),
            EngineError::ZeroQueueDepth => write!(f, "engine queue depth must be at least 1"),
            EngineError::ZeroChunk => write!(f, "engine chunk size must be at least 1"),
            EngineError::InvalidPeriod(p) => {
                write!(f, "period {p} is not a collection period (expected 1 or 2)")
            }
            EngineError::Disconnected => write!(f, "engine stage disconnected mid-stream"),
            EngineError::StageFailed { stage, .. } => write!(f, "engine {stage} thread panicked"),
            EngineError::CheckpointShardMismatch { expected, found } => write!(
                f,
                "checkpoint was taken with {found} dedup shards but the engine has {expected}"
            ),
            EngineError::CheckpointStalled => {
                write!(f, "engine failed to quiesce within the checkpoint deadline")
            }
            EngineError::MissingDetector => {
                write!(f, "session builder needs a detector before start()")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::StageFailed { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// Deterministic fault injection for the engine's stage workers: the
/// schedule of slow/poisoned chunks and the retry budget the simulated
/// supervisor gets before declaring a chunk lost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct EngineFaults {
    /// The seeded fault schedule (only its stage-domain knobs apply here).
    pub plan: FaultPlanConfig,
    /// Retry budget for poisoned chunks; a chunk whose poison count
    /// exceeds `policy.max_retries` becomes an explicit coverage gap.
    pub policy: RetryPolicy,
}

impl Deserialize for EngineFaults {
    fn from_value(value: &Value) -> Option<Self> {
        Some(EngineFaults {
            plan: FaultPlanConfig::from_value(value.get("plan")?)?,
            policy: RetryPolicy::from_value(value.get("policy")?)?,
        })
    }
}

/// Tuning knobs for the ingest topology. None of them affect the result —
/// only throughput and memory. Build one through [`Engine::builder`].
///
/// The one exception to "never affects the result" is `faults`
/// (`EngineConfig::faults`): an exhausted poisoned chunk drops its
/// documents into the explicit [`PipelineOutput::stage_gap_docs`] count.
/// Recovered faults (slow chunks, sub-budget poison) still never change a
/// byte of output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Stage worker threads running the pure classify/extract stage.
    pub workers: usize,
    /// Dedup shards (each owns an isolated [`Deduplicator`]).
    pub shards: usize,
    /// Bounded depth, in chunks, of the work and staged queues — the
    /// backpressure window.
    pub queue_depth: usize,
    /// Documents per work chunk (amortizes queue handoff).
    pub chunk: usize,
    /// Deterministic stage-fault injection; `None` runs fault-free.
    pub faults: Option<EngineFaults>,
}

impl Default for EngineConfig {
    /// Workers default to the machine's available parallelism; topology
    /// never changes results, so the default favors throughput.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards: 8,
            queue_depth: 4,
            chunk: 1024,
            faults: None,
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), EngineError> {
        if self.workers == 0 {
            return Err(EngineError::ZeroWorkers);
        }
        if self.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        if self.queue_depth == 0 {
            return Err(EngineError::ZeroQueueDepth);
        }
        if self.chunk == 0 {
            return Err(EngineError::ZeroChunk);
        }
        Ok(())
    }
}

/// Builder for [`Engine`] — the crate's front door.
///
/// ```
/// let engine = dox_engine::Engine::builder()
///     .workers(4)
///     .shards(8)
///     .queue_depth(4)
///     .build()
///     .expect("non-zero topology");
/// assert_eq!(engine.config().workers, 4);
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "builders do nothing until build() is called"]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Set the stage worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Set the dedup shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Set the bounded queue depth, in chunks.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Set the number of documents batched per work chunk.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.config.chunk = chunk;
        self
    }

    /// Inject deterministic stage faults from a seeded plan.
    pub fn faults(mut self, faults: EngineFaults) -> Self {
        self.config.faults = Some(faults);
        self
    }

    /// Validate the topology and produce the engine.
    pub fn build(self) -> Result<Engine, EngineError> {
        self.config.validate()?;
        Ok(Engine {
            config: self.config,
        })
    }
}

/// A validated ingest topology. Cheap to clone; spawns threads only when
/// a [`Session`] starts.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Build directly from a config (equivalent to the builder).
    pub fn from_config(config: EngineConfig) -> Result<Self, EngineError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated topology.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Start configuring a [`Session`] on this engine. The one way to
    /// start sessions: pick a detector (required), then optionally an
    /// isolated registry, a tracer, and a checkpoint to resume from.
    ///
    /// ```
    /// # use dox_engine::{DoxDetector, Engine};
    /// # use std::sync::Arc;
    /// # struct Keyword;
    /// # impl DoxDetector for Keyword {
    /// #     fn is_dox(&self, text: &str) -> bool { text.contains("dox") }
    /// # }
    /// let engine = Engine::builder().workers(1).build()?;
    /// let registry = dox_obs::Registry::new();
    /// let session = engine
    ///     .session_builder()
    ///     .detector(Arc::new(Keyword))
    ///     .registry(&registry)
    ///     .start()?;
    /// drop(session);
    /// # Ok::<(), dox_engine::EngineError>(())
    /// ```
    pub fn session_builder(&self) -> SessionBuilder<'_> {
        SessionBuilder {
            engine: self,
            detector: None,
            registry: None,
            tracer: None,
            resume_from: None,
            spill: None,
        }
    }

    /// Start a session reporting into the process-global metrics
    /// registry.
    #[deprecated(note = "use Engine::session_builder().detector(..).start()")]
    pub fn session(&self, classifier: Arc<dyn DoxDetector>) -> Session {
        Session::spawn(
            &self.config,
            classifier,
            dox_obs::global(),
            &Tracer::disabled(),
            None,
            None,
        )
    }

    /// Start a session reporting into an explicit registry (tests and
    /// side-by-side runs want isolated metrics).
    #[deprecated(note = "use Engine::session_builder().detector(..).registry(..).start()")]
    pub fn session_with_registry(
        &self,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
    ) -> Session {
        Session::spawn(
            &self.config,
            classifier,
            registry,
            &Tracer::disabled(),
            None,
            None,
        )
    }

    /// Start a session that additionally records causal trace hops for
    /// sampled documents into the given [`Tracer`]. Tracing is pure
    /// observation: output stays byte-identical to an untraced session.
    #[deprecated(
        note = "use Engine::session_builder().detector(..).registry(..).tracer(..).start()"
    )]
    pub fn traced_session(
        &self,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
        tracer: &Tracer,
    ) -> Session {
        Session::spawn(&self.config, classifier, registry, tracer, None, None)
    }

    /// Resume a session from a checkpoint, reporting into the
    /// process-global metrics registry. The checkpoint must have been
    /// taken under the same shard count; workers may differ freely.
    ///
    /// # Errors
    /// [`EngineError::CheckpointShardMismatch`] when the checkpoint's
    /// shard count differs from the engine's.
    #[deprecated(note = "use Engine::session_builder().detector(..).resume_from(..).start()")]
    pub fn resume_session(
        &self,
        classifier: Arc<dyn DoxDetector>,
        checkpoint: SessionCheckpoint,
    ) -> Result<Session, EngineError> {
        self.session_builder()
            .detector(classifier)
            .resume_from(checkpoint)
            .start()
    }

    /// Resume a session from a checkpoint into an explicit registry.
    ///
    /// # Errors
    /// [`EngineError::CheckpointShardMismatch`] when the checkpoint's
    /// shard count differs from the engine's.
    #[deprecated(
        note = "use Engine::session_builder().detector(..).registry(..).resume_from(..).start()"
    )]
    pub fn resume_session_with_registry(
        &self,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
        checkpoint: SessionCheckpoint,
    ) -> Result<Session, EngineError> {
        self.session_builder()
            .detector(classifier)
            .registry(registry)
            .resume_from(checkpoint)
            .start()
    }

    /// Resume a session from a checkpoint with causal tracing attached.
    ///
    /// # Errors
    /// [`EngineError::CheckpointShardMismatch`] when the checkpoint's
    /// shard count differs from the engine's.
    #[deprecated(
        note = "use Engine::session_builder().detector(..).registry(..).tracer(..).resume_from(..).start()"
    )]
    pub fn resume_traced_session(
        &self,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
        tracer: &Tracer,
        checkpoint: SessionCheckpoint,
    ) -> Result<Session, EngineError> {
        self.session_builder()
            .detector(classifier)
            .registry(registry)
            .tracer(tracer)
            .resume_from(checkpoint)
            .start()
    }
}

/// One-stop configuration for starting a [`Session`], obtained from
/// [`Engine::session_builder`]. Replaces the former six
/// `Engine::{session, session_with_registry, traced_session,
/// resume_session, resume_session_with_registry, resume_traced_session}`
/// constructors with a single typed surface:
///
/// * [`detector`](SessionBuilder::detector) — **required**; the trained
///   (or stub) classifier the stage workers call.
/// * [`registry`](SessionBuilder::registry) — optional; defaults to the
///   process-global metrics registry.
/// * [`tracer`](SessionBuilder::tracer) — optional; defaults to a
///   disabled tracer (no causal hops recorded).
/// * [`resume_from`](SessionBuilder::resume_from) — optional; restores a
///   [`SessionCheckpoint`] instead of starting empty.
/// * [`spill`](SessionBuilder::spill) — optional; backs the dedup shards
///   with a [`dox_store::Store`] so per-shard memory stays bounded and
///   resume is O(checkpoint).
///
/// Invalid combinations surface as typed [`EngineError`]s from
/// [`start`](SessionBuilder::start) rather than panics: a missing
/// detector is [`EngineError::MissingDetector`], a checkpoint taken under
/// a different shard count is
/// [`EngineError::CheckpointShardMismatch`].
#[must_use = "builders do nothing until start() is called"]
pub struct SessionBuilder<'e> {
    engine: &'e Engine,
    detector: Option<Arc<dyn DoxDetector>>,
    registry: Option<Registry>,
    tracer: Option<Tracer>,
    resume_from: Option<SessionCheckpoint>,
    spill: Option<DedupSpillConfig>,
}

impl std::fmt::Debug for SessionBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("engine", self.engine)
            .field("detector", &self.detector.is_some())
            .field("registry", &self.registry.is_some())
            .field("tracer", &self.tracer.is_some())
            .field("resume_from", &self.resume_from.is_some())
            .field("spill", &self.spill.is_some())
            .finish()
    }
}

impl SessionBuilder<'_> {
    /// Set the classifier the stage workers consult (required).
    pub fn detector(mut self, detector: Arc<dyn DoxDetector>) -> Self {
        self.detector = Some(detector);
        self
    }

    /// Report metrics into an explicit registry instead of the
    /// process-global one (tests and side-by-side runs want isolation).
    pub fn registry(mut self, registry: &Registry) -> Self {
        self.registry = Some(registry.clone());
        self
    }

    /// Record causal trace hops for sampled documents into the given
    /// [`Tracer`]. Tracing is pure observation: output stays
    /// byte-identical to an untraced session.
    pub fn tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = Some(tracer.clone());
        self
    }

    /// Restore the session from a checkpoint instead of starting empty.
    /// The checkpoint must have been taken under the same shard count;
    /// workers may differ freely.
    pub fn resume_from(mut self, checkpoint: SessionCheckpoint) -> Self {
        self.resume_from = Some(checkpoint);
        self
    }

    /// Back the dedup shards with a store: once a shard's in-memory maps
    /// grow past the configured cap they drain into per-shard store
    /// tables, and [`Session::checkpoint`] snapshots only the in-memory
    /// remainder. The caller owns the store's durability — call
    /// [`dox_store::Store::checkpoint`] whenever a session checkpoint is
    /// persisted so the store commit and the snapshot stay atomic.
    pub fn spill(mut self, spill: DedupSpillConfig) -> Self {
        self.spill = Some(spill);
        self
    }

    /// Validate the combination and spawn the session threads.
    ///
    /// # Errors
    /// * [`EngineError::MissingDetector`] when no detector was set.
    /// * [`EngineError::CheckpointShardMismatch`] when resuming a
    ///   checkpoint taken under a different dedup shard count.
    pub fn start(self) -> Result<Session, EngineError> {
        let detector = self.detector.ok_or(EngineError::MissingDetector)?;
        if let Some(checkpoint) = &self.resume_from {
            if checkpoint.shards != self.engine.config.shards {
                return Err(EngineError::CheckpointShardMismatch {
                    expected: self.engine.config.shards,
                    found: checkpoint.shards,
                });
            }
        }
        let disabled;
        let tracer = match &self.tracer {
            Some(tracer) => tracer,
            None => {
                disabled = Tracer::disabled();
                &disabled
            }
        };
        let registry = match &self.registry {
            Some(registry) => registry,
            None => dox_obs::global(),
        };
        Ok(Session::spawn(
            &self.engine.config,
            detector,
            registry,
            tracer,
            self.resume_from,
            self.spill,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_zero_workers() {
        assert_eq!(
            Engine::builder().workers(0).build().unwrap_err(),
            EngineError::ZeroWorkers
        );
    }

    #[test]
    fn builder_rejects_zero_queue_depth() {
        assert_eq!(
            Engine::builder().queue_depth(0).build().unwrap_err(),
            EngineError::ZeroQueueDepth
        );
    }

    #[test]
    fn builder_rejects_zero_shards_and_chunk() {
        assert_eq!(
            Engine::builder().shards(0).build().unwrap_err(),
            EngineError::ZeroShards
        );
        assert_eq!(
            Engine::builder().chunk(0).build().unwrap_err(),
            EngineError::ZeroChunk
        );
    }

    #[test]
    fn defaults_are_usable() {
        let engine = Engine::builder().build().expect("defaults valid");
        assert!(engine.config().workers >= 1);
        assert!(engine.config().queue_depth >= 1);
    }

    #[test]
    fn session_builder_requires_a_detector() {
        let engine = Engine::builder().workers(1).build().expect("valid");
        let err = engine
            .session_builder()
            .start()
            .err()
            .expect("missing detector must be rejected");
        assert_eq!(err, EngineError::MissingDetector);
        assert!(err.to_string().contains("detector"));
    }

    #[test]
    fn session_builder_rejects_shard_mismatched_resume() {
        struct Never;
        impl DoxDetector for Never {
            fn is_dox(&self, _text: &str) -> bool {
                false
            }
        }
        let engine = Engine::builder()
            .workers(1)
            .shards(8)
            .build()
            .expect("valid");
        let registry = Registry::new();
        let mut session = engine
            .session_builder()
            .detector(Arc::new(Never))
            .registry(&registry)
            .start()
            .expect("detector set");
        let checkpoint = session.checkpoint().expect("quiescent checkpoint");
        session.finish().expect("clean finish");

        let narrower = Engine::builder()
            .workers(1)
            .shards(4)
            .build()
            .expect("valid");
        let err = narrower
            .session_builder()
            .detector(Arc::new(Never))
            .registry(&registry)
            .resume_from(checkpoint)
            .start()
            .err()
            .expect("shard mismatch must be rejected");
        assert_eq!(
            err,
            EngineError::CheckpointShardMismatch {
                expected: 4,
                found: 8
            }
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_shims_still_start_sessions() {
        struct Never;
        impl DoxDetector for Never {
            fn is_dox(&self, _text: &str) -> bool {
                false
            }
        }
        let engine = Engine::builder().workers(1).build().expect("valid");
        let registry = Registry::new();
        let output = engine
            .session_with_registry(Arc::new(Never), &registry)
            .finish()
            .expect("clean finish");
        assert_eq!(output.counters().total, 0);
    }

    #[test]
    fn errors_render_useful_messages() {
        assert!(EngineError::InvalidPeriod(7).to_string().contains('7'));
        let failed = EngineError::StageFailed {
            stage: "router",
            cause: StagePanic("boom".into()),
        };
        assert!(failed.to_string().contains("router"));
        use std::error::Error;
        assert_eq!(
            failed.source().map(ToString::to_string),
            Some("boom".into())
        );
        assert!(EngineError::CheckpointShardMismatch {
            expected: 8,
            found: 4
        }
        .to_string()
        .contains('8'));
    }
}
