//! `dox-engine` — the sharded streaming ingest engine.
//!
//! The batch pipeline in `dox-core` processes the collected corpus in
//! fill-then-drain batches: collect 8 k documents, block, fan the pure
//! stage out, reduce, repeat. This crate replaces that with a streaming
//! topology — a bounded work queue with real backpressure, a pool of
//! stage workers, dedup state sharded by account-set signature, and
//! sequence-number reorder buffers in front of every stateful commit —
//! while keeping the output **byte-identical** to a sequential pass for
//! any `(workers, shards)` configuration. Determinism is the contract:
//! an [`crate::output::PipelineOutput`] is a pure function of the
//! document stream, never of thread scheduling.
//!
//! # Example
//!
//! ```
//! use dox_engine::{DoxDetector, Engine};
//! use std::sync::Arc;
//!
//! struct Keyword;
//! impl DoxDetector for Keyword {
//!     fn is_dox(&self, text: &str) -> bool { text.contains("dox") }
//! }
//!
//! let engine = Engine::builder().workers(2).shards(4).build()?;
//! let registry = dox_obs::Registry::new();
//! let mut session = engine.session_with_registry(Arc::new(Keyword), &registry);
//! // session.ingest(period, collected_doc)? for every document…
//! let output = session.finish()?;
//! assert_eq!(output.counters().total, 0);
//! # Ok::<(), dox_engine::EngineError>(())
//! ```
//!
//! The engine deliberately knows nothing about the trained classifier in
//! `dox-core`: it accepts anything implementing [`DoxDetector`], which is
//! what lets `dox-core` sit *above* this crate and re-export it.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dedup;
pub mod output;
pub mod queue;
pub mod reorder;
pub mod session;
pub mod stage;

pub use dedup::{Deduplicator, DuplicateKind};
pub use output::{DetectedDox, PipelineCounters, PipelineOutput, StagedDoc};
pub use session::Session;
pub use stage::{classify_and_extract, DoxDetector, StageLocal, StageMetrics};

use dox_obs::Registry;
use std::sync::Arc;

/// Errors from building an engine or running a session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// `workers` was zero — nothing would ever pop the work queue.
    ZeroWorkers,
    /// `shards` was zero — no dedup shard to route doxes to.
    ZeroShards,
    /// `queue_depth` was zero — the first push would deadlock.
    ZeroQueueDepth,
    /// `chunk` was zero — chunks could never fill and dispatch.
    ZeroChunk,
    /// `ingest` was handed a period outside the study's two collection
    /// periods.
    InvalidPeriod(u8),
    /// A stage queue was closed while the session was still feeding it
    /// (only possible if a downstream thread died).
    Disconnected,
    /// A named engine thread panicked.
    StageFailed(&'static str),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroWorkers => write!(f, "engine needs at least one stage worker"),
            EngineError::ZeroShards => write!(f, "engine needs at least one dedup shard"),
            EngineError::ZeroQueueDepth => write!(f, "engine queue depth must be at least 1"),
            EngineError::ZeroChunk => write!(f, "engine chunk size must be at least 1"),
            EngineError::InvalidPeriod(p) => {
                write!(f, "period {p} is not a collection period (expected 1 or 2)")
            }
            EngineError::Disconnected => write!(f, "engine stage disconnected mid-stream"),
            EngineError::StageFailed(stage) => write!(f, "engine {stage} thread panicked"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Tuning knobs for the ingest topology. None of them affect the result —
/// only throughput and memory. Build one through [`Engine::builder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Stage worker threads running the pure classify/extract stage.
    pub workers: usize,
    /// Dedup shards (each owns an isolated [`Deduplicator`]).
    pub shards: usize,
    /// Bounded depth, in chunks, of the work and staged queues — the
    /// backpressure window.
    pub queue_depth: usize,
    /// Documents per work chunk (amortizes queue handoff).
    pub chunk: usize,
}

impl Default for EngineConfig {
    /// Workers default to the machine's available parallelism; topology
    /// never changes results, so the default favors throughput.
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            shards: 8,
            queue_depth: 4,
            chunk: 1024,
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<(), EngineError> {
        if self.workers == 0 {
            return Err(EngineError::ZeroWorkers);
        }
        if self.shards == 0 {
            return Err(EngineError::ZeroShards);
        }
        if self.queue_depth == 0 {
            return Err(EngineError::ZeroQueueDepth);
        }
        if self.chunk == 0 {
            return Err(EngineError::ZeroChunk);
        }
        Ok(())
    }
}

/// Builder for [`Engine`] — the crate's front door.
///
/// ```
/// let engine = dox_engine::Engine::builder()
///     .workers(4)
///     .shards(8)
///     .queue_depth(4)
///     .build()
///     .expect("non-zero topology");
/// assert_eq!(engine.config().workers, 4);
/// ```
#[derive(Debug, Clone, Default)]
#[must_use = "builders do nothing until build() is called"]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Set the stage worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Set the dedup shard count.
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Set the bounded queue depth, in chunks.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Set the number of documents batched per work chunk.
    pub fn chunk(mut self, chunk: usize) -> Self {
        self.config.chunk = chunk;
        self
    }

    /// Validate the topology and produce the engine.
    pub fn build(self) -> Result<Engine, EngineError> {
        self.config.validate()?;
        Ok(Engine {
            config: self.config,
        })
    }
}

/// A validated ingest topology. Cheap to clone; spawns threads only when
/// a [`Session`] starts.
#[derive(Debug, Clone)]
pub struct Engine {
    config: EngineConfig,
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Build directly from a config (equivalent to the builder).
    pub fn from_config(config: EngineConfig) -> Result<Self, EngineError> {
        config.validate()?;
        Ok(Self { config })
    }

    /// The validated topology.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Start a session reporting into the process-global metrics
    /// registry.
    pub fn session(&self, classifier: Arc<dyn DoxDetector>) -> Session {
        self.session_with_registry(classifier, dox_obs::global())
    }

    /// Start a session reporting into an explicit registry (tests and
    /// side-by-side runs want isolated metrics).
    pub fn session_with_registry(
        &self,
        classifier: Arc<dyn DoxDetector>,
        registry: &Registry,
    ) -> Session {
        Session::spawn(&self.config, classifier, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_rejects_zero_workers() {
        assert_eq!(
            Engine::builder().workers(0).build().unwrap_err(),
            EngineError::ZeroWorkers
        );
    }

    #[test]
    fn builder_rejects_zero_queue_depth() {
        assert_eq!(
            Engine::builder().queue_depth(0).build().unwrap_err(),
            EngineError::ZeroQueueDepth
        );
    }

    #[test]
    fn builder_rejects_zero_shards_and_chunk() {
        assert_eq!(
            Engine::builder().shards(0).build().unwrap_err(),
            EngineError::ZeroShards
        );
        assert_eq!(
            Engine::builder().chunk(0).build().unwrap_err(),
            EngineError::ZeroChunk
        );
    }

    #[test]
    fn defaults_are_usable() {
        let engine = Engine::builder().build().expect("defaults valid");
        assert!(engine.config().workers >= 1);
        assert!(engine.config().queue_depth >= 1);
    }

    #[test]
    fn errors_render_useful_messages() {
        assert!(EngineError::InvalidPeriod(7).to_string().contains('7'));
        assert!(EngineError::StageFailed("router")
            .to_string()
            .contains("router"));
    }
}
