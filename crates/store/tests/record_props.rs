//! Property tests for the segment record framing (ISSUE 9 satellite 1).
//!
//! Two properties the recovery path leans on:
//!
//! * encode → decode is the identity for arbitrary key/value bytes;
//! * flipping any single bit anywhere in a record — header, CRC field,
//!   flags, key length, key or value — is always detected by [`scan`],
//!   and the quarantine cuts the *tail*: records before the corrupted
//!   one are always preserved intact, records from the corruption
//!   onward are dropped.

use dox_store::{decode_record, encode_record, scan};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    #[test]
    fn encode_decode_round_trips_arbitrary_bytes(
        key in vec(any::<u8>(), 0..64),
        value in vec(any::<u8>(), 0..256),
        tombstone in any::<bool>(),
    ) {
        let mut buf = Vec::new();
        let frame_len = encode_record(&key, &value, tombstone, &mut buf);
        prop_assert_eq!(frame_len, buf.len());
        let (record, decoded_len) = decode_record(&buf).expect("intact frame decodes");
        prop_assert_eq!(decoded_len, frame_len);
        prop_assert_eq!(record.key, &key[..]);
        prop_assert_eq!(record.value, &value[..]);
        prop_assert_eq!(record.tombstone, tombstone);
    }

    #[test]
    fn single_bit_corruption_quarantines_only_the_tail(
        key in vec(any::<u8>(), 0..24),
        value in vec(any::<u8>(), 0..48),
    ) {
        // Three records; the middle one takes the hit at every offset.
        let mut buf = Vec::new();
        encode_record(b"before", b"intact", false, &mut buf);
        let first_end = buf.len();
        encode_record(&key, &value, false, &mut buf);
        let second_end = buf.len();
        encode_record(b"after", b"dropped", false, &mut buf);

        for at in first_end..second_end {
            for bit in 0..8u8 {
                let mut torn = buf.clone();
                torn[at] ^= 1 << bit;
                let result = scan(&torn);
                // The corruption is always detected: nothing at or past
                // the flipped record survives the scan.
                prop_assert_eq!(
                    result.records.len(),
                    1,
                    "bit {} of byte {} went undetected",
                    bit,
                    at
                );
                prop_assert_eq!(result.valid_len, first_end as u64);
                // The record before the corruption is byte-identical.
                let survivor = &result.records[0].2;
                prop_assert_eq!(survivor.key, b"before" as &[u8]);
                prop_assert_eq!(survivor.value, b"intact" as &[u8]);
            }
        }
    }
}
