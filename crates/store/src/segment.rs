//! Segment record framing.
//!
//! A segment is a flat sequence of length-prefixed, CRC-framed records:
//!
//! ```text
//! ┌────────────┬────────────┬───────┬─────────────┬─────┬───────┐
//! │ len: u32le │ crc: u32le │ flags │ key_len:u32 │ key │ value │
//! └────────────┴────────────┴───────┴─────────────┴─────┴───────┘
//!               ╰──────── crc covers flags..value ─────────────╯
//! ```
//!
//! `len` counts everything after the `crc` field, so a reader knows the
//! full frame size from the first eight bytes. The CRC (IEEE 802.3
//! CRC-32, hand-rolled — no external dependency) covers the payload, so
//! a frame is either provably intact or rejected. [`scan`] walks a
//! buffer frame by frame and stops at the first record that fails any
//! check — a short header, a length past the buffer end, a CRC
//! mismatch, or malformed framing — reporting how many bytes were valid
//! so the caller can truncate the torn tail instead of failing the
//! whole segment.

/// Frame header size: the `len` and `crc` fields.
pub const HEADER_LEN: usize = 8;

/// Fixed payload overhead: the flags byte and the `key_len` field.
const PAYLOAD_FIXED: usize = 5;

/// Flag bit marking a tombstone (deletion) record.
const FLAG_TOMBSTONE: u8 = 1;

/// IEEE CRC-32 lookup table, built at compile time.
const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// IEEE 802.3 CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// One decoded record, borrowing from the segment buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    /// The record key (table prefix included).
    pub key: &'a [u8],
    /// The record value; empty for tombstones.
    pub value: &'a [u8],
    /// Whether this record deletes its key.
    pub tombstone: bool,
}

/// Append the frame for `(key, value, tombstone)` to `out`; returns the
/// frame length in bytes.
pub fn encode_record(key: &[u8], value: &[u8], tombstone: bool, out: &mut Vec<u8>) -> usize {
    let payload_len = PAYLOAD_FIXED + key.len() + value.len();
    let frame_len = HEADER_LEN + payload_len;
    out.reserve(frame_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    let crc_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    let payload_at = out.len();
    out.push(if tombstone { FLAG_TOMBSTONE } else { 0 });
    out.extend_from_slice(&(key.len() as u32).to_le_bytes());
    out.extend_from_slice(key);
    out.extend_from_slice(value);
    let crc = crc32(&out[payload_at..]);
    out[crc_at..crc_at + 4].copy_from_slice(&crc.to_le_bytes());
    frame_len
}

/// Decode the record starting at the beginning of `buf`.
///
/// Returns the record and the full frame length, or `None` when the
/// frame is torn or corrupt (short header, length past the buffer, CRC
/// mismatch, unknown flags, or a key length inconsistent with `len`).
pub fn decode_record(buf: &[u8]) -> Option<(Record<'_>, usize)> {
    if buf.len() < HEADER_LEN {
        return None;
    }
    let payload_len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let stored_crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    if payload_len < PAYLOAD_FIXED || buf.len() < HEADER_LEN + payload_len {
        return None;
    }
    let payload = &buf[HEADER_LEN..HEADER_LEN + payload_len];
    if crc32(payload) != stored_crc {
        return None;
    }
    let flags = payload[0];
    if flags & !FLAG_TOMBSTONE != 0 {
        return None;
    }
    let key_len = u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]) as usize;
    if PAYLOAD_FIXED + key_len > payload_len {
        return None;
    }
    let key = &payload[PAYLOAD_FIXED..PAYLOAD_FIXED + key_len];
    let value = &payload[PAYLOAD_FIXED + key_len..];
    Some((
        Record {
            key,
            value,
            tombstone: flags & FLAG_TOMBSTONE != 0,
        },
        HEADER_LEN + payload_len,
    ))
}

/// The result of scanning a segment buffer.
#[derive(Debug)]
pub struct Scan<'a> {
    /// Every intact record with its frame offset and frame length.
    pub records: Vec<(u64, u32, Record<'a>)>,
    /// Bytes of `buf` covered by intact records — everything past this
    /// point is a torn or corrupt tail to quarantine.
    pub valid_len: u64,
}

/// Walk `buf` record by record, stopping at the first frame that fails
/// validation. Records *before* the failure are always preserved; the
/// failing record and everything after it are quarantined, never the
/// other way around.
pub fn scan(buf: &[u8]) -> Scan<'_> {
    let mut records = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match decode_record(&buf[at..]) {
            Some((record, frame_len)) => {
                records.push((at as u64, frame_len as u32, record));
                at += frame_len;
            }
            None => break,
        }
    }
    Scan {
        records,
        valid_len: at as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut buf = Vec::new();
        let n = encode_record(b"k1", b"hello", false, &mut buf);
        assert_eq!(n, buf.len());
        let (rec, len) = decode_record(&buf).expect("intact frame");
        assert_eq!(len, n);
        assert_eq!(rec.key, b"k1");
        assert_eq!(rec.value, b"hello");
        assert!(!rec.tombstone);
    }

    #[test]
    fn tombstones_round_trip_with_empty_values() {
        let mut buf = Vec::new();
        encode_record(b"gone", b"", true, &mut buf);
        let (rec, _) = decode_record(&buf).expect("intact frame");
        assert!(rec.tombstone);
        assert!(rec.value.is_empty());
    }

    #[test]
    fn scan_stops_at_torn_tail_keeping_earlier_records() {
        let mut buf = Vec::new();
        encode_record(b"a", b"1", false, &mut buf);
        let keep = buf.len();
        encode_record(b"b", b"2", false, &mut buf);
        // Tear the second record: drop its last byte.
        buf.pop();
        let scan = scan(&buf);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, keep as u64);
        assert_eq!(scan.records[0].2.key, b"a");
    }

    #[test]
    fn scan_rejects_crc_corruption_mid_buffer() {
        let mut buf = Vec::new();
        encode_record(b"a", b"1", false, &mut buf);
        let first = buf.len();
        encode_record(b"b", b"2", false, &mut buf);
        encode_record(b"c", b"3", false, &mut buf);
        // Flip one value bit inside the second record's payload.
        buf[first + HEADER_LEN + PAYLOAD_FIXED] ^= 0x40;
        let scan = scan(&buf);
        assert_eq!(scan.records.len(), 1, "only the record before the flip");
        assert_eq!(scan.valid_len, first as u64);
    }
}
