//! The store manifest: the single atomic commit point.
//!
//! Everything durable about a store is published through one JSON file,
//! replaced with [`dox_fault::write_file_atomic`] (tmp, fsync, rename,
//! directory fsync). The manifest lists the sealed segments, the
//! active segment and how many of its bytes are committed, so recovery
//! is a pure function of the manifest: segment bytes the manifest does
//! not reference are a torn tail to discard, and segment files it does
//! not name are garbage from an interrupted rotation or compaction.
//!
//! The embedded fingerprint follows the same discipline as the fault
//! plan and study checkpoints: a stable hash over the content, checked
//! on load, so a half-edited or bit-rotted manifest is rejected loudly
//! instead of silently steering recovery.

use crate::StoreError;
use serde::value::Value;
use serde::Serialize;
use std::path::Path;

/// File name of the manifest inside a store directory.
pub const MANIFEST_NAME: &str = "MANIFEST.json";

/// Current manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// One sealed (read-only, fully committed) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SegmentMeta {
    /// Segment id (file `seg-<id>.seg`).
    pub id: u64,
    /// Committed length in bytes — the whole file, for a sealed segment.
    pub len: u64,
}

/// The durable state of a store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Manifest {
    /// Format version; mismatches are rejected.
    pub version: u32,
    /// Sealed segments in log order (oldest first).
    pub sealed: Vec<SegmentMeta>,
    /// Id of the active (append) segment.
    pub active_id: u64,
    /// Committed bytes of the active segment; file bytes past this are
    /// an uncommitted tail.
    pub active_len: u64,
    /// Next segment id to allocate.
    pub next_id: u64,
}

/// 64-bit splittable hash mix (same shape the fault plan uses).
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl Default for Manifest {
    fn default() -> Self {
        Self {
            version: MANIFEST_VERSION,
            sealed: Vec::new(),
            active_id: 1,
            active_len: 0,
            next_id: 2,
        }
    }
}

impl Manifest {
    /// Stable content hash, embedded on write and verified on load.
    pub fn fingerprint(&self) -> u64 {
        let mut h = mix(u64::from(self.version) ^ 0x0057_08E5_u64);
        for seg in &self.sealed {
            h = mix(h ^ seg.id);
            h = mix(h ^ seg.len);
        }
        h = mix(h ^ self.active_id);
        h = mix(h ^ self.active_len);
        mix(h ^ self.next_id)
    }

    /// Serialize to the on-disk JSON form (fingerprint included).
    pub fn to_json(&self) -> String {
        #[derive(Serialize)]
        struct Flat {
            version: u32,
            fingerprint: u64,
            sealed: Vec<SegmentMeta>,
            active_id: u64,
            active_len: u64,
            next_id: u64,
        }
        serde_json::to_string_pretty(&Flat {
            version: self.version,
            fingerprint: self.fingerprint(),
            sealed: self.sealed.clone(),
            active_id: self.active_id,
            active_len: self.active_len,
            next_id: self.next_id,
        })
        .unwrap_or_default()
    }

    /// Parse and verify the on-disk JSON form.
    pub fn parse(text: &str) -> Result<Manifest, StoreError> {
        let corrupt = |detail: &str| StoreError::Corrupt {
            detail: format!("manifest: {detail}"),
        };
        let value: Value = serde_json::from_str(text).map_err(|_| corrupt("not valid JSON"))?;
        let obj = value.as_object().ok_or_else(|| corrupt("not an object"))?;
        let mut manifest = Manifest::default();
        let mut fingerprint = None;
        let mut saw_version = false;
        for (field, v) in obj {
            match field.as_str() {
                "version" => {
                    manifest.version =
                        u32::try_from(v.as_u64().ok_or_else(|| corrupt("bad version"))?)
                            .map_err(|_| corrupt("bad version"))?;
                    saw_version = true;
                }
                "fingerprint" => {
                    fingerprint = Some(v.as_u64().ok_or_else(|| corrupt("bad fingerprint"))?);
                }
                "sealed" => {
                    let arr = v.as_array().ok_or_else(|| corrupt("bad sealed list"))?;
                    manifest.sealed = arr
                        .iter()
                        .map(|s| {
                            let o = s.as_object()?;
                            let mut id = None;
                            let mut len = None;
                            for (k, sv) in o {
                                match k.as_str() {
                                    "id" => id = sv.as_u64(),
                                    "len" => len = sv.as_u64(),
                                    _ => return None,
                                }
                            }
                            Some(SegmentMeta { id: id?, len: len? })
                        })
                        .collect::<Option<Vec<_>>>()
                        .ok_or_else(|| corrupt("bad sealed entry"))?;
                }
                "active_id" => {
                    manifest.active_id = v.as_u64().ok_or_else(|| corrupt("bad active_id"))?;
                }
                "active_len" => {
                    manifest.active_len = v.as_u64().ok_or_else(|| corrupt("bad active_len"))?;
                }
                "next_id" => {
                    manifest.next_id = v.as_u64().ok_or_else(|| corrupt("bad next_id"))?;
                }
                other => return Err(corrupt(&format!("unknown field `{other}`"))),
            }
        }
        if !saw_version || manifest.version != MANIFEST_VERSION {
            return Err(corrupt("unsupported version"));
        }
        match fingerprint {
            Some(f) if f == manifest.fingerprint() => Ok(manifest),
            Some(_) => Err(corrupt("fingerprint mismatch")),
            None => Err(corrupt("missing fingerprint")),
        }
    }

    /// Atomically publish this manifest at `path`.
    pub fn write_atomic(&self, path: &Path) -> Result<(), StoreError> {
        dox_fault::write_file_atomic(path, self.to_json().as_bytes()).map_err(|source| {
            StoreError::Io {
                context: "manifest swap",
                source,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_json() {
        let manifest = Manifest {
            version: MANIFEST_VERSION,
            sealed: vec![
                SegmentMeta { id: 1, len: 128 },
                SegmentMeta { id: 2, len: 64 },
            ],
            active_id: 3,
            active_len: 40,
            next_id: 4,
        };
        let back = Manifest::parse(&manifest.to_json()).expect("parse");
        assert_eq!(back, manifest);
    }

    #[test]
    fn tampered_manifest_is_rejected() {
        let json = Manifest::default().to_json();
        let tampered = json.replace("\"active_len\": 0", "\"active_len\": 999");
        assert!(matches!(
            Manifest::parse(&tampered),
            Err(StoreError::Corrupt { .. })
        ));
        assert!(Manifest::parse("{not json").is_err());
        assert!(
            Manifest::parse("{\"version\": 1}").is_err(),
            "no fingerprint"
        );
    }
}
