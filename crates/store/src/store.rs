//! The store proper: segments + manifest + in-memory index.
//!
//! # Concurrency and lock discipline
//!
//! Two locks, never nested and never held across file I/O:
//!
//! * `index` — the key → location map plus live/dead byte accounting;
//! * `log` — the append state: the pending (unflushed) byte buffer,
//!   segment roster and commit bookkeeping.
//!
//! `put`/`delete`/`get` are safe to call concurrently: mutations under
//! a lock touch memory only (appends go to the pending buffer), and
//! durable reads happen after the relevant guard is dropped.
//! [`Store::checkpoint`] — flush, fsync, manifest swap, compaction — is
//! the only place file writes happen, and it must be called with no
//! concurrent readers or writers (the engine quiesces its shard workers
//! first; the study and serve drains are single-threaded coordinators).
//!
//! # Commit protocol
//!
//! 1. append the pending buffer to the active segment file, fsync;
//! 2. atomically swap `MANIFEST.json` to reference the new bytes.
//!
//! A crash before (2) leaves file bytes past the manifest's
//! `active_len`: recovery truncates them (a *recovered truncation*) and
//! the state observed is exactly the previous commit. Compaction reuses
//! the same protocol — new segment files are fully written and fsync'd
//! before the swap, and files the manifest stops referencing are
//! deleted afterwards (or cleaned up at the next open after a crash).

use crate::manifest::{Manifest, SegmentMeta, MANIFEST_NAME};
use crate::segment::{self, scan};
use crate::StoreError;
use dox_fault::StoreKillPoint;
use dox_obs::{Gauge, Registry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Tuning knobs for a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Seal the active segment once its committed size reaches this.
    pub segment_max_bytes: u64,
    /// Skip compaction below this much total data (not worth the churn).
    pub compact_min_bytes: u64,
    /// Compact at a checkpoint when dead bytes exceed this share (ppm)
    /// of total bytes.
    pub compact_dead_ppm: u32,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            segment_max_bytes: 8 * 1024 * 1024,
            compact_min_bytes: 64 * 1024,
            compact_dead_ppm: 500_000,
        }
    }
}

/// One raw `(key, value)` pair as returned by [`Store::scan_prefix`].
pub type RawEntry = (Vec<u8>, Vec<u8>);

/// Location of one committed-or-pending record frame.
#[derive(Debug, Clone, Copy)]
struct Loc {
    seg: u64,
    offset: u64,
    frame_len: u32,
}

/// Key → location map plus byte accounting.
#[derive(Debug, Default)]
struct IndexState {
    map: BTreeMap<Vec<u8>, Loc>,
    live_bytes: u64,
    dead_bytes: u64,
}

/// Append-side state.
#[derive(Debug, Default)]
struct LogState {
    /// Encoded frames accepted but not yet flushed to the active file.
    pending: Vec<u8>,
    sealed: Vec<SegmentMeta>,
    active_id: u64,
    /// Manifest-committed bytes of the active segment.
    active_len: u64,
    next_id: u64,
    /// Store checkpoints committed by this process (kill-point ordinal).
    commits: u64,
    armed_kill: Option<(u64, StoreKillPoint)>,
}

/// Gauges exported into the owning registry.
#[derive(Debug, Clone)]
struct StoreGauges {
    segments: Gauge,
    live_bytes: Gauge,
    dead_bytes: Gauge,
    compactions: Gauge,
    recovered_truncations: Gauge,
}

impl StoreGauges {
    fn resolve(registry: &Registry) -> Self {
        Self {
            segments: registry.gauge("store.segments"),
            live_bytes: registry.gauge("store.live_bytes"),
            dead_bytes: registry.gauge("store.dead_bytes"),
            compactions: registry.gauge("store.compactions"),
            recovered_truncations: registry.gauge("store.recovered_truncations"),
        }
    }
}

/// A crash-safe embedded log-structured KV store.
///
/// See the crate docs for the commit protocol and locking
/// rules. Typed access goes through [`crate::Table`]; the raw byte API
/// here is what the tables are built on.
pub struct Store {
    dir: PathBuf,
    opts: StoreOptions,
    index: Mutex<IndexState>,
    log: Mutex<LogState>,
    gauges: StoreGauges,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("dir", &self.dir)
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

fn io_err(context: &'static str) -> impl FnOnce(std::io::Error) -> StoreError {
    move |source| StoreError::Io { context, source }
}

impl Store {
    /// Open (or create) the store in `dir` with default options,
    /// recovering from any torn state left by a crash.
    pub fn open(dir: impl AsRef<Path>, registry: &Registry) -> Result<Store, StoreError> {
        Self::open_with(dir, StoreOptions::default(), registry)
    }

    /// [`Store::open`] with explicit tuning options.
    pub fn open_with(
        dir: impl AsRef<Path>,
        opts: StoreOptions,
        registry: &Registry,
    ) -> Result<Store, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err("create store dir"))?;
        let gauges = StoreGauges::resolve(registry);
        let manifest_path = dir.join(MANIFEST_NAME);
        let mut manifest = if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path).map_err(io_err("read manifest"))?;
            Manifest::parse(&text)?
        } else {
            Manifest::default()
        };

        let mut truncations = 0i64;
        Self::remove_unreferenced_files(&dir, &manifest, &mut truncations)?;

        // Sealed segments must be present with at least their committed
        // length; longer files carry an uncommitted tail to truncate.
        // A scan failure inside the committed region quarantines the
        // tail of the *log*: that segment is cut at the failure and
        // every later segment (and the active one) is dropped.
        let mut recovered: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut cut_log = false;
        let mut kept_sealed: Vec<SegmentMeta> = Vec::new();
        for meta in manifest.sealed.clone() {
            if cut_log {
                let _ = std::fs::remove_file(segment_path(&dir, meta.id));
                continue;
            }
            let (bytes, valid_len) =
                Self::recover_segment(&dir, meta.id, meta.len, &mut truncations)?;
            if valid_len < meta.len {
                cut_log = true;
                kept_sealed.push(SegmentMeta {
                    id: meta.id,
                    len: valid_len,
                });
            } else {
                kept_sealed.push(meta);
            }
            recovered.push((meta.id, bytes));
        }
        if cut_log {
            // The quarantine cut also drops the active segment.
            let _ = std::fs::remove_file(segment_path(&dir, manifest.active_id));
            let last = kept_sealed.pop().unwrap_or(SegmentMeta { id: 1, len: 0 });
            manifest = Manifest {
                sealed: kept_sealed.clone(),
                active_id: last.id,
                active_len: last.len,
                next_id: manifest.next_id,
                ..Manifest::default()
            };
            // Keep the recovered bytes for the (now active) last segment.
            recovered.retain(|(id, _)| {
                *id == manifest.active_id || manifest.sealed.iter().any(|m| m.id == *id)
            });
        } else {
            let (bytes, valid_len) = Self::recover_segment(
                &dir,
                manifest.active_id,
                manifest.active_len,
                &mut truncations,
            )?;
            if valid_len < manifest.active_len {
                manifest.active_len = valid_len;
            }
            recovered.push((manifest.active_id, bytes));
        }

        // Publish the post-recovery manifest so a crash right after this
        // open replays the same recovery, not a deeper one.
        manifest.write_atomic(&manifest_path)?;

        // Rebuild the index by replaying every committed record in log
        // order; later writes win, tombstones delete.
        let mut index = IndexState::default();
        for (seg_id, bytes) in &recovered {
            for (offset, frame_len, record) in scan(bytes).records {
                let loc = Loc {
                    seg: *seg_id,
                    offset,
                    frame_len,
                };
                index.apply(record.key, record.tombstone, loc);
            }
        }

        let log = LogState {
            pending: Vec::new(),
            sealed: manifest.sealed.clone(),
            active_id: manifest.active_id,
            active_len: manifest.active_len,
            next_id: manifest.next_id,
            commits: 0,
            armed_kill: None,
        };
        gauges.recovered_truncations.add(truncations);
        let store = Store {
            dir,
            opts,
            index: Mutex::new(index),
            log: Mutex::new(log),
            gauges,
        };
        store.publish_gauges();
        Ok(store)
    }

    /// Read a segment file, truncating bytes past `committed_len` and
    /// then cutting any torn tail the CRC scan rejects. Returns the
    /// surviving bytes and their length.
    fn recover_segment(
        dir: &Path,
        id: u64,
        committed_len: u64,
        truncations: &mut i64,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        let path = segment_path(dir, id);
        let mut bytes = Vec::new();
        match File::open(&path) {
            Ok(mut file) => {
                file.read_to_end(&mut bytes)
                    .map_err(io_err("read segment"))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("open segment")(e)),
        }
        if (bytes.len() as u64) < committed_len {
            return Err(StoreError::Corrupt {
                detail: format!(
                    "segment {id}: {} bytes on disk, {} committed — committed data is missing",
                    bytes.len(),
                    committed_len
                ),
            });
        }
        if bytes.len() as u64 > committed_len {
            bytes.truncate(committed_len as usize);
            *truncations += 1;
        }
        let valid_len = scan(&bytes).valid_len;
        if valid_len < committed_len {
            bytes.truncate(valid_len as usize);
            *truncations += 1;
        }
        if (bytes.len() as u64) < std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) {
            let file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(io_err("truncate segment"))?;
            file.set_len(bytes.len() as u64)
                .map_err(io_err("truncate segment"))?;
            file.sync_all().map_err(io_err("truncate segment"))?;
        }
        Ok((bytes, valid_len.min(committed_len)))
    }

    /// Delete files in `dir` the manifest does not reference: stray
    /// segments from an interrupted rotation/compaction and staging
    /// files from an interrupted manifest swap.
    fn remove_unreferenced_files(
        dir: &Path,
        manifest: &Manifest,
        truncations: &mut i64,
    ) -> Result<(), StoreError> {
        let entries = std::fs::read_dir(dir).map_err(io_err("list store dir"))?;
        for entry in entries {
            let entry = entry.map_err(io_err("list store dir"))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if name == MANIFEST_NAME {
                continue;
            }
            let referenced = parse_segment_name(name).is_some_and(|id| {
                id == manifest.active_id || manifest.sealed.iter().any(|m| m.id == id)
            });
            if referenced {
                continue;
            }
            if parse_segment_name(name).is_some() || name.ends_with(".tmp") {
                let nonempty = entry.metadata().map(|m| m.len() > 0).unwrap_or(false);
                std::fs::remove_file(entry.path()).map_err(io_err("remove stray file"))?;
                if nonempty && parse_segment_name(name).is_some() {
                    *truncations += 1;
                }
            }
        }
        Ok(())
    }

    /// Insert or replace `key`.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<(), StoreError> {
        let mut frame = Vec::new();
        let frame_len = segment::encode_record(key, value, false, &mut frame) as u32;
        let loc = {
            let mut log = self.log.lock();
            let offset = log.active_len + log.pending.len() as u64;
            let seg = log.active_id;
            log.pending.extend_from_slice(&frame);
            Loc {
                seg,
                offset,
                frame_len,
            }
        };
        let mut index = self.index.lock();
        index.apply(key, false, loc);
        Ok(())
    }

    /// Delete `key`; returns whether it existed. Appends a tombstone so
    /// the deletion survives a reopen.
    pub fn delete(&self, key: &[u8]) -> Result<bool, StoreError> {
        let existed = { self.index.lock().map.contains_key(key) };
        if !existed {
            return Ok(false);
        }
        let mut frame = Vec::new();
        let frame_len = segment::encode_record(key, b"", true, &mut frame) as u32;
        let loc = {
            let mut log = self.log.lock();
            let offset = log.active_len + log.pending.len() as u64;
            let seg = log.active_id;
            log.pending.extend_from_slice(&frame);
            Loc {
                seg,
                offset,
                frame_len,
            }
        };
        let mut index = self.index.lock();
        index.apply(key, true, loc);
        Ok(true)
    }

    /// Fetch the current value of `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let loc = { self.index.lock().map.get(key).copied() };
        let Some(loc) = loc else { return Ok(None) };
        self.read_value(loc)
    }

    /// Every `(key, value)` whose key starts with `prefix`, in key
    /// order. Used by [`crate::Table::scan`].
    pub fn scan_prefix(&self, prefix: &[u8]) -> Result<Vec<RawEntry>, StoreError> {
        let locs: Vec<(Vec<u8>, Loc)> = {
            let index = self.index.lock();
            index
                .map
                .range(prefix.to_vec()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, loc)| (k.clone(), *loc))
                .collect()
        };
        let mut out = Vec::with_capacity(locs.len());
        for (key, loc) in locs {
            if let Some(value) = self.read_value(loc)? {
                out.push((key, value));
            }
        }
        Ok(out)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.lock().map.len()
    }

    /// Whether the store holds no live keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Arm a simulated crash inside the `nth` (1-based) checkpoint
    /// commit, at `point`. Fault-drill plumbing for the kill-matrix
    /// tests; the "crash" surfaces as [`StoreError::Killed`].
    pub fn arm_kill(&self, nth: u64, point: StoreKillPoint) {
        self.log.lock().armed_kill = Some((nth, point));
    }

    /// Recovered-truncation count observed by this store's registry
    /// gauge (open-time torn tails plus quarantined records).
    pub fn recovered_truncations(&self) -> i64 {
        self.gauges.recovered_truncations.get()
    }

    /// Flush pending records, fsync the segment, atomically swap the
    /// manifest, then compact if the dead-byte ratio crossed the
    /// threshold. This is the durability point: everything `put` before
    /// this call survives a crash after it.
    ///
    /// Must not race `put`/`get`/`delete` (see the module docs).
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let (batch, active_id, ordinal, armed) = {
            let mut log = self.log.lock();
            let batch = std::mem::take(&mut log.pending);
            (batch, log.active_id, log.commits + 1, log.armed_kill)
        };
        let kill_at =
            |point: StoreKillPoint| armed.is_some_and(|(nth, p)| nth == ordinal && p == point);
        if kill_at(StoreKillPoint::BeforeSegmentWrite) {
            return Err(StoreError::Killed {
                ordinal,
                point: StoreKillPoint::BeforeSegmentWrite,
            });
        }
        if !batch.is_empty() {
            let path = segment_path(&self.dir, active_id);
            let mut file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(&path)
                .map_err(io_err("open active segment"))?;
            file.write_all(&batch).map_err(io_err("append segment"))?;
            file.sync_all().map_err(io_err("fsync segment"))?;
        }
        // The batch is durable but unpublished: this is the torn-commit
        // window the fault matrix drills.
        if kill_at(StoreKillPoint::BetweenWriteAndSwap) {
            return Err(StoreError::Killed {
                ordinal,
                point: StoreKillPoint::BetweenWriteAndSwap,
            });
        }
        let manifest = {
            let mut log = self.log.lock();
            log.active_len += batch.len() as u64;
            if log.active_len >= self.opts.segment_max_bytes {
                let sealed_id = log.active_id;
                let sealed_len = log.active_len;
                log.sealed.push(SegmentMeta {
                    id: sealed_id,
                    len: sealed_len,
                });
                log.active_id = log.next_id;
                log.next_id += 1;
                log.active_len = 0;
            }
            Manifest {
                sealed: log.sealed.clone(),
                active_id: log.active_id,
                active_len: log.active_len,
                next_id: log.next_id,
                ..Manifest::default()
            }
        };
        manifest.write_atomic(&self.dir.join(MANIFEST_NAME))?;
        self.log.lock().commits += 1;
        if kill_at(StoreKillPoint::AfterManifestSwap) {
            return Err(StoreError::Killed {
                ordinal,
                point: StoreKillPoint::AfterManifestSwap,
            });
        }
        self.maybe_compact()?;
        self.publish_gauges();
        Ok(())
    }

    /// Rewrite live records into fresh segments when the dead share
    /// crosses the configured threshold. Runs only at checkpoint
    /// boundaries (no background threads) and reuses the write-then-swap
    /// protocol, so a crash mid-compaction recovers to the pre-compaction
    /// commit.
    fn maybe_compact(&self) -> Result<(), StoreError> {
        let (live, dead) = {
            let index = self.index.lock();
            (index.live_bytes, index.dead_bytes)
        };
        let total = live + dead;
        if total < self.opts.compact_min_bytes
            || u128::from(dead) * 1_000_000
                < u128::from(total) * u128::from(self.opts.compact_dead_ppm)
        {
            return Ok(());
        }

        // Snapshot the live locations in key order, then read each frame
        // back (no locks held across the reads).
        let locs: Vec<(Vec<u8>, Loc)> = {
            let index = self.index.lock();
            index.map.iter().map(|(k, l)| (k.clone(), *l)).collect()
        };
        let (old_sealed, old_active, first_new_id) = {
            let log = self.log.lock();
            (log.sealed.clone(), log.active_id, log.next_id)
        };

        let mut new_segments: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut current: Vec<u8> = Vec::new();
        let mut next_id = first_new_id;
        let mut new_locs: Vec<(Vec<u8>, Loc)> = Vec::with_capacity(locs.len());
        let mut live_bytes = 0u64;
        for (key, loc) in locs {
            let frame = self.read_frame(loc)?;
            if current.len() as u64 + frame.len() as u64 > self.opts.segment_max_bytes
                && !current.is_empty()
            {
                new_segments.push((next_id, std::mem::take(&mut current)));
                next_id += 1;
            }
            new_locs.push((
                key,
                Loc {
                    seg: next_id,
                    offset: current.len() as u64,
                    frame_len: loc.frame_len,
                },
            ));
            live_bytes += u64::from(loc.frame_len);
            current.extend_from_slice(&frame);
        }
        new_segments.push((next_id, current));
        let active_id = next_id;
        next_id += 1;

        // Write + fsync every new segment before the swap publishes them.
        for (id, bytes) in &new_segments {
            let path = segment_path(&self.dir, *id);
            let mut file = File::create(&path).map_err(io_err("create compacted segment"))?;
            file.write_all(bytes)
                .map_err(io_err("write compacted segment"))?;
            file.sync_all().map_err(io_err("fsync compacted segment"))?;
        }
        let sealed: Vec<SegmentMeta> = new_segments
            .iter()
            .filter(|(id, _)| *id != active_id)
            .map(|(id, bytes)| SegmentMeta {
                id: *id,
                len: bytes.len() as u64,
            })
            .collect();
        let active_len = new_segments
            .iter()
            .find(|(id, _)| *id == active_id)
            .map_or(0, |(_, b)| b.len() as u64);
        let manifest = Manifest {
            sealed: sealed.clone(),
            active_id,
            active_len,
            next_id,
            ..Manifest::default()
        };
        manifest.write_atomic(&self.dir.join(MANIFEST_NAME))?;

        // Publish the new layout in memory, then drop the old files.
        {
            let mut log = self.log.lock();
            log.sealed = sealed;
            log.active_id = active_id;
            log.active_len = active_len;
            log.next_id = next_id;
        }
        {
            let mut index = self.index.lock();
            for (key, loc) in new_locs {
                index.map.insert(key, loc);
            }
            index.live_bytes = live_bytes;
            index.dead_bytes = 0;
        }
        for meta in old_sealed {
            let _ = std::fs::remove_file(segment_path(&self.dir, meta.id));
        }
        let _ = std::fs::remove_file(segment_path(&self.dir, old_active));
        self.gauges.compactions.add(1);
        Ok(())
    }

    /// Read one full frame, from the pending buffer or from disk.
    fn read_frame(&self, loc: Loc) -> Result<Vec<u8>, StoreError> {
        {
            let log = self.log.lock();
            if loc.seg == log.active_id && loc.offset >= log.active_len {
                let start = (loc.offset - log.active_len) as usize;
                let end = start + loc.frame_len as usize;
                let frame = log
                    .pending
                    .get(start..end)
                    .ok_or_else(|| StoreError::Corrupt {
                        detail: "pending index out of bounds".to_string(),
                    })?;
                return Ok(frame.to_vec());
            }
        }
        let path = segment_path(&self.dir, loc.seg);
        let mut file = File::open(&path).map_err(io_err("open segment"))?;
        file.seek(SeekFrom::Start(loc.offset))
            .map_err(io_err("seek segment"))?;
        let mut frame = vec![0u8; loc.frame_len as usize];
        file.read_exact(&mut frame)
            .map_err(io_err("read segment"))?;
        Ok(frame)
    }

    /// Decode the value behind `loc`, verifying the frame CRC.
    fn read_value(&self, loc: Loc) -> Result<Option<Vec<u8>>, StoreError> {
        let frame = self.read_frame(loc)?;
        match segment::decode_record(&frame) {
            Some((record, _)) if !record.tombstone => Ok(Some(record.value.to_vec())),
            Some(_) => Ok(None),
            None => Err(StoreError::Corrupt {
                detail: "indexed record failed its CRC".to_string(),
            }),
        }
    }

    /// Push current segment/byte accounting into the registry gauges.
    fn publish_gauges(&self) {
        let (live, dead) = {
            let index = self.index.lock();
            (index.live_bytes, index.dead_bytes)
        };
        let segments = {
            let log = self.log.lock();
            log.sealed.len() as i64 + 1
        };
        self.gauges.segments.set(segments);
        self.gauges.live_bytes.set(live as i64);
        self.gauges.dead_bytes.set(dead as i64);
    }
}

impl IndexState {
    /// Apply one record (an insert or a tombstone) to the map and the
    /// live/dead accounting. Used by the replay scan and the write path
    /// so both agree byte-for-byte.
    fn apply(&mut self, key: &[u8], tombstone: bool, loc: Loc) {
        if tombstone {
            // The tombstone frame itself is immediately dead weight; so
            // is whatever it deleted.
            self.dead_bytes += u64::from(loc.frame_len);
            if let Some(old) = self.map.remove(key) {
                self.live_bytes = self.live_bytes.saturating_sub(u64::from(old.frame_len));
                self.dead_bytes += u64::from(old.frame_len);
            }
        } else {
            if let Some(old) = self.map.insert(key.to_vec(), loc) {
                self.live_bytes = self.live_bytes.saturating_sub(u64::from(old.frame_len));
                self.dead_bytes += u64::from(old.frame_len);
            }
            self.live_bytes += u64::from(loc.frame_len);
        }
    }
}

/// Path of segment `id` inside `dir`.
fn segment_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("seg-{id:08}.seg"))
}

/// Parse `seg-<id>.seg` back to its id.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("seg-")?
        .strip_suffix(".seg")?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dox_store_{}_{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn registry() -> Registry {
        Registry::new()
    }

    #[test]
    fn put_get_survive_checkpoint_and_reopen() {
        let dir = scratch("roundtrip");
        let reg = registry();
        {
            let store = Store::open(&dir, &reg).expect("open");
            store.put(b"alpha", b"1").expect("put");
            store.put(b"beta", b"2").expect("put");
            assert_eq!(store.get(b"alpha").expect("get"), Some(b"1".to_vec()));
            store.checkpoint().expect("checkpoint");
        }
        let store = Store::open(&dir, &reg).expect("reopen");
        assert_eq!(store.get(b"alpha").expect("get"), Some(b"1".to_vec()));
        assert_eq!(store.get(b"beta").expect("get"), Some(b"2".to_vec()));
        assert_eq!(store.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncheckpointed_writes_do_not_survive_reopen() {
        let dir = scratch("volatile");
        let reg = registry();
        {
            let store = Store::open(&dir, &reg).expect("open");
            store.put(b"committed", b"yes").expect("put");
            store.checkpoint().expect("checkpoint");
            store.put(b"lost", b"crash").expect("put");
            // No checkpoint: simulated SIGKILL.
        }
        let store = Store::open(&dir, &reg).expect("reopen");
        assert_eq!(store.get(b"committed").expect("get"), Some(b"yes".to_vec()));
        assert_eq!(store.get(b"lost").expect("get"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = scratch("torn");
        let reg = registry();
        {
            let store = Store::open(&dir, &reg).expect("open");
            store.put(b"whole", b"record").expect("put");
            store.checkpoint().expect("checkpoint");
        }
        // A crash mid-append: garbage past the committed length.
        let seg = segment_path(&dir, 1);
        let mut file = OpenOptions::new()
            .append(true)
            .open(&seg)
            .expect("seg file");
        file.write_all(&[0x2A, 0x00, 0x00, 0x00, 0xDE, 0xAD])
            .expect("tear");
        drop(file);
        let reg2 = registry();
        let store = Store::open(&dir, &reg2).expect("reopen");
        assert_eq!(store.get(b"whole").expect("get"), Some(b"record".to_vec()));
        assert!(store.recovered_truncations() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_between_write_and_swap_recovers_to_previous_commit() {
        let dir = scratch("killwindow");
        let reg = registry();
        {
            let store = Store::open(&dir, &reg).expect("open");
            store.put(b"first", b"1").expect("put");
            store.checkpoint().expect("commit 1");
            store.arm_kill(2, StoreKillPoint::BetweenWriteAndSwap);
            store.put(b"second", b"2").expect("put");
            let err = store.checkpoint().expect_err("armed kill fires");
            assert!(
                matches!(err, StoreError::Killed { ordinal: 2, .. }),
                "{err}"
            );
        }
        let reg2 = registry();
        let store = Store::open(&dir, &reg2).expect("reopen");
        assert_eq!(store.get(b"first").expect("get"), Some(b"1".to_vec()));
        assert_eq!(
            store.get(b"second").expect("get"),
            None,
            "unpublished bytes discarded"
        );
        assert!(
            store.recovered_truncations() >= 1,
            "the fsync'd tail was truncated"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_reopen_sees_all_records() {
        let dir = scratch("rotate");
        let reg = registry();
        let opts = StoreOptions {
            segment_max_bytes: 256,
            compact_min_bytes: u64::MAX,
            ..StoreOptions::default()
        };
        {
            let store = Store::open_with(&dir, opts, &reg).expect("open");
            for i in 0..40u64 {
                store
                    .put(format!("key-{i:03}").as_bytes(), &i.to_le_bytes())
                    .expect("put");
                if i % 8 == 7 {
                    store.checkpoint().expect("checkpoint");
                }
            }
            store.checkpoint().expect("final checkpoint");
            assert!(reg.gauge("store.segments").get() > 1, "rotation happened");
        }
        let store = Store::open_with(&dir, opts, &registry()).expect("reopen");
        for i in 0..40u64 {
            assert_eq!(
                store.get(format!("key-{i:03}").as_bytes()).expect("get"),
                Some(i.to_le_bytes().to_vec())
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_reclaims_dead_bytes_without_losing_data() {
        let dir = scratch("compact");
        let reg = registry();
        let opts = StoreOptions {
            segment_max_bytes: 4096,
            compact_min_bytes: 64,
            compact_dead_ppm: 300_000,
        };
        let store = Store::open_with(&dir, opts, &reg).expect("open");
        for round in 0..6u64 {
            for i in 0..32u64 {
                store
                    .put(
                        format!("key-{i:02}").as_bytes(),
                        &(round * 100 + i).to_le_bytes(),
                    )
                    .expect("put");
            }
            store.checkpoint().expect("checkpoint");
        }
        assert!(reg.gauge("store.compactions").get() >= 1, "compaction ran");
        assert_eq!(
            reg.gauge("store.dead_bytes").get(),
            0,
            "dead bytes reclaimed"
        );
        for i in 0..32u64 {
            assert_eq!(
                store.get(format!("key-{i:02}").as_bytes()).expect("get"),
                Some((500 + i).to_le_bytes().to_vec()),
                "latest round survives compaction"
            );
        }
        drop(store);
        let store = Store::open_with(&dir, opts, &registry()).expect("reopen after compaction");
        assert_eq!(store.len(), 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_is_durable_across_reopen() {
        let dir = scratch("delete");
        let reg = registry();
        {
            let store = Store::open(&dir, &reg).expect("open");
            store.put(b"keep", b"1").expect("put");
            store.put(b"drop", b"2").expect("put");
            store.checkpoint().expect("checkpoint");
            assert!(store.delete(b"drop").expect("delete"));
            assert!(!store.delete(b"missing").expect("delete missing"));
            store.checkpoint().expect("checkpoint");
        }
        let store = Store::open(&dir, &registry()).expect("reopen");
        assert_eq!(store.get(b"keep").expect("get"), Some(b"1".to_vec()));
        assert_eq!(store.get(b"drop").expect("get"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_prefix_returns_only_the_table() {
        let dir = scratch("prefix");
        let store = Store::open(&dir, &registry()).expect("open");
        store.put(b"a\0k1", b"1").expect("put");
        store.put(b"a\0k2", b"2").expect("put");
        store.put(b"ab\0k9", b"9").expect("put");
        let hits = store.scan_prefix(b"a\0").expect("scan");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, b"a\0k1");
        assert_eq!(hits[1].0, b"a\0k2");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
