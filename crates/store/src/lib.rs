//! dox-store: a dependency-free embedded log-structured segment store.
//!
//! The crash-safety workhorse behind the pipeline's hot state: dedup
//! shard spill, the OSN monitor schedule, study checkpoints and serve
//! tenant sessions all persist through this crate. Data lives in
//! append-only segments of CRC-framed records (see [`scan`]); the single
//! durable commit point is an atomically swapped manifest
//! (see [`Manifest`]); recovery truncates torn tails instead of failing
//! ([`Store::open`]); and compaction runs only at checkpoint boundaries
//! — no background threads, no non-vendored dependencies.
//!
//! Raw byte access is [`Store`]; applications use [`Table`] for typed
//! keys and values with a per-table key prefix.

#![forbid(unsafe_code)]

mod manifest;
mod segment;
mod store;

pub use manifest::{Manifest, SegmentMeta, MANIFEST_NAME, MANIFEST_VERSION};
pub use segment::{crc32, decode_record, encode_record, scan, Record, Scan};
pub use store::{RawEntry, Store, StoreOptions};

use std::sync::Arc;

/// Everything that can go wrong inside the store.
#[derive(Debug)]
pub enum StoreError {
    /// An OS-level I/O failure, tagged with what the store was doing.
    Io {
        /// What the store was doing when the error hit.
        context: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// On-disk state that fails validation and cannot be recovered by
    /// truncating a tail — e.g. a tampered manifest or missing
    /// committed bytes.
    Corrupt {
        /// Human-readable description of what failed validation.
        detail: String,
    },
    /// An armed fault-drill kill fired (see [`Store::arm_kill`]); the
    /// process should treat this as its simulated death.
    Killed {
        /// 1-based checkpoint ordinal the kill was armed for.
        ordinal: u64,
        /// Where inside the commit the kill landed.
        point: dox_fault::StoreKillPoint,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { context, source } => write!(f, "store i/o ({context}): {source}"),
            StoreError::Corrupt { detail } => write!(f, "store corrupt: {detail}"),
            StoreError::Killed { ordinal, point } => {
                write!(f, "store kill drill fired at commit {ordinal} ({point:?})")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// How a type is used as a table key.
///
/// Key encodings must be order-preserving within a table when scan
/// order matters (hence big-endian integers) and must never produce a
/// byte string containing the table separator semantics — keys are
/// length-delimited by the record frame, so any bytes are safe.
pub trait KeyCodec: Sized {
    /// Append the encoded key to `out`.
    fn encode_key(&self, out: &mut Vec<u8>);
    /// Decode a key previously produced by [`KeyCodec::encode_key`].
    fn decode_key(bytes: &[u8]) -> Option<Self>;
}

/// How a type is stored as a table value.
pub trait ValueCodec: Sized {
    /// Serialize the value to bytes.
    fn encode_value(&self) -> Vec<u8>;
    /// Decode a value previously produced by [`ValueCodec::encode_value`].
    fn decode_value(bytes: &[u8]) -> Option<Self>;
}

impl KeyCodec for u64 {
    fn encode_key(&self, out: &mut Vec<u8>) {
        // Big-endian so lexicographic key order is numeric order.
        out.extend_from_slice(&self.to_be_bytes());
    }
    fn decode_key(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_be_bytes(bytes.try_into().ok()?))
    }
}

impl KeyCodec for Vec<u8> {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode_key(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl KeyCodec for String {
    fn encode_key(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_bytes());
    }
    fn decode_key(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl ValueCodec for u64 {
    fn encode_value(&self) -> Vec<u8> {
        self.to_be_bytes().to_vec()
    }
    fn decode_value(bytes: &[u8]) -> Option<Self> {
        Some(u64::from_be_bytes(bytes.try_into().ok()?))
    }
}

impl ValueCodec for Vec<u8> {
    fn encode_value(&self) -> Vec<u8> {
        self.clone()
    }
    fn decode_value(bytes: &[u8]) -> Option<Self> {
        Some(bytes.to_vec())
    }
}

impl ValueCodec for String {
    fn encode_value(&self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }
    fn decode_value(bytes: &[u8]) -> Option<Self> {
        String::from_utf8(bytes.to_vec()).ok()
    }
}

/// A typed view over a [`Store`], namespaced by a table name.
///
/// Keys are stored as `<table name> 0x00 <encoded key>`; the `0x00`
/// separator keeps `dedup.sets.1` from shadowing `dedup.sets.10`
/// because table names never contain NUL.
#[derive(Debug, Clone)]
pub struct Table<K, V> {
    store: Arc<Store>,
    prefix: Vec<u8>,
    _marker: std::marker::PhantomData<fn(&K) -> V>,
}

impl<K: KeyCodec, V: ValueCodec> Table<K, V> {
    /// A typed table named `name` over `store`.
    ///
    /// # Panics
    /// If `name` contains a NUL byte (it is the key-space separator).
    pub fn new(store: Arc<Store>, name: &str) -> Table<K, V> {
        assert!(
            !name.as_bytes().contains(&0),
            "table names must not contain NUL"
        );
        let mut prefix = name.as_bytes().to_vec();
        prefix.push(0);
        Table {
            store,
            prefix,
            _marker: std::marker::PhantomData,
        }
    }

    fn full_key(&self, key: &K) -> Vec<u8> {
        let mut full = self.prefix.clone();
        key.encode_key(&mut full);
        full
    }

    /// Insert or replace `key`.
    pub fn put(&self, key: &K, value: &V) -> Result<(), StoreError> {
        self.store.put(&self.full_key(key), &value.encode_value())
    }

    /// Fetch the current value of `key`.
    pub fn get(&self, key: &K) -> Result<Option<V>, StoreError> {
        match self.store.get(&self.full_key(key))? {
            Some(bytes) => match V::decode_value(&bytes) {
                Some(v) => Ok(Some(v)),
                None => Err(StoreError::Corrupt {
                    detail: "table value failed to decode".to_string(),
                }),
            },
            None => Ok(None),
        }
    }

    /// Delete `key`; returns whether it existed.
    pub fn delete(&self, key: &K) -> Result<bool, StoreError> {
        self.store.delete(&self.full_key(key))
    }

    /// Every `(key, value)` in this table, in encoded-key order.
    pub fn scan(&self) -> Result<Vec<(K, V)>, StoreError> {
        let raw = self.store.scan_prefix(&self.prefix)?;
        let mut out = Vec::with_capacity(raw.len());
        for (full_key, bytes) in raw {
            let key = K::decode_key(&full_key[self.prefix.len()..]);
            let value = V::decode_value(&bytes);
            match (key, value) {
                (Some(k), Some(v)) => out.push((k, v)),
                _ => {
                    return Err(StoreError::Corrupt {
                        detail: "table entry failed to decode".to_string(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// The underlying store (for checkpointing alongside other tables).
    pub fn store(&self) -> &Arc<Store> {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_obs::Registry;

    #[test]
    fn typed_tables_round_trip_and_stay_namespaced() {
        let dir = std::env::temp_dir().join(format!("dox_store_{}_table", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(Store::open(&dir, &Registry::new()).expect("open"));
        let nums: Table<u64, u64> = Table::new(Arc::clone(&store), "nums");
        let texts: Table<String, String> = Table::new(Arc::clone(&store), "texts");
        nums.put(&7, &70).expect("put");
        nums.put(&2, &20).expect("put");
        texts
            .put(&"seven".to_string(), &"7".to_string())
            .expect("put");
        assert_eq!(nums.get(&7).expect("get"), Some(70));
        assert_eq!(nums.get(&9).expect("get"), None);
        let all = nums.scan().expect("scan");
        assert_eq!(
            all,
            vec![(2, 20), (7, 70)],
            "big-endian keys scan in numeric order"
        );
        assert_eq!(texts.scan().expect("scan").len(), 1, "tables do not bleed");
        assert!(nums.delete(&2).expect("delete"));
        assert_eq!(nums.scan().expect("scan"), vec![(7, 70)]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
