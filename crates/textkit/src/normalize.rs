//! Light-weight text normalization.
//!
//! The classification pipeline lowercases input (the scikit-learn
//! `TfidfVectorizer` default) and the extraction pipeline needs a small set
//! of whitespace / punctuation helpers that behave identically on every
//! platform.

/// Lowercase `text` using Unicode simple case folding.
///
/// Equivalent to `str::to_lowercase` but named to make call sites in the
/// vectorizer self-describing.
pub fn lowercase(text: &str) -> String {
    text.to_lowercase()
}

/// Collapse every run of Unicode whitespace into a single ASCII space and
/// trim the ends.
///
/// ```
/// assert_eq!(dox_textkit::normalize::collapse_whitespace("a\t b\n\nc "), "a b c");
/// ```
pub fn collapse_whitespace(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut in_ws = true; // leading whitespace is dropped
    for ch in text.chars() {
        if ch.is_whitespace() {
            if !in_ws {
                out.push(' ');
                in_ws = true;
            }
        } else {
            out.push(ch);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Strip every character that is not alphanumeric from `text`.
///
/// Used when canonicalizing extracted handles and phone numbers.
pub fn strip_non_alphanumeric(text: &str) -> String {
    text.chars().filter(|c| c.is_alphanumeric()).collect()
}

/// Keep only ASCII digits.
///
/// `digits_only("+1 (312) 555-0188")` is `"13125550188"`; the field
/// extractors use this to canonicalize phone numbers before comparison.
pub fn digits_only(text: &str) -> String {
    text.chars().filter(|c| c.is_ascii_digit()).collect()
}

/// True if `word` consists solely of ASCII alphanumerics, `_`, `-` or `.`,
/// the character set shared by the handle grammars of the measured social
/// networks.
pub fn is_handle_like(word: &str) -> bool {
    !word.is_empty()
        && word
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.')
}

/// Split a line at the first occurrence of any of the given separator
/// characters, returning `(label, rest)` with both sides trimmed.
///
/// Returns `None` when no separator occurs. This is the first step of the
/// semi-structured "label: value" parsing described in §3.1.3 of the paper.
pub fn split_label(line: &str, separators: &[char]) -> Option<(String, String)> {
    let idx = line.find(|c| separators.contains(&c))?;
    let (label, rest) = line.split_at(idx);
    let rest = &rest[rest.chars().next().map_or(0, char::len_utf8)..];
    Some((label.trim().to_string(), rest.trim().to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercase_is_unicode_aware() {
        assert_eq!(lowercase("DoX Ünïcode"), "dox ünïcode");
    }

    #[test]
    fn collapse_whitespace_handles_empty() {
        assert_eq!(collapse_whitespace(""), "");
        assert_eq!(collapse_whitespace("   \t\n"), "");
    }

    #[test]
    fn collapse_whitespace_preserves_single_spaces() {
        assert_eq!(collapse_whitespace("a b c"), "a b c");
    }

    #[test]
    fn collapse_whitespace_collapses_runs() {
        assert_eq!(collapse_whitespace("  a \r\n b\t\tc  "), "a b c");
    }

    #[test]
    fn strip_non_alphanumeric_keeps_unicode_letters() {
        assert_eq!(strip_non_alphanumeric("a-b_c!ü"), "abcü");
    }

    #[test]
    fn digits_only_extracts_phone() {
        assert_eq!(digits_only("+1 (312) 555-0188"), "13125550188");
        assert_eq!(digits_only("no digits"), "");
    }

    #[test]
    fn handle_like_accepts_typical_usernames() {
        assert!(is_handle_like("xX_doxer_Xx"));
        assert!(is_handle_like("user.name-99"));
        assert!(!is_handle_like(""));
        assert!(!is_handle_like("has space"));
        assert!(!is_handle_like("emoji😀"));
    }

    #[test]
    fn split_label_basic() {
        assert_eq!(
            split_label("Facebook: https://facebook.com/example", &[':']),
            Some((
                "Facebook".to_string(),
                "https://facebook.com/example".to_string()
            ))
        );
    }

    #[test]
    fn split_label_semicolon_variant() {
        assert_eq!(
            split_label("facebooks; example and example2", &[':', ';']),
            Some(("facebooks".to_string(), "example and example2".to_string()))
        );
    }

    #[test]
    fn split_label_none_when_missing() {
        assert_eq!(split_label("FB example", &[':', ';']), None);
    }
}
