//! Word tokenization and n-gram expansion.
//!
//! The paper's classifier uses scikit-learn's `TfidfVectorizer` with default
//! parameters, whose token pattern is `(?u)\b\w\w+\b`: maximal runs of word
//! characters (alphanumerics plus underscore) of length at least two.
//! [`Tokenizer`] reproduces that behaviour without a regex engine.

/// Configuration for [`Tokenizer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenizerConfig {
    /// Lowercase the input before tokenizing (sklearn default: `true`).
    pub lowercase: bool,
    /// Minimum token length in characters (sklearn default: `2`).
    pub min_token_len: usize,
    /// Inclusive n-gram range `(lo, hi)` over words (sklearn default `(1,1)`).
    pub ngram_range: (usize, usize),
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self {
            lowercase: true,
            min_token_len: 2,
            ngram_range: (1, 1),
        }
    }
}

/// A deterministic word tokenizer matching the scikit-learn default token
/// pattern `\w\w+` with optional word n-gram expansion.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Create a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Self { config }
    }

    /// Create a tokenizer matching scikit-learn `TfidfVectorizer` defaults.
    pub fn sklearn_default() -> Self {
        Self::new(TokenizerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Tokenize `text` into owned tokens, including n-gram expansion.
    ///
    /// Word characters are Unicode alphanumerics plus `_`; every maximal run
    /// of length `>= min_token_len` becomes a token. N-grams of words are
    /// joined with a single space, matching sklearn's convention.
    ///
    /// ```
    /// let t = dox_textkit::Tokenizer::sklearn_default();
    /// assert_eq!(t.tokenize("Dox'd: John_Doe a I"), vec!["dox", "john_doe"]);
    /// ```
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let lowered;
        let text = if self.config.lowercase {
            lowered = text.to_lowercase();
            &lowered
        } else {
            text
        };
        let words = split_words(text, self.config.min_token_len);
        let (lo, hi) = self.config.ngram_range;
        if (lo, hi) == (1, 1) {
            return words.into_iter().map(str::to_string).collect();
        }
        let mut out = Vec::new();
        for n in lo..=hi {
            if n == 0 || n > words.len() {
                continue;
            }
            for window in words.windows(n) {
                out.push(window.join(" "));
            }
        }
        out
    }
}

/// Split `text` into maximal word-character runs of length at least
/// `min_len` characters.
fn split_words(text: &str, min_len: usize) -> Vec<&str> {
    let mut words = Vec::new();
    let mut start: Option<usize> = None;
    let mut char_count = 0usize;
    for (idx, ch) in text.char_indices() {
        let is_word = ch.is_alphanumeric() || ch == '_';
        match (is_word, start) {
            (true, None) => {
                start = Some(idx);
                char_count = 1;
            }
            (true, Some(_)) => char_count += 1,
            (false, Some(s)) => {
                if char_count >= min_len {
                    words.push(&text[s..idx]);
                }
                start = None;
            }
            (false, None) => {}
        }
    }
    if let Some(s) = start {
        if char_count >= min_len {
            words.push(&text[s..]);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_sklearn_pattern() {
        let t = Tokenizer::sklearn_default();
        // single-character tokens are dropped, punctuation splits
        assert_eq!(
            t.tokenize("I am a dox-file, v2!"),
            vec!["am", "dox", "file", "v2"]
        );
    }

    #[test]
    fn underscore_is_word_char() {
        let t = Tokenizer::sklearn_default();
        assert_eq!(t.tokenize("snake_case_name"), vec!["snake_case_name"]);
    }

    #[test]
    fn lowercasing_can_be_disabled() {
        let t = Tokenizer::new(TokenizerConfig {
            lowercase: false,
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("DoX DoX"), vec!["DoX", "DoX"]);
    }

    #[test]
    fn bigrams_join_with_space() {
        let t = Tokenizer::new(TokenizerConfig {
            ngram_range: (1, 2),
            ..TokenizerConfig::default()
        });
        assert_eq!(
            t.tokenize("full name here"),
            vec!["full", "name", "here", "full name", "name here"]
        );
    }

    #[test]
    fn pure_bigrams() {
        let t = Tokenizer::new(TokenizerConfig {
            ngram_range: (2, 2),
            ..TokenizerConfig::default()
        });
        assert_eq!(t.tokenize("aa bb cc"), vec!["aa bb", "bb cc"]);
    }

    #[test]
    fn ngram_longer_than_text_is_empty() {
        let t = Tokenizer::new(TokenizerConfig {
            ngram_range: (3, 3),
            ..TokenizerConfig::default()
        });
        assert!(t.tokenize("aa bb").is_empty());
    }

    #[test]
    fn unicode_words_survive() {
        let t = Tokenizer::sklearn_default();
        assert_eq!(t.tokenize("héllo wörld"), vec!["héllo", "wörld"]);
    }

    #[test]
    fn empty_input() {
        let t = Tokenizer::sklearn_default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("!!! ... ---").is_empty());
    }

    #[test]
    fn trailing_word_is_kept() {
        let t = Tokenizer::sklearn_default();
        assert_eq!(t.tokenize("ends with word"), vec!["ends", "with", "word"]);
    }

    #[test]
    fn min_len_respects_chars_not_bytes() {
        let t = Tokenizer::sklearn_default();
        // 'éé' is two chars, four bytes; must be kept.
        assert_eq!(t.tokenize("éé"), vec!["éé"]);
    }
}
