//! Stateless feature hashing ("hashing trick").
//!
//! The measurement pipeline processes documents as a stream; a hashing
//! vectorizer lets the ablation benchmarks compare the paper's fitted
//! TF-IDF representation against a vocabulary-free alternative that never
//! needs a fit pass. We use the signed-hash variant (sklearn's
//! `HashingVectorizer` default): the sign of a secondary hash decides
//! whether a token adds or subtracts, which keeps hash collisions unbiased.

use crate::sparse::SparseVec;
use crate::tokenize::{Tokenizer, TokenizerConfig};

/// A stateless signed feature-hashing vectorizer.
#[derive(Debug, Clone)]
pub struct HashingVectorizer {
    tokenizer: Tokenizer,
    n_features: u32,
    l2_normalize: bool,
}

impl HashingVectorizer {
    /// Create a vectorizer mapping tokens into `n_features` buckets.
    ///
    /// # Panics
    /// Panics if `n_features == 0`.
    pub fn new(n_features: u32, tokenizer: TokenizerConfig, l2_normalize: bool) -> Self {
        assert!(n_features > 0, "n_features must be positive");
        Self {
            tokenizer: Tokenizer::new(tokenizer),
            n_features,
            l2_normalize,
        }
    }

    /// A vectorizer with 2^18 buckets and default tokenization.
    pub fn with_defaults() -> Self {
        Self::new(1 << 18, TokenizerConfig::default(), true)
    }

    /// Number of hash buckets.
    pub fn n_features(&self) -> u32 {
        self.n_features
    }

    /// Vectorize one document. Stateless — no fit step.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let tokens = self.tokenizer.tokenize(doc);
        let mut pairs = Vec::with_capacity(tokens.len());
        for tok in &tokens {
            let h = fnv1a(tok.as_bytes());
            let bucket = (h % u64::from(self.n_features)) as u32;
            // Secondary hash bit decides the sign.
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            pairs.push((bucket, sign));
        }
        let mut v = SparseVec::from_pairs(pairs);
        if self.l2_normalize {
            v.l2_normalize();
        }
        v
    }
}

/// FNV-1a 64-bit — tiny, fast and stable across platforms; collision
/// quality is more than adequate for feature hashing.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let v = HashingVectorizer::with_defaults();
        assert_eq!(v.transform("some dox text"), v.transform("some dox text"));
    }

    #[test]
    fn indices_stay_in_range() {
        let v = HashingVectorizer::new(16, TokenizerConfig::default(), false);
        let out = v.transform("lots of words mapping into very few buckets here");
        assert!(out.indices().iter().all(|&i| i < 16));
        assert!(out.check_invariants());
    }

    #[test]
    fn empty_doc_is_empty_vec() {
        let v = HashingVectorizer::with_defaults();
        assert!(v.transform("").is_empty());
    }

    #[test]
    fn normalization_applies() {
        let v = HashingVectorizer::with_defaults();
        let out = v.transform("alpha beta gamma delta");
        assert!((out.l2_norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn signs_can_cancel_but_norm_stays_finite() {
        // With one bucket every token collides; signed hashing may cancel.
        let v = HashingVectorizer::new(1, TokenizerConfig::default(), false);
        let out = v.transform("aa bb cc dd ee ff");
        assert!(out.nnz() <= 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_buckets_rejected() {
        HashingVectorizer::new(0, TokenizerConfig::default(), true);
    }

    #[test]
    fn fnv_known_vector() {
        // FNV-1a("") is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
    }
}
