//! Sorted-index sparse vectors.
//!
//! TF-IDF document vectors are extremely sparse (a few hundred non-zeros in
//! a vocabulary of tens of thousands), so both the vectorizer ([`crate::tfidf`])
//! and the SGD classifier in `dox-ml` operate on [`SparseVec`]: parallel
//! `(index, value)` arrays with strictly increasing indices.

use serde::{Deserialize, Serialize};

/// A sparse vector with strictly increasing indices.
///
/// Invariants (maintained by every constructor and checked by
/// [`SparseVec::check_invariants`]):
/// - `indices.len() == values.len()`
/// - `indices` strictly increasing
/// - no explicitly stored zeros are *required* to be absent, but all
///   constructors in this crate drop them.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SparseVec {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVec {
    /// The empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from parallel arrays.
    ///
    /// # Panics
    /// Panics if lengths differ or indices are not strictly increasing.
    pub fn from_parts(indices: Vec<u32>, values: Vec<f64>) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "parallel array length mismatch"
        );
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        Self { indices, values }
    }

    /// Build from an unsorted list of `(index, count)` pairs, summing
    /// duplicates and dropping zeros.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if let Some(&last) = indices.last() {
                if last == i {
                    *values.last_mut().expect("values parallel to indices") += v;
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        // Drop zeros created by cancellation or zero counts.
        let mut out_i = Vec::with_capacity(indices.len());
        let mut out_v = Vec::with_capacity(values.len());
        for (i, v) in indices.into_iter().zip(values) {
            if v != 0.0 {
                out_i.push(i);
                out_v.push(v);
            }
        }
        Self {
            indices: out_i,
            values: out_v,
        }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// True if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The stored indices, strictly increasing.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The stored values, parallel to [`SparseVec::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterate over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// The value at `index` (zero when absent). `O(log nnz)`.
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Dot product with a dense weight slice.
    ///
    /// Indices beyond `dense.len()` contribute zero, so a model trained on a
    /// smaller vocabulary can score a vector from a larger one.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if let Some(&w) = dense.get(i as usize) {
                acc += w * v;
            }
        }
        acc
    }

    /// Sparse-sparse dot product. `O(nnz_a + nnz_b)`.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut ia, mut ib, mut acc) = (0usize, 0usize, 0.0f64);
        while ia < self.indices.len() && ib < other.indices.len() {
            match self.indices[ia].cmp(&other.indices[ib]) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[ia] * other.values[ib];
                    ia += 1;
                    ib += 1;
                }
            }
        }
        acc
    }

    /// `dense[i] += scale * self[i]` for every stored entry.
    ///
    /// Entries past the end of `dense` are ignored.
    pub fn axpy_into(&self, scale: f64, dense: &mut [f64]) {
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            if let Some(slot) = dense.get_mut(i as usize) {
                *slot += scale * v;
            }
        }
    }

    /// Euclidean (l2) norm.
    pub fn l2_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of absolute values (l1 norm).
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Scale every stored value in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.values {
            *v *= factor;
        }
    }

    /// Normalize to unit l2 norm; the zero vector is left unchanged
    /// (matching scikit-learn's `normalize`).
    pub fn l2_normalize(&mut self) {
        let n = self.l2_norm();
        if n > 0.0 {
            self.scale(1.0 / n);
        }
    }

    /// Cosine similarity in `[−1, 1]`; zero when either vector is zero.
    pub fn cosine(&self, other: &SparseVec) -> f64 {
        let denom = self.l2_norm() * other.l2_norm();
        if denom == 0.0 {
            0.0
        } else {
            self.dot(other) / denom
        }
    }

    /// Map stored values, dropping any that become zero.
    pub fn map_values(&self, f: impl Fn(u32, f64) -> f64) -> SparseVec {
        let mut indices = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            let nv = f(i, v);
            if nv != 0.0 {
                indices.push(i);
                values.push(nv);
            }
        }
        SparseVec { indices, values }
    }

    /// Assert the structural invariants; used by property tests.
    pub fn check_invariants(&self) -> bool {
        self.indices.len() == self.values.len() && self.indices.windows(2).all(|w| w[0] < w[1])
    }
}

impl FromIterator<(u32, f64)> for SparseVec {
    fn from_iter<T: IntoIterator<Item = (u32, f64)>>(iter: T) -> Self {
        Self::from_pairs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f64)]) -> SparseVec {
        SparseVec::from_pairs(pairs.to_vec())
    }

    #[test]
    fn from_pairs_sorts_and_sums() {
        let s = v(&[(5, 1.0), (2, 2.0), (5, 3.0)]);
        assert_eq!(s.indices(), &[2, 5]);
        assert_eq!(s.values(), &[2.0, 4.0]);
        assert!(s.check_invariants());
    }

    #[test]
    fn from_pairs_drops_zeros() {
        let s = v(&[(1, 0.0), (2, 1.0), (3, -1.0), (3, 1.0)]);
        assert_eq!(s.indices(), &[2]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_rejects_unsorted() {
        SparseVec::from_parts(vec![3, 1], vec![1.0, 1.0]);
    }

    #[test]
    fn get_finds_present_and_absent() {
        let s = v(&[(1, 2.0), (9, 3.0)]);
        assert_eq!(s.get(1), 2.0);
        assert_eq!(s.get(9), 3.0);
        assert_eq!(s.get(5), 0.0);
    }

    #[test]
    fn dot_dense_ignores_out_of_range() {
        let s = v(&[(0, 1.0), (100, 5.0)]);
        assert_eq!(s.dot_dense(&[2.0, 0.0]), 2.0);
    }

    #[test]
    fn sparse_dot_matches_manual() {
        let a = v(&[(0, 1.0), (2, 2.0), (4, 3.0)]);
        let b = v(&[(2, 5.0), (3, 7.0), (4, 1.0)]);
        assert_eq!(a.dot(&b), 2.0 * 5.0 + 3.0 * 1.0);
        assert_eq!(a.dot(&b), b.dot(&a));
    }

    #[test]
    fn axpy_accumulates() {
        let s = v(&[(0, 1.0), (2, 2.0)]);
        let mut dense = vec![0.0; 3];
        s.axpy_into(2.0, &mut dense);
        assert_eq!(dense, vec![2.0, 0.0, 4.0]);
    }

    #[test]
    fn norms() {
        let s = v(&[(0, 3.0), (1, -4.0)]);
        assert_eq!(s.l2_norm(), 5.0);
        assert_eq!(s.l1_norm(), 7.0);
    }

    #[test]
    fn normalize_unit_and_zero() {
        let mut s = v(&[(0, 3.0), (1, 4.0)]);
        s.l2_normalize();
        assert!((s.l2_norm() - 1.0).abs() < 1e-12);
        let mut z = SparseVec::new();
        z.l2_normalize();
        assert!(z.is_empty());
    }

    #[test]
    fn cosine_bounds() {
        let a = v(&[(0, 1.0)]);
        let b = v(&[(0, 2.0)]);
        let c = v(&[(1, 1.0)]);
        assert!((a.cosine(&b) - 1.0).abs() < 1e-12);
        assert_eq!(a.cosine(&c), 0.0);
        assert_eq!(a.cosine(&SparseVec::new()), 0.0);
    }

    #[test]
    fn map_values_drops_new_zeros() {
        let s = v(&[(0, 1.0), (1, 2.0)]);
        let m = s.map_values(|_, x| if x > 1.5 { 0.0 } else { x * 10.0 });
        assert_eq!(m.indices(), &[0]);
        assert_eq!(m.values(), &[10.0]);
    }

    #[test]
    fn from_iterator() {
        let s: SparseVec = [(3u32, 1.0), (1u32, 2.0)].into_iter().collect();
        assert_eq!(s.indices(), &[1, 3]);
    }
}
