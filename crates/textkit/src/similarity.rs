//! Document similarity primitives for near-duplicate detection.
//!
//! The paper de-duplicates doxes in two passes (§3.1.4): exact body matches,
//! then identity of the extracted OSN account sets. Real deployments also
//! want fuzzy matching — doxers re-paste files with timestamp or ASCII-art
//! tweaks — so this module provides word shingling, Jaccard similarity and
//! 64-bit SimHash, which `dox-core`'s dedup stage exposes as an optional
//! third pass and the ablation benchmarks compare against the paper's
//! account-set method.

use crate::hashing::fnv1a;
use std::collections::BTreeSet;

/// The set of `k`-word shingles (word-level n-grams) of `text`, hashed to
/// `u64` for compactness. Tokenization is whitespace-based and lowercased.
pub fn shingles(text: &str, k: usize) -> BTreeSet<u64> {
    assert!(k > 0, "shingle size must be positive");
    let words: Vec<String> = text.split_whitespace().map(str::to_lowercase).collect();
    let mut out = BTreeSet::new();
    if words.len() < k {
        if !words.is_empty() {
            out.insert(fnv1a(words.join(" ").as_bytes()));
        }
        return out;
    }
    for w in words.windows(k) {
        out.insert(fnv1a(w.join(" ").as_bytes()));
    }
    out
}

/// Jaccard similarity of two sets: `|A ∩ B| / |A ∪ B|`, with the convention
/// that two empty sets are identical (similarity 1).
pub fn jaccard(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    if union == 0.0 {
        1.0
    } else {
        inter / union
    }
}

/// Jaccard similarity of the `k`-shingle sets of two texts.
pub fn shingle_similarity(a: &str, b: &str, k: usize) -> f64 {
    jaccard(&shingles(a, k), &shingles(b, k))
}

/// 64-bit SimHash of `text` over word features.
///
/// Near-duplicate texts produce hashes at small Hamming distance; the dedup
/// stage considers texts with distance ≤ 3 candidates for fuzzy matching.
pub fn simhash(text: &str) -> u64 {
    let mut acc = [0i32; 64];
    for word in text.split_whitespace() {
        let h = fnv1a(word.to_lowercase().as_bytes());
        for (bit, slot) in acc.iter_mut().enumerate() {
            if (h >> bit) & 1 == 1 {
                *slot += 1;
            } else {
                *slot -= 1;
            }
        }
    }
    let mut out = 0u64;
    for (bit, &slot) in acc.iter().enumerate() {
        if slot > 0 {
            out |= 1 << bit;
        }
    }
    out
}

/// Hamming distance between two 64-bit hashes.
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// True when two texts are SimHash-near (`hamming ≤ max_distance`).
pub fn simhash_near(a: &str, b: &str, max_distance: u32) -> bool {
    hamming(simhash(a), simhash(b)) <= max_distance
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_jaccard_one() {
        let t = "name john phone 555 address somewhere";
        assert_eq!(shingle_similarity(t, t, 3), 1.0);
    }

    #[test]
    fn disjoint_texts_jaccard_zero() {
        assert_eq!(shingle_similarity("aa bb cc dd", "ee ff gg hh", 2), 0.0);
    }

    #[test]
    fn near_duplicate_high_similarity() {
        let a = "dox of victim name john example address 12 main st phone 555 0100 email j at x";
        let b = format!("{a} updated 2016 08 01"); // re-paste with timestamp
        let sim = shingle_similarity(a, &b, 3);
        assert!(sim > 0.7, "sim = {sim}");
    }

    #[test]
    fn short_text_falls_back_to_whole_text_shingle() {
        let s = shingles("one two", 5);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn empty_sets_are_identical() {
        assert_eq!(jaccard(&BTreeSet::new(), &BTreeSet::new()), 1.0);
        assert_eq!(shingle_similarity("", "", 3), 1.0);
        assert_eq!(shingle_similarity("", "words here", 3), 0.0);
    }

    #[test]
    fn jaccard_symmetric_and_bounded() {
        let a = shingles("w x y z a b", 2);
        let b = shingles("y z a b c d", 2);
        let s1 = jaccard(&a, &b);
        let s2 = jaccard(&b, &a);
        assert_eq!(s1, s2);
        assert!((0.0..=1.0).contains(&s1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_shingle_size_rejected() {
        shingles("a b c", 0);
    }

    #[test]
    fn simhash_deterministic_and_near_for_duplicates() {
        let a = "full dox name example address city phone number email isp asn";
        let b = format!("{a} extra");
        assert_eq!(simhash(a), simhash(a));
        assert!(hamming(simhash(a), simhash(&b)) < 16);
    }

    #[test]
    fn simhash_far_for_different_texts() {
        let a = "dox name address phone email social security";
        let b = "fn main prints hello world rust code snippet example compile";
        assert!(hamming(simhash(a), simhash(b)) > 10);
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming(0, 0), 0);
        assert_eq!(hamming(0, u64::MAX), 64);
        assert_eq!(hamming(0b1010, 0b0110), 2);
    }

    #[test]
    fn simhash_near_helper() {
        assert!(simhash_near("a b c", "a b c", 0));
    }
}
