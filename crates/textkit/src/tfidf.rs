//! TF-IDF vectorization matching scikit-learn defaults.
//!
//! The paper (§3.1.2) vectorizes documents with `TfidfVectorizer` from
//! scikit-learn 0.17.1 using default parameters. The defaults that matter:
//!
//! - token pattern `\w\w+`, lowercasing, no stop-word removal;
//! - raw term counts for tf (no sublinear scaling);
//! - **smooth idf**: `idf(t) = ln((1 + n) / (1 + df(t))) + 1`;
//! - l2 normalization of each document vector.
//!
//! [`TfidfVectorizer`] reproduces that behaviour; every knob is exposed via
//! [`TfidfConfig`] so ablation benchmarks can vary them.

use crate::sparse::SparseVec;
use crate::tokenize::{Tokenizer, TokenizerConfig};
use crate::vocab::{VocabBuilder, VocabConfig, Vocabulary};
use serde::{Deserialize, Serialize};

/// Configuration for [`TfidfVectorizer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TfidfConfig {
    /// Tokenizer settings (defaults match sklearn).
    pub tokenizer: TokenizerConfig,
    /// Vocabulary pruning settings.
    pub vocab: VocabConfig,
    /// Add one to document frequencies ("smooth" idf, sklearn default true).
    pub smooth_idf: bool,
    /// Replace tf with `1 + ln(tf)` (sklearn default false).
    pub sublinear_tf: bool,
    /// Apply idf weighting at all (sklearn default true).
    pub use_idf: bool,
    /// l2-normalize each document vector (sklearn default true).
    pub l2_normalize: bool,
}

impl Default for TfidfConfig {
    fn default() -> Self {
        Self {
            tokenizer: TokenizerConfig::default(),
            vocab: VocabConfig::default(),
            smooth_idf: true,
            sublinear_tf: false,
            use_idf: true,
            l2_normalize: true,
        }
    }
}

/// A fitted TF-IDF model: vocabulary plus idf weights.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfidfModel {
    vocab: Vocabulary,
    idf: Vec<f64>,
}

impl TfidfModel {
    /// The fitted vocabulary.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The idf weight of feature `idx`.
    pub fn idf(&self, idx: u32) -> f64 {
        self.idf[idx as usize]
    }

    /// Number of features.
    pub fn n_features(&self) -> usize {
        self.idf.len()
    }
}

/// TF-IDF vectorizer: fit on a corpus, transform documents to [`SparseVec`]s.
///
/// ```
/// use dox_textkit::TfidfVectorizer;
///
/// let corpus = ["name and address of the victim", "fn main() {}"];
/// let mut vectorizer = TfidfVectorizer::default();
/// vectorizer.fit(&corpus);
/// let vec = vectorizer.transform("the victim name");
/// assert!(vec.nnz() > 0);
/// assert!((vec.l2_norm() - 1.0).abs() < 1e-9, "l2-normalized like sklearn");
/// ```
#[derive(Debug, Clone)]
pub struct TfidfVectorizer {
    config: TfidfConfig,
    tokenizer: Tokenizer,
    model: Option<TfidfModel>,
}

impl Default for TfidfVectorizer {
    fn default() -> Self {
        Self::new(TfidfConfig::default())
    }
}

impl TfidfVectorizer {
    /// Create an unfitted vectorizer.
    pub fn new(config: TfidfConfig) -> Self {
        let tokenizer = Tokenizer::new(config.tokenizer.clone());
        Self {
            config,
            tokenizer,
            model: None,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TfidfConfig {
        &self.config
    }

    /// The fitted model, if [`TfidfVectorizer::fit`] has run.
    pub fn model(&self) -> Option<&TfidfModel> {
        self.model.as_ref()
    }

    /// Fit the vocabulary and idf weights on `corpus`.
    pub fn fit<S: AsRef<str>>(&mut self, corpus: &[S]) -> &TfidfModel {
        let mut builder = VocabBuilder::new();
        let tokenized: Vec<Vec<String>> = corpus
            .iter()
            .map(|doc| self.tokenizer.tokenize(doc.as_ref()))
            .collect();
        for toks in &tokenized {
            builder.add_document(toks);
        }
        let vocab = builder.build(&self.config.vocab);
        let idf = compute_idf(&vocab, self.config.smooth_idf, self.config.use_idf);
        self.model = Some(TfidfModel { vocab, idf });
        self.model.as_ref().expect("just set")
    }

    /// Fit on `corpus` and transform every document.
    pub fn fit_transform<S: AsRef<str>>(&mut self, corpus: &[S]) -> Vec<SparseVec> {
        self.fit(corpus);
        corpus.iter().map(|d| self.transform(d.as_ref())).collect()
    }

    /// Transform one document into a TF-IDF vector.
    ///
    /// # Panics
    /// Panics if the vectorizer has not been fitted.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let model = self
            .model
            .as_ref()
            .expect("TfidfVectorizer::transform called before fit");
        let tokens = self.tokenizer.tokenize(doc);
        let mut pairs: Vec<(u32, f64)> = Vec::with_capacity(tokens.len());
        for tok in &tokens {
            if let Some(idx) = model.vocab.get(tok) {
                pairs.push((idx, 1.0));
            }
        }
        let counts = SparseVec::from_pairs(pairs);
        let mut vec = counts.map_values(|idx, tf| {
            let tf = if self.config.sublinear_tf {
                1.0 + tf.ln()
            } else {
                tf
            };
            tf * model.idf[idx as usize]
        });
        if self.config.l2_normalize {
            vec.l2_normalize();
        }
        vec
    }

    /// Transform a batch of documents.
    pub fn transform_batch<S: AsRef<str>>(&self, docs: &[S]) -> Vec<SparseVec> {
        docs.iter().map(|d| self.transform(d.as_ref())).collect()
    }
}

fn compute_idf(vocab: &Vocabulary, smooth: bool, use_idf: bool) -> Vec<f64> {
    let n = vocab.n_docs() as f64;
    (0..vocab.len() as u32)
        .map(|idx| {
            if !use_idf {
                return 1.0;
            }
            let df = vocab.doc_freq(idx) as f64;
            if smooth {
                ((1.0 + n) / (1.0 + df)).ln() + 1.0
            } else {
                (n / df).ln() + 1.0
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORPUS: [&str; 4] = [
        "the cat sat on the mat",
        "the dog sat on the log",
        "cats and dogs living together",
        "full dox: name address phone ssn",
    ];

    fn fitted() -> TfidfVectorizer {
        let mut v = TfidfVectorizer::default();
        v.fit(&CORPUS);
        v
    }

    #[test]
    fn fit_builds_model() {
        let v = fitted();
        let m = v.model().unwrap();
        assert!(m.n_features() > 0);
        assert_eq!(m.vocabulary().n_docs(), 4);
    }

    #[test]
    fn vectors_are_unit_norm() {
        let v = fitted();
        for doc in CORPUS {
            let vec = v.transform(doc);
            assert!((vec.l2_norm() - 1.0).abs() < 1e-9, "doc: {doc}");
        }
    }

    #[test]
    fn smooth_idf_formula_matches_sklearn() {
        // token "the" appears in 2 of 4 docs => idf = ln(5/3) + 1
        let v = fitted();
        let m = v.model().unwrap();
        let idx = m.vocabulary().get("the").unwrap();
        let expected = (5.0f64 / 3.0).ln() + 1.0;
        assert!((m.idf(idx) - expected).abs() < 1e-12);
    }

    #[test]
    fn rare_terms_weigh_more_than_common() {
        let v = fitted();
        let m = v.model().unwrap();
        let the = m.vocabulary().get("the").unwrap();
        let ssn = m.vocabulary().get("ssn").unwrap();
        assert!(m.idf(ssn) > m.idf(the));
    }

    #[test]
    fn unknown_tokens_vanish() {
        let v = fitted();
        let vec = v.transform("zzz qqq www");
        assert!(vec.is_empty());
    }

    #[test]
    fn identical_docs_identical_vectors() {
        let v = fitted();
        assert_eq!(v.transform(CORPUS[0]), v.transform(CORPUS[0]));
    }

    #[test]
    fn transform_batch_matches_loop() {
        let v = fitted();
        let batch = v.transform_batch(&CORPUS);
        for (i, doc) in CORPUS.iter().enumerate() {
            assert_eq!(batch[i], v.transform(doc));
        }
    }

    #[test]
    fn sublinear_tf_damps_repeats() {
        let corpus = ["spam spam spam spam unique", "other words here"];
        let mut sub = TfidfVectorizer::new(TfidfConfig {
            sublinear_tf: true,
            l2_normalize: false,
            ..TfidfConfig::default()
        });
        let mut plain = TfidfVectorizer::new(TfidfConfig {
            l2_normalize: false,
            ..TfidfConfig::default()
        });
        plain.fit(&corpus);
        sub.fit(&corpus);
        let pm = plain.model().unwrap();
        let idx = pm.vocabulary().get("spam").unwrap();
        let p = plain.transform(corpus[0]).get(idx);
        let s = sub.transform(corpus[0]).get(idx);
        assert!(s < p, "sublinear tf should reduce the weight of repeats");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn transform_before_fit_panics() {
        TfidfVectorizer::default().transform("boom");
    }

    #[test]
    fn idf_disabled_gives_uniform_weights() {
        let mut v = TfidfVectorizer::new(TfidfConfig {
            use_idf: false,
            l2_normalize: false,
            ..TfidfConfig::default()
        });
        v.fit(&CORPUS);
        let m = v.model().unwrap();
        for i in 0..m.n_features() as u32 {
            assert_eq!(m.idf(i), 1.0);
        }
    }
}
