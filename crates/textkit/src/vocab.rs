//! Vocabulary construction with document-frequency accounting.
//!
//! A [`Vocabulary`] maps tokens to dense feature indices and records each
//! token's document frequency, which the TF-IDF vectorizer turns into idf
//! weights. Construction is deterministic: feature indices are assigned by
//! sorting the surviving tokens lexicographically, matching scikit-learn.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Document-frequency pruning options, mirroring sklearn's
/// `min_df`/`max_df` parameters (defaults `1` and `1.0`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VocabConfig {
    /// Drop tokens appearing in fewer than this many documents.
    pub min_df: usize,
    /// Drop tokens appearing in more than this fraction of documents.
    pub max_df_ratio: f64,
    /// Optional cap on vocabulary size (keep the most frequent tokens).
    pub max_features: Option<usize>,
}

impl Default for VocabConfig {
    fn default() -> Self {
        Self {
            min_df: 1,
            max_df_ratio: 1.0,
            max_features: None,
        }
    }
}

/// A frozen token→index mapping with document frequencies.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    index: HashMap<String, u32>,
    /// Document frequency per feature index.
    doc_freq: Vec<u32>,
    /// Number of documents the vocabulary was fitted on.
    n_docs: usize,
}

/// Incremental builder: feed tokenized documents, then freeze.
#[derive(Debug, Clone, Default)]
pub struct VocabBuilder {
    doc_freq: HashMap<String, u32>,
    n_docs: usize,
}

impl VocabBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one document's tokens (duplicates within the document count
    /// once toward document frequency).
    pub fn add_document<S: AsRef<str>>(&mut self, tokens: &[S]) {
        self.n_docs += 1;
        let mut seen: Vec<&str> = tokens.iter().map(AsRef::as_ref).collect();
        seen.sort_unstable();
        seen.dedup();
        for tok in seen {
            *self.doc_freq.entry(tok.to_string()).or_insert(0) += 1;
        }
    }

    /// Number of documents added so far.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Freeze into a [`Vocabulary`], applying pruning.
    pub fn build(self, config: &VocabConfig) -> Vocabulary {
        let n_docs = self.n_docs;
        let max_df = (config.max_df_ratio * n_docs as f64).floor() as u32;
        let mut entries: Vec<(String, u32)> = self
            .doc_freq
            .into_iter()
            .filter(|&(_, df)| df as usize >= config.min_df && (n_docs == 0 || df <= max_df))
            .collect();
        if let Some(cap) = config.max_features {
            // Keep highest-df tokens; tie-break lexicographically for
            // determinism (sklearn keeps highest term frequency — df is the
            // closest stable analogue available here).
            entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            entries.truncate(cap);
        }
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let mut index = HashMap::with_capacity(entries.len());
        let mut doc_freq = Vec::with_capacity(entries.len());
        for (i, (tok, df)) in entries.into_iter().enumerate() {
            index.insert(tok, i as u32);
            doc_freq.push(df);
        }
        Vocabulary {
            index,
            doc_freq,
            n_docs,
        }
    }
}

impl Vocabulary {
    /// Fit a vocabulary over pre-tokenized documents in one call.
    pub fn fit<S: AsRef<str>>(docs: &[Vec<S>], config: &VocabConfig) -> Self {
        let mut b = VocabBuilder::new();
        for d in docs {
            b.add_document(d);
        }
        b.build(config)
    }

    /// Feature index for `token`, if in vocabulary.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.doc_freq.len()
    }

    /// True when no tokens survived pruning.
    pub fn is_empty(&self) -> bool {
        self.doc_freq.is_empty()
    }

    /// Document frequency of feature `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn doc_freq(&self, idx: u32) -> u32 {
        self.doc_freq[idx as usize]
    }

    /// Number of documents the vocabulary was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Tokens in feature-index order (for diagnostics and model dumps).
    pub fn tokens_in_order(&self) -> Vec<&str> {
        let mut v: Vec<(&str, u32)> = self.index.iter().map(|(t, &i)| (t.as_str(), i)).collect();
        v.sort_unstable_by_key(|&(_, i)| i);
        v.into_iter().map(|(t, _)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(raw: &[&[&str]]) -> Vec<Vec<String>> {
        raw.iter()
            .map(|d| d.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn indices_are_lexicographic() {
        let v = Vocabulary::fit(
            &docs(&[&["zebra", "apple"], &["apple", "mango"]]),
            &VocabConfig::default(),
        );
        assert_eq!(v.get("apple"), Some(0));
        assert_eq!(v.get("mango"), Some(1));
        assert_eq!(v.get("zebra"), Some(2));
        assert_eq!(v.tokens_in_order(), vec!["apple", "mango", "zebra"]);
    }

    #[test]
    fn doc_freq_counts_documents_not_occurrences() {
        let v = Vocabulary::fit(
            &docs(&[&["dup", "dup", "dup"], &["dup", "other"]]),
            &VocabConfig::default(),
        );
        assert_eq!(v.doc_freq(v.get("dup").unwrap()), 2);
        assert_eq!(v.doc_freq(v.get("other").unwrap()), 1);
        assert_eq!(v.n_docs(), 2);
    }

    #[test]
    fn min_df_prunes_rare() {
        let cfg = VocabConfig {
            min_df: 2,
            ..VocabConfig::default()
        };
        let v = Vocabulary::fit(&docs(&[&["rare", "common"], &["common"]]), &cfg);
        assert_eq!(v.get("rare"), None);
        assert!(v.get("common").is_some());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn max_df_prunes_ubiquitous() {
        let cfg = VocabConfig {
            max_df_ratio: 0.5,
            ..VocabConfig::default()
        };
        let v = Vocabulary::fit(
            &docs(&[&["stop", "a"], &["stop", "b"], &["stop", "c"], &["c"]]),
            &cfg,
        );
        assert_eq!(v.get("stop"), None); // df 3/4 > 0.5
        assert!(v.get("c").is_some()); // df 2/4 == 0.5
    }

    #[test]
    fn max_features_keeps_most_frequent() {
        let cfg = VocabConfig {
            max_features: Some(1),
            ..VocabConfig::default()
        };
        let v = Vocabulary::fit(&docs(&[&["hi", "lo"], &["hi"]]), &cfg);
        assert_eq!(v.len(), 1);
        assert!(v.get("hi").is_some());
    }

    #[test]
    fn empty_fit_is_empty() {
        let v = Vocabulary::fit(&docs(&[]), &VocabConfig::default());
        assert!(v.is_empty());
        assert_eq!(v.n_docs(), 0);
    }

    #[test]
    fn unknown_token_is_none() {
        let v = Vocabulary::fit(&docs(&[&["known"]]), &VocabConfig::default());
        assert_eq!(v.get("unknown"), None);
    }
}
