//! HTML to plain-text conversion.
//!
//! Postings scraped from 4chan.org and 8ch.net arrive as HTML fragments; the
//! paper converts them with `html2text` (§3.1.2), which "replaces HTML markup
//! with semantically equivalent plain-text representations", e.g. turning
//! `<ul>`/`<ol>`/`<li>` into indented, newline-separated strings.
//!
//! [`html_to_text`] is a single-pass, allocation-frugal converter covering
//! the markup that actually occurs on chan boards: paragraph/line-break tags,
//! ordered and unordered lists, blockquotes (chan "greentext" uses
//! `<span class="quote">`), `<br>`, entity references, and tag stripping for
//! everything else. `<script>` and `<style>` contents are dropped entirely.

/// Convert an HTML fragment to semantically equivalent plain text.
///
/// ```
/// let html = "<b>Dox</b> of <i>someone</i><br>line2<ul><li>a</li><li>b</li></ul>";
/// let text = dox_textkit::html::html_to_text(html);
/// assert_eq!(text, "Dox of someone\nline2\n  - a\n  - b");
/// ```
pub fn html_to_text(html: &str) -> String {
    Converter::new().run(html)
}

/// Decode the HTML entities that occur in practice on the measured boards.
///
/// Handles the named entities `&amp; &lt; &gt; &quot; &apos; &nbsp; &#39;`
/// plus decimal (`&#NN;`) and hexadecimal (`&#xNN;`) numeric references.
/// Unknown entities are passed through verbatim.
pub fn decode_entities(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = text[i..].find(';').map(|p| i + p) {
                // entities are short; cap lookahead to avoid scanning far
                if semi - i <= 10 {
                    let ent = &text[i + 1..semi];
                    if let Some(decoded) = decode_entity(ent) {
                        out.push_str(&decoded);
                        i = semi + 1;
                        continue;
                    }
                }
            }
        }
        let ch = text[i..].chars().next().expect("in-bounds char");
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

fn decode_entity(ent: &str) -> Option<String> {
    match ent {
        "amp" => Some("&".into()),
        "lt" => Some("<".into()),
        "gt" => Some(">".into()),
        "quot" => Some("\"".into()),
        "apos" => Some("'".into()),
        "nbsp" => Some(" ".into()),
        _ => {
            let num = ent.strip_prefix('#')?;
            let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                num.parse::<u32>().ok()?
            };
            char::from_u32(code).map(|c| c.to_string())
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ListKind {
    Unordered,
    Ordered(usize),
}

struct Converter {
    out: String,
    list_stack: Vec<ListKind>,
    /// Skipping the body of `<script>`/`<style>`.
    skip_until: Option<&'static str>,
    /// Inside a chan greentext quote span.
    quote_depth: usize,
    pending_quote_prefix: bool,
}

impl Converter {
    fn new() -> Self {
        Self {
            out: String::new(),
            list_stack: Vec::new(),
            skip_until: None,
            quote_depth: 0,
            pending_quote_prefix: false,
        }
    }

    fn run(mut self, html: &str) -> String {
        let mut rest = html;
        while let Some(lt) = rest.find('<') {
            let (text, after) = rest.split_at(lt);
            self.push_text(text);
            match after[1..].find('>') {
                Some(gt) => {
                    let tag = &after[1..1 + gt];
                    self.handle_tag(tag);
                    rest = &after[gt + 2..];
                }
                None => {
                    // Unclosed '<': treat remainder as text.
                    self.push_text(after);
                    rest = "";
                    break;
                }
            }
        }
        self.push_text(rest);
        trim_blank_edges(&self.out)
    }

    fn push_text(&mut self, text: &str) {
        if self.skip_until.is_some() || text.is_empty() {
            return;
        }
        let decoded = decode_entities(text);
        // Raw newlines in HTML source are soft whitespace, not line breaks.
        let flat = decoded.replace(['\n', '\r', '\t'], " ");
        let trimmed = if self.out.ends_with('\n') || self.out.is_empty() {
            flat.trim_start()
        } else {
            &flat
        };
        if trimmed.is_empty() {
            return;
        }
        if self.pending_quote_prefix {
            self.out.push_str("> ");
            self.pending_quote_prefix = false;
        }
        self.out.push_str(trimmed);
    }

    fn handle_tag(&mut self, raw: &str) {
        let raw = raw.trim();
        if raw.starts_with('!') {
            return; // comment or doctype
        }
        let closing = raw.starts_with('/');
        let name_part = raw.trim_start_matches('/');
        let name_end = name_part
            .find(|c: char| c.is_whitespace() || c == '/')
            .unwrap_or(name_part.len());
        let name = name_part[..name_end].to_ascii_lowercase();
        let attrs = &name_part[name_end..];

        if let Some(until) = self.skip_until {
            if closing && name == until {
                self.skip_until = None;
            }
            return;
        }

        match (name.as_str(), closing) {
            ("script", false) => self.skip_until = Some("script"),
            ("style", false) => self.skip_until = Some("style"),
            ("br", _) | ("hr", _) => self.newline(),
            ("p", _) | ("div", _) | ("tr", _) | ("table", _) | ("blockquote", _) => {
                self.newline();
            }
            ("h1", _) | ("h2", _) | ("h3", _) | ("h4", _) | ("h5", _) | ("h6", _) => {
                self.newline();
            }
            ("ul", false) => {
                self.newline();
                self.list_stack.push(ListKind::Unordered);
            }
            ("ol", false) => {
                self.newline();
                self.list_stack.push(ListKind::Ordered(0));
            }
            ("ul", true) | ("ol", true) => {
                self.list_stack.pop();
                self.newline();
            }
            ("li", false) => {
                self.newline();
                let depth = self.list_stack.len().max(1);
                for _ in 0..depth {
                    self.out.push_str("  ");
                }
                match self.list_stack.last_mut() {
                    Some(ListKind::Ordered(n)) => {
                        *n += 1;
                        let n = *n;
                        self.out.push_str(&format!("{n}. "));
                    }
                    _ => self.out.push_str("- "),
                }
            }
            ("span", false) if attrs.contains("quote") => {
                self.quote_depth += 1;
                self.pending_quote_prefix = true;
            }
            ("span", true) if self.quote_depth > 0 => {
                self.quote_depth -= 1;
                self.pending_quote_prefix = false;
            }
            _ => {}
        }
    }

    fn newline(&mut self) {
        if !self.out.is_empty() && !self.out.ends_with('\n') {
            self.out.push('\n');
        }
    }
}

/// Trim leading/trailing blank lines and trailing spaces on each line.
fn trim_blank_edges(text: &str) -> String {
    let lines: Vec<&str> = text.lines().map(str::trim_end).collect();
    let start = lines.iter().position(|l| !l.is_empty()).unwrap_or(0);
    let end = lines
        .iter()
        .rposition(|l| !l.is_empty())
        .map_or(0, |e| e + 1);
    lines[start..end].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_text_passes_through() {
        assert_eq!(html_to_text("just some text"), "just some text");
    }

    #[test]
    fn tags_are_stripped() {
        assert_eq!(
            html_to_text("<b>bold</b> and <i>italic</i>"),
            "bold and italic"
        );
    }

    #[test]
    fn br_becomes_newline() {
        assert_eq!(html_to_text("a<br>b<br/>c"), "a\nb\nc");
    }

    #[test]
    fn unordered_list_matches_paper_description() {
        // the paper: "<ul>, <ol> and <li> tags ... to indented, newline
        // separated text strings"
        let html = "<ul><li>name: X</li><li>addr: Y</li></ul>";
        assert_eq!(html_to_text(html), "  - name: X\n  - addr: Y");
    }

    #[test]
    fn ordered_list_numbers_items() {
        let html = "<ol><li>first</li><li>second</li></ol>";
        assert_eq!(html_to_text(html), "  1. first\n  2. second");
    }

    #[test]
    fn nested_lists_indent() {
        let html = "<ul><li>outer<ul><li>inner</li></ul></li></ul>";
        assert_eq!(html_to_text(html), "  - outer\n    - inner");
    }

    #[test]
    fn entities_decode() {
        assert_eq!(
            decode_entities("a &amp; b &lt;c&gt; &#39;d&#x27;"),
            "a & b <c> 'd'"
        );
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(decode_entities("&bogus; &zzz;"), "&bogus; &zzz;");
    }

    #[test]
    fn numeric_entity_out_of_range_passes_through() {
        assert_eq!(decode_entities("&#1114112;"), "&#1114112;");
    }

    #[test]
    fn script_and_style_bodies_dropped() {
        let html = "before<script>var x = '<li>';</script>after";
        assert_eq!(html_to_text(html), "beforeafter");
        let html = "a<style>p { color: red }</style>b";
        assert_eq!(html_to_text(html), "ab");
    }

    #[test]
    fn chan_greentext_quote() {
        let html = r#"<span class="quote">&gt;implying</span><br>reply text"#;
        assert_eq!(html_to_text(html), "> >implying\nreply text");
    }

    #[test]
    fn paragraphs_separate_lines() {
        assert_eq!(html_to_text("<p>one</p><p>two</p>"), "one\ntwo");
    }

    #[test]
    fn unclosed_tag_is_text() {
        assert_eq!(html_to_text("tricky < not a tag"), "tricky < not a tag");
    }

    #[test]
    fn raw_newlines_are_soft() {
        assert_eq!(html_to_text("one\ntwo"), "one two");
    }

    #[test]
    fn comments_are_ignored() {
        assert_eq!(html_to_text("a<!-- hidden -->b"), "ab");
    }

    #[test]
    fn empty_input() {
        assert_eq!(html_to_text(""), "");
    }

    #[test]
    fn typical_chan_post() {
        let html = "<a href=\"#p123\" class=\"quotelink\">&gt;&gt;123</a><br>\
                    dropping this fag&#039;s dox<br>Name: John Example<br>\
                    Phone: 555-0100";
        let text = html_to_text(html);
        assert!(text.contains("dropping this fag's dox"));
        assert!(text.contains("Name: John Example"));
        assert!(text.contains("Phone: 555-0100"));
        assert_eq!(text.lines().count(), 4);
    }
}
