//! # dox-textkit
//!
//! Text-processing substrate for the doxing-measurement reproduction.
//!
//! The paper's classification stage (§3.1.2) is built on scikit-learn's
//! `TfidfVectorizer` and pre-processes chan HTML with `html2text`. This crate
//! provides from-scratch, dependency-free equivalents:
//!
//! - [`normalize`] — unicode-light text normalization helpers.
//! - [`tokenize`] — word tokenizers and n-gram expansion compatible with the
//!   scikit-learn default token pattern (`\w\w+`).
//! - [`html`] — an `html2text`-style converter that maps HTML markup to
//!   semantically equivalent plain text (lists, breaks, entity decoding).
//! - [`sparse`] — sorted-index sparse vectors and the linear-algebra kernels
//!   used by the TF-IDF vectorizer and SGD classifier.
//! - [`vocab`] — vocabulary construction with document-frequency pruning.
//! - [`tfidf`] — a `TfidfVectorizer` equivalent (smooth idf, sublinear-tf
//!   option, l2 normalization), matching sklearn 0.17 defaults.
//! - [`hashing`] — a stateless feature-hashing vectorizer.
//! - [`similarity`] — shingling, Jaccard similarity and SimHash used by the
//!   de-duplication stage (§3.1.4).
//!
//! All types are deterministic: no randomness, no hash-map iteration order
//! leaks into observable output.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod hashing;
pub mod html;
pub mod normalize;
pub mod similarity;
pub mod sparse;
pub mod tfidf;
pub mod tokenize;
pub mod vocab;

pub use sparse::SparseVec;
pub use tfidf::{TfidfModel, TfidfVectorizer};
pub use tokenize::Tokenizer;
pub use vocab::Vocabulary;
