//! Load generator for the `dox-serve` service mode.
//!
//! Boots the service router in-process on an ephemeral port, creates
//! N tenants, and drives each over its own raw `TcpStream` with
//! keep-alive `POST /v1/ingest` batches drawn from the tenant's own
//! deterministic document stream. Records sustained request and
//! document throughput, ingest latency quantiles, and *alert lag* —
//! the wall-clock time from submitting a batch that commits a dox to
//! that dox being readable on the `GET /v1/alerts` cursor — then
//! writes `BENCH_serve.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p dox-bench --bin loadgen
//! DOX_BENCH_SAMPLES=5 cargo run --release -p dox-bench --bin loadgen
//! ```
//!
//! Two auxiliary modes serve `scripts/serve_smoke.sh`, which drives an
//! *external* `dox-serve` daemon and needs the service and batch sides
//! derived from the exact same [`TenantSpec`] → `StudyConfig` mapping:
//!
//! ```text
//! loadgen client --addr <host:port> --id t0 --seed 99 [--create]
//!                [--half first|second] [--report <path>]
//! loadgen batch --seed 99 --out <path>
//! ```

use dox_core::study::Study;
use dox_obs::http::DEFAULT_MAX_BODY;
use dox_obs::{HttpServer, Registry, Tracer};
use dox_serve::{router, ServeState, TenantSpec};
use serde::value::{Number, Value};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

/// Study scale per tenant (matches `bench_engine`'s corpus scale).
const SCALE: f64 = 0.01;
/// Documents each tenant ingests per round.
const DOCS_PER_TENANT: usize = 600;
/// Documents per `POST /v1/ingest` request.
const BATCH_DOCS: usize = 30;
/// HTTP worker threads serving the socket.
const HTTP_WORKERS: usize = 8;
/// Tenant counts to sweep (the contended point is the interesting one).
const TENANT_COUNTS: [usize; 3] = [1, 2, 4];
/// Engine topology per tenant, fixed for reproducibility.
const TENANT_WORKERS: usize = 2;
const TENANT_SHARDS: usize = 8;
/// Seed for tenant `i` is `BASE_SEED + i`: distinct corpora, distinct
/// detectors, so tenants do not share any cache-warm state.
const BASE_SEED: u64 = 40;

fn spec(id: &str, seed: u64) -> TenantSpec {
    TenantSpec {
        id: id.to_string(),
        seed,
        scale: SCALE,
        workers: TENANT_WORKERS,
        shards: TENANT_SHARDS,
    }
}

/// Pre-rendered ingest batches for one seed: `(period, docs-as-JSON)`.
/// Batches never mix periods — `/v1/ingest` takes one period per call.
fn batches_for_seed(seed: u64) -> Vec<(u8, Vec<Value>)> {
    let study = Study::with_registry(spec("gen", seed).study_config(), Registry::new());
    let mut batches: Vec<(u8, Vec<Value>)> = Vec::new();
    let mut taken = 0usize;
    study
        .synthetic_stream(&mut |period, doc| {
            match batches.last_mut() {
                Some((p, docs)) if *p == period && docs.len() < BATCH_DOCS => {
                    docs.push(doc.to_value());
                }
                _ => batches.push((period, vec![doc.to_value()])),
            }
            taken += 1;
            if taken >= DOCS_PER_TENANT {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .expect("synthetic stream replays");
    batches
}

/// One keep-alive HTTP round trip; returns `(status, body)`.
fn roundtrip(stream: &mut TcpStream, method: &str, path: &str, payload: &str) -> (u16, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream
        .write_all(request.as_bytes())
        .expect("request written");
    read_response(stream)
}

/// Read one HTTP/1.1 response off a keep-alive stream: status line,
/// headers to the blank line, then exactly `Content-Length` body bytes.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    let header_end = loop {
        let n = stream.read(&mut byte).expect("response bytes");
        assert!(n > 0, "server closed mid-response");
        buf.push(byte[0]);
        if buf.ends_with(b"\r\n\r\n") {
            break buf.len();
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body");
    (status, String::from_utf8_lossy(&body).to_string())
}

/// What one tenant's client thread measured.
struct ClientStats {
    ingest_ns: Vec<u64>,
    alert_lag_ns: Vec<u64>,
    requests: usize,
    docs: usize,
    alerts_seen: u64,
}

/// Drive one tenant: sequential keep-alive ingest batches, with an
/// alert-cursor read after every batch that committed something.
fn drive_tenant(addr: &str, id: &str, batches: &[(u8, Vec<Value>)]) -> ClientStats {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut stats = ClientStats {
        ingest_ns: Vec::new(),
        alert_lag_ns: Vec::new(),
        requests: 0,
        docs: 0,
        alerts_seen: 0,
    };
    let mut cursor = 0u64;
    for (period, docs) in batches {
        let body = serde_json::to_string(&Value::Object(vec![
            ("tenant".to_string(), Value::String(id.to_string())),
            (
                "period".to_string(),
                Value::Number(Number::U64(u64::from(*period))),
            ),
            ("docs".to_string(), Value::Array(docs.clone())),
        ]))
        .expect("batch serializes");
        let sent = Instant::now();
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
        let ingest_done = sent.elapsed();
        assert_eq!(status, 200, "ingest failed: {response}");
        stats.ingest_ns.push(ingest_done.as_nanos() as u64);
        stats.requests += 1;
        stats.docs += docs.len();

        let outcome: Value = serde_json::from_str(&response).expect("outcome JSON");
        let committed = outcome.get("doxes").and_then(Value::as_u64).unwrap_or(0)
            + outcome
                .get("duplicates")
                .and_then(Value::as_u64)
                .unwrap_or(0);
        if committed > 0 {
            // Alert lag: submit-to-visible for this batch's doxes.
            let path = format!("/v1/alerts?tenant={id}&cursor={cursor}");
            let (status, page) = roundtrip(&mut stream, "GET", &path, "");
            assert_eq!(status, 200, "alerts failed: {page}");
            let page: Value = serde_json::from_str(&page).expect("alerts JSON");
            let next = page.get("cursor").and_then(Value::as_u64).expect("cursor");
            assert_eq!(
                next - cursor,
                committed,
                "alerts visible immediately after ingest"
            );
            stats.alert_lag_ns.push(sent.elapsed().as_nanos() as u64);
            stats.alerts_seen += committed;
            cursor = next;
        }
    }
    stats
}

/// One measured round at a given tenant count: fresh server, fresh
/// tenants, one client thread per tenant. Returns wall seconds plus
/// the merged per-thread stats.
fn run_round(count: usize, batch_sets: &[Vec<(u8, Vec<Value>)>]) -> (f64, Vec<ClientStats>) {
    let state = Arc::new(ServeState::new(Registry::new()));
    let server = HttpServer::start(
        "127.0.0.1:0",
        router(Arc::clone(&state), &Tracer::disabled()),
        HTTP_WORKERS,
        DEFAULT_MAX_BODY,
    )
    .expect("server binds");
    let addr = server.local_addr().to_string();

    // Tenant creation (detector training) happens before the clock.
    for (i, _) in batch_sets.iter().enumerate().take(count) {
        let body = serde_json::to_string(&spec(&format!("t{i}"), BASE_SEED + i as u64).to_value())
            .expect("spec serializes");
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/tenants", &body);
        assert_eq!(status, 201, "tenant create failed: {response}");
    }

    let started = Instant::now();
    let stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..count)
            .map(|i| {
                let addr = addr.clone();
                let batches = &batch_sets[i];
                scope.spawn(move || drive_tenant(&addr, &format!("t{i}"), batches))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64();
    server.stop();
    (seconds, stats)
}

/// Quantile (by rank) of a sorted nanosecond series, in milliseconds.
fn quantile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

/// Smoke-mode options shared by `client` and `batch`.
struct SmokeArgs {
    addr: String,
    id: String,
    seed: u64,
    scale: f64,
    create: bool,
    half: Option<String>,
    report: Option<String>,
    out: Option<String>,
}

fn parse_smoke_args(mut it: std::env::Args) -> SmokeArgs {
    let mut args = SmokeArgs {
        addr: "127.0.0.1:9321".to_string(),
        id: "t0".to_string(),
        seed: BASE_SEED,
        scale: SCALE,
        create: false,
        half: None,
        report: None,
        out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--id" => args.id = value("--id"),
            "--seed" => args.seed = value("--seed").parse().expect("u64 seed"),
            "--scale" => args.scale = value("--scale").parse().expect("f64 scale"),
            "--create" => args.create = true,
            "--half" => args.half = Some(value("--half")),
            "--report" => args.report = Some(value("--report")),
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn smoke_spec(args: &SmokeArgs) -> TenantSpec {
    TenantSpec {
        id: args.id.clone(),
        seed: args.seed,
        scale: args.scale,
        workers: TENANT_WORKERS,
        shards: TENANT_SHARDS,
    }
}

/// Connect with retries so the script can launch the daemon and the
/// client back to back without racing the bind.
fn connect_retry(addr: &str) -> TcpStream {
    for _ in 0..100 {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream.set_nodelay(true).expect("nodelay");
            return stream;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    panic!("cannot connect to dox-serve at {addr}");
}

/// `client` mode: create/reuse a tenant on a running daemon, ingest the
/// tenant's own document stream (optionally one half of it), and fetch
/// `/v1/report`.
fn run_client(args: &SmokeArgs) {
    let spec = smoke_spec(args);
    let mut stream = connect_retry(&args.addr);
    if args.create {
        let body = serde_json::to_string(&spec.to_value()).expect("spec serializes");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/tenants", &body);
        assert_eq!(status, 201, "tenant create failed: {response}");
        eprintln!("loadgen client: created tenant '{}'", spec.id);
    }

    let all = full_batches(&spec);
    let split = all.len() / 2;
    let batches: &[(u8, Vec<Value>)] = match args.half.as_deref() {
        None => &all,
        Some("first") => &all[..split],
        Some("second") => &all[split..],
        Some(other) => panic!("--half must be first or second, got {other:?}"),
    };
    let mut docs = 0usize;
    for (period, batch) in batches {
        let body = serde_json::to_string(&Value::Object(vec![
            ("tenant".to_string(), Value::String(spec.id.clone())),
            (
                "period".to_string(),
                Value::Number(Number::U64(u64::from(*period))),
            ),
            ("docs".to_string(), Value::Array(batch.clone())),
        ]))
        .expect("batch serializes");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
        assert_eq!(status, 200, "ingest failed: {response}");
        docs += batch.len();
    }
    eprintln!(
        "loadgen client: ingested {docs} documents into '{}'",
        spec.id
    );

    if let Some(path) = &args.report {
        let query = format!("/v1/report?tenant={}", spec.id);
        let (status, served) = roundtrip(&mut stream, "GET", &query, "");
        assert_eq!(status, 200, "report failed: {served}");
        std::fs::write(path, &served).expect("report written");
        eprintln!("loadgen client: wrote {path}");
    }
}

/// `batch` mode: the reference run — same spec-derived config, straight
/// through [`Study::run`].
fn run_batch(args: &SmokeArgs) {
    let spec = smoke_spec(args);
    let report = Study::new(spec.study_config()).run().expect("batch runs");
    let json = dox_core::report::to_json(&report).expect("report serializes");
    let path = args.out.as_deref().expect("batch mode needs --out");
    std::fs::write(path, &json).expect("report written");
    eprintln!("loadgen batch: wrote {path}");
}

/// The tenant's whole two-period stream as period-pure ingest batches.
fn full_batches(spec: &TenantSpec) -> Vec<(u8, Vec<Value>)> {
    let study = Study::with_registry(spec.study_config(), Registry::new());
    let mut batches: Vec<(u8, Vec<Value>)> = Vec::new();
    study
        .synthetic_stream(&mut |period, doc| {
            match batches.last_mut() {
                Some((p, docs)) if *p == period && docs.len() < BATCH_DOCS => {
                    docs.push(doc.to_value());
                }
                _ => batches.push((period, vec![doc.to_value()])),
            }
            ControlFlow::Continue(())
        })
        .expect("stream replays");
    batches
}

fn main() {
    let mut argv = std::env::args();
    argv.next(); // program name
    match argv.next().as_deref() {
        Some("client") => return run_client(&parse_smoke_args(argv)),
        Some("batch") => return run_batch(&parse_smoke_args(argv)),
        Some(other) => panic!("unknown mode {other:?} (expected client|batch|none)"),
        None => {}
    }
    let samples = std::env::var("DOX_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(3);

    let max_tenants = TENANT_COUNTS.iter().copied().max().unwrap_or(1);
    eprintln!("loadgen: rendering {max_tenants} tenant corpora (scale {SCALE}) ...");
    let batch_sets: Vec<Vec<(u8, Vec<Value>)>> = (0..max_tenants)
        .map(|i| batches_for_seed(BASE_SEED + i as u64))
        .collect();

    let mut entries = Vec::new();
    for count in TENANT_COUNTS {
        let mut best_seconds = f64::INFINITY;
        let mut ingest_ns: Vec<u64> = Vec::new();
        let mut alert_ns: Vec<u64> = Vec::new();
        let mut requests = 0usize;
        let mut docs = 0usize;
        let mut alerts = 0u64;
        for sample in 0..samples {
            let (seconds, stats) = run_round(count, &batch_sets);
            if seconds < best_seconds {
                best_seconds = seconds;
                requests = stats.iter().map(|s| s.requests).sum();
                docs = stats.iter().map(|s| s.docs).sum();
                alerts = stats.iter().map(|s| s.alerts_seen).sum();
            }
            for s in &stats {
                ingest_ns.extend_from_slice(&s.ingest_ns);
                alert_ns.extend_from_slice(&s.alert_lag_ns);
            }
            eprintln!(
                "loadgen: t{count} sample {}/{samples}: {seconds:.3}s",
                sample + 1
            );
        }
        ingest_ns.sort_unstable();
        alert_ns.sort_unstable();
        entries.push(format!(
            "    {{ \"config\": \"serve t{count}\", \"tenants\": {count}, \"requests\": {requests}, \
             \"docs\": {docs}, \"alerts\": {alerts}, \"seconds\": {best_seconds:.6}, \
             \"requests_per_sec\": {:.0}, \"docs_per_sec\": {:.0}, \
             \"ingest_p50_ms\": {:.3}, \"ingest_p99_ms\": {:.3}, \
             \"alert_lag_p50_ms\": {:.3}, \"alert_lag_p99_ms\": {:.3} }}",
            requests as f64 / best_seconds,
            docs as f64 / best_seconds,
            quantile_ms(&ingest_ns, 0.50),
            quantile_ms(&ingest_ns, 0.99),
            quantile_ms(&alert_ns, 0.50),
            quantile_ms(&alert_ns, 0.99),
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"serve_ingest\",\n  \"scale\": {SCALE},\n  \
         \"docs_per_tenant\": {DOCS_PER_TENANT},\n  \"batch_docs\": {BATCH_DOCS},\n  \
         \"http_workers\": {HTTP_WORKERS},\n  \"tenant_topology\": \"w{TENANT_WORKERS} s{TENANT_SHARDS}\",\n  \
         \"hardware_threads\": {},\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
