//! Load generator for the `dox-serve` service mode.
//!
//! Boots the service router in-process on an ephemeral port, creates
//! N tenants, and drives each over its own raw `TcpStream` with
//! keep-alive `POST /v1/ingest` batches drawn from the tenant's own
//! deterministic document stream. Records sustained request and
//! document throughput, ingest latency quantiles, and *alert lag* —
//! the wall-clock time from submitting a batch that commits a dox to
//! that dox being readable on the `GET /v1/alerts` cursor — then
//! writes `BENCH_serve.json` at the workspace root.
//!
//! ```text
//! cargo run --release -p dox-bench --bin loadgen
//! DOX_BENCH_SAMPLES=5 cargo run --release -p dox-bench --bin loadgen
//! ```
//!
//! Two auxiliary modes serve `scripts/serve_smoke.sh`, which drives an
//! *external* `dox-serve` daemon and needs the service and batch sides
//! derived from the exact same [`TenantSpec`] → `StudyConfig` mapping:
//!
//! ```text
//! loadgen client --addr <host:port> --id t0 --seed 99 [--create]
//!                [--half first|second] [--report <path>]
//! loadgen batch --seed 99 --out <path>
//! ```
//!
//! A third mode backs `scripts/overload_gate.sh`:
//!
//! ```text
//! loadgen overload
//! ```
//!
//! It boots a deliberately small server (2 workers, 16-slot backlog,
//! 1 s deadline) behind a quota'd tenant, then drives an *open-loop*
//! burst at ~10x the sustainable rate with slow-client and
//! oversized-body adversaries mixed in on a seeded [`FaultPlan`]
//! schedule. The gate asserts the overload policy end to end — sheds
//! answer 503 + `Retry-After`, quota breaches answer 429, the backlog
//! gauge never exceeds its bound, admitted p99 stays within the
//! deadline budget, memory stays flat, and a closed-loop recovery pass
//! returns to 100% goodput — and merges an `"overload"` section into
//! `BENCH_serve.json`.

use dox_core::study::Study;
use dox_fault::{Fault, FaultDomain, FaultPlan, FaultPlanConfig};
use dox_obs::http::{ServerConfig, DEFAULT_MAX_BODY};
use dox_obs::{HttpServer, Registry, Tracer};
use dox_serve::{router, QuotaSpec, ServeState, TenantSpec};
use serde::value::{Number, Value};
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::ops::ControlFlow;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Study scale per tenant (matches `bench_engine`'s corpus scale).
const SCALE: f64 = 0.01;
/// Documents each tenant ingests per round.
const DOCS_PER_TENANT: usize = 600;
/// Documents per `POST /v1/ingest` request.
const BATCH_DOCS: usize = 30;
/// HTTP worker threads serving the socket.
const HTTP_WORKERS: usize = 8;
/// Tenant counts to sweep (the contended point is the interesting one).
const TENANT_COUNTS: [usize; 3] = [1, 2, 4];
/// Engine topology per tenant, fixed for reproducibility.
const TENANT_WORKERS: usize = 2;
const TENANT_SHARDS: usize = 8;
/// Seed for tenant `i` is `BASE_SEED + i`: distinct corpora, distinct
/// detectors, so tenants do not share any cache-warm state.
const BASE_SEED: u64 = 40;

fn spec(id: &str, seed: u64) -> TenantSpec {
    TenantSpec {
        id: id.to_string(),
        seed,
        scale: SCALE,
        workers: TENANT_WORKERS,
        shards: TENANT_SHARDS,
        quota: None,
    }
}

/// Pre-rendered ingest batches for one seed: `(period, docs-as-JSON)`.
/// Batches never mix periods — `/v1/ingest` takes one period per call.
fn batches_for_seed(seed: u64) -> Vec<(u8, Vec<Value>)> {
    let study = Study::with_registry(spec("gen", seed).study_config(), Registry::new());
    let mut batches: Vec<(u8, Vec<Value>)> = Vec::new();
    let mut taken = 0usize;
    study
        .synthetic_stream(&mut |period, doc| {
            match batches.last_mut() {
                Some((p, docs)) if *p == period && docs.len() < BATCH_DOCS => {
                    docs.push(doc.to_value());
                }
                _ => batches.push((period, vec![doc.to_value()])),
            }
            taken += 1;
            if taken >= DOCS_PER_TENANT {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        })
        .expect("synthetic stream replays");
    batches
}

/// One keep-alive HTTP round trip; returns `(status, body)`.
fn roundtrip(stream: &mut TcpStream, method: &str, path: &str, payload: &str) -> (u16, String) {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: loadgen\r\nContent-Length: {}\r\n\r\n{payload}",
        payload.len()
    );
    stream
        .write_all(request.as_bytes())
        .expect("request written");
    read_response(stream)
}

/// Read one HTTP/1.1 response off a keep-alive stream: status line,
/// headers to the blank line, then exactly `Content-Length` body bytes.
fn read_response(stream: &mut TcpStream) -> (u16, String) {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    let header_end = loop {
        let n = stream.read(&mut byte).expect("response bytes");
        assert!(n > 0, "server closed mid-response");
        buf.push(byte[0]);
        if buf.ends_with(b"\r\n\r\n") {
            break buf.len();
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse().ok())?
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body");
    (status, String::from_utf8_lossy(&body).to_string())
}

/// What one tenant's client thread measured.
struct ClientStats {
    ingest_ns: Vec<u64>,
    alert_lag_ns: Vec<u64>,
    requests: usize,
    docs: usize,
    alerts_seen: u64,
}

/// Drive one tenant: sequential keep-alive ingest batches, with an
/// alert-cursor read after every batch that committed something.
fn drive_tenant(addr: &str, id: &str, batches: &[(u8, Vec<Value>)]) -> ClientStats {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut stats = ClientStats {
        ingest_ns: Vec::new(),
        alert_lag_ns: Vec::new(),
        requests: 0,
        docs: 0,
        alerts_seen: 0,
    };
    let mut cursor = 0u64;
    for (period, docs) in batches {
        let body = serde_json::to_string(&Value::Object(vec![
            ("tenant".to_string(), Value::String(id.to_string())),
            (
                "period".to_string(),
                Value::Number(Number::U64(u64::from(*period))),
            ),
            ("docs".to_string(), Value::Array(docs.clone())),
        ]))
        .expect("batch serializes");
        let sent = Instant::now();
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
        let ingest_done = sent.elapsed();
        assert_eq!(status, 200, "ingest failed: {response}");
        stats.ingest_ns.push(ingest_done.as_nanos() as u64);
        stats.requests += 1;
        stats.docs += docs.len();

        let outcome: Value = serde_json::from_str(&response).expect("outcome JSON");
        let committed = outcome.get("doxes").and_then(Value::as_u64).unwrap_or(0)
            + outcome
                .get("duplicates")
                .and_then(Value::as_u64)
                .unwrap_or(0);
        if committed > 0 {
            // Alert lag: submit-to-visible for this batch's doxes.
            let path = format!("/v1/alerts?tenant={id}&cursor={cursor}");
            let (status, page) = roundtrip(&mut stream, "GET", &path, "");
            assert_eq!(status, 200, "alerts failed: {page}");
            let page: Value = serde_json::from_str(&page).expect("alerts JSON");
            let next = page.get("cursor").and_then(Value::as_u64).expect("cursor");
            assert_eq!(
                next - cursor,
                committed,
                "alerts visible immediately after ingest"
            );
            stats.alert_lag_ns.push(sent.elapsed().as_nanos() as u64);
            stats.alerts_seen += committed;
            cursor = next;
        }
    }
    stats
}

/// One measured round at a given tenant count: fresh server, fresh
/// tenants, one client thread per tenant. Returns wall seconds plus
/// the merged per-thread stats.
fn run_round(count: usize, batch_sets: &[Vec<(u8, Vec<Value>)>]) -> (f64, Vec<ClientStats>) {
    let state = Arc::new(ServeState::new(Registry::new()));
    let server = HttpServer::start(
        "127.0.0.1:0",
        router(Arc::clone(&state), &Tracer::disabled()),
        HTTP_WORKERS,
        DEFAULT_MAX_BODY,
    )
    .expect("server binds");
    let addr = server.local_addr().to_string();

    // Tenant creation (detector training) happens before the clock.
    for (i, _) in batch_sets.iter().enumerate().take(count) {
        let body = serde_json::to_string(&spec(&format!("t{i}"), BASE_SEED + i as u64).to_value())
            .expect("spec serializes");
        let mut stream = TcpStream::connect(&addr).expect("connect");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/tenants", &body);
        assert_eq!(status, 201, "tenant create failed: {response}");
    }

    let started = Instant::now();
    let stats: Vec<ClientStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..count)
            .map(|i| {
                let addr = addr.clone();
                let batches = &batch_sets[i];
                scope.spawn(move || drive_tenant(&addr, &format!("t{i}"), batches))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64();
    server.stop();
    (seconds, stats)
}

/// Quantile (by rank) of a sorted nanosecond series, in milliseconds.
fn quantile_ms(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[rank] as f64 / 1e6
}

/// Smoke-mode options shared by `client` and `batch`.
struct SmokeArgs {
    addr: String,
    id: String,
    seed: u64,
    scale: f64,
    create: bool,
    half: Option<String>,
    report: Option<String>,
    out: Option<String>,
}

fn parse_smoke_args(mut it: std::env::Args) -> SmokeArgs {
    let mut args = SmokeArgs {
        addr: "127.0.0.1:9321".to_string(),
        id: "t0".to_string(),
        seed: BASE_SEED,
        scale: SCALE,
        create: false,
        half: None,
        report: None,
        out: None,
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr"),
            "--id" => args.id = value("--id"),
            "--seed" => args.seed = value("--seed").parse().expect("u64 seed"),
            "--scale" => args.scale = value("--scale").parse().expect("f64 scale"),
            "--create" => args.create = true,
            "--half" => args.half = Some(value("--half")),
            "--report" => args.report = Some(value("--report")),
            "--out" => args.out = Some(value("--out")),
            other => panic!("unknown flag {other:?}"),
        }
    }
    args
}

fn smoke_spec(args: &SmokeArgs) -> TenantSpec {
    TenantSpec {
        id: args.id.clone(),
        seed: args.seed,
        scale: args.scale,
        workers: TENANT_WORKERS,
        shards: TENANT_SHARDS,
        quota: None,
    }
}

/// Connect with retries so the script can launch the daemon and the
/// client back to back without racing the bind.
fn connect_retry(addr: &str) -> TcpStream {
    for _ in 0..100 {
        if let Ok(stream) = TcpStream::connect(addr) {
            stream.set_nodelay(true).expect("nodelay");
            return stream;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    panic!("cannot connect to dox-serve at {addr}");
}

/// `client` mode: create/reuse a tenant on a running daemon, ingest the
/// tenant's own document stream (optionally one half of it), and fetch
/// `/v1/report`.
fn run_client(args: &SmokeArgs) {
    let spec = smoke_spec(args);
    let mut stream = connect_retry(&args.addr);
    if args.create {
        let body = serde_json::to_string(&spec.to_value()).expect("spec serializes");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/tenants", &body);
        assert_eq!(status, 201, "tenant create failed: {response}");
        eprintln!("loadgen client: created tenant '{}'", spec.id);
    }

    let all = full_batches(&spec);
    let split = all.len() / 2;
    let batches: &[(u8, Vec<Value>)] = match args.half.as_deref() {
        None => &all,
        Some("first") => &all[..split],
        Some("second") => &all[split..],
        Some(other) => panic!("--half must be first or second, got {other:?}"),
    };
    let mut docs = 0usize;
    for (period, batch) in batches {
        let body = serde_json::to_string(&Value::Object(vec![
            ("tenant".to_string(), Value::String(spec.id.clone())),
            (
                "period".to_string(),
                Value::Number(Number::U64(u64::from(*period))),
            ),
            ("docs".to_string(), Value::Array(batch.clone())),
        ]))
        .expect("batch serializes");
        let (status, response) = roundtrip(&mut stream, "POST", "/v1/ingest", &body);
        assert_eq!(status, 200, "ingest failed: {response}");
        docs += batch.len();
    }
    eprintln!(
        "loadgen client: ingested {docs} documents into '{}'",
        spec.id
    );

    if let Some(path) = &args.report {
        let query = format!("/v1/report?tenant={}", spec.id);
        let (status, served) = roundtrip(&mut stream, "GET", &query, "");
        assert_eq!(status, 200, "report failed: {served}");
        std::fs::write(path, &served).expect("report written");
        eprintln!("loadgen client: wrote {path}");
    }
}

/// `batch` mode: the reference run — same spec-derived config, straight
/// through [`Study::run`].
fn run_batch(args: &SmokeArgs) {
    let spec = smoke_spec(args);
    let report = Study::new(spec.study_config()).run().expect("batch runs");
    let json = dox_core::report::to_json(&report).expect("report serializes");
    let path = args.out.as_deref().expect("batch mode needs --out");
    std::fs::write(path, &json).expect("report written");
    eprintln!("loadgen batch: wrote {path}");
}

/// The tenant's whole two-period stream as period-pure ingest batches.
fn full_batches(spec: &TenantSpec) -> Vec<(u8, Vec<Value>)> {
    let study = Study::with_registry(spec.study_config(), Registry::new());
    let mut batches: Vec<(u8, Vec<Value>)> = Vec::new();
    study
        .synthetic_stream(&mut |period, doc| {
            match batches.last_mut() {
                Some((p, docs)) if *p == period && docs.len() < BATCH_DOCS => {
                    docs.push(doc.to_value());
                }
                _ => batches.push((period, vec![doc.to_value()])),
            }
            ControlFlow::Continue(())
        })
        .expect("stream replays");
    batches
}

// --------------------------------------------------------------------
// `loadgen overload` — the open-loop overload/chaos gate.
// --------------------------------------------------------------------

/// Deliberately small server so a modest burst saturates it the same
/// way on any hardware: two workers, a 16-slot backlog, a 1 s
/// request deadline and a 256 KiB body cap.
const OVL_WORKERS: usize = 2;
const OVL_BACKLOG: usize = 16;
const OVL_DEADLINE: Duration = Duration::from_secs(1);
const OVL_MAX_BODY: usize = 256 * 1024;
/// Tenant quota: 150 docs/s = 5 sustainable batches/s at 30 docs each.
const OVL_QUOTA_DOCS_PER_SEC: f64 = 150.0;
const OVL_QUOTA_BURST_DOCS: u64 = 150;
const OVL_QUOTA_INFLIGHT_BYTES: u64 = 2 << 20;
/// Open-loop arrival: ~10x the quota-sustainable batch rate, held for
/// a fixed window regardless of how the server responds.
const OVL_ARRIVAL_RPS: u64 = 50;
const OVL_BURST: Duration = Duration::from_secs(3);
const OVL_INJECTORS: u64 = 8;
/// Mid-burst slow-client wave sized to overflow the backlog no matter
/// how fast the host drains it: 64 simultaneous connections against a
/// 16-slot queue guarantee sheds.
const OVL_WAVE: usize = 64;
const OVL_SLOW_HOLD: Duration = Duration::from_millis(1500);
const OVL_SEED: u64 = 77;
/// RSS growth budget across burst + recovery: sheds must not queue.
const OVL_RSS_BUDGET: u64 = 128 * 1024 * 1024;
const OVL_RECOVERY_REQUESTS: usize = 12;

/// What the seeded fault plan turned this arrival into.
enum Adversary {
    /// A well-formed ingest batch.
    None,
    /// Drips header bytes one at a time, holding its connection open.
    Slowloris,
    /// Declares a `Content-Length` over the body cap.
    Oversized,
}

/// Deterministic adversary schedule: the fault plan's seeded draws
/// decide which arrivals misbehave, and how.
fn adversary_for(plan: &FaultPlan, index: u64) -> Adversary {
    match plan.fault_for(FaultDomain::Collect, "overload", index, 0, 0) {
        None => Adversary::None,
        Some(Fault::RateLimited { .. }) => Adversary::Oversized,
        Some(_) => Adversary::Slowloris,
    }
}

/// Everything the burst observed, merged across injector threads.
#[derive(Default)]
struct OverloadTally {
    sent: usize,
    ok200: usize,
    shed503: usize,
    shed503_retry_after: usize,
    quota429: usize,
    quota429_retry_after: usize,
    oversized_sent: usize,
    oversized413: usize,
    deadline408: usize,
    slow_sent: usize,
    slow_cut: usize,
    other_status: usize,
    connect_errors: usize,
    ok_ns: Vec<u64>,
}

/// Read until EOF / error; tolerant by design — overloaded servers
/// close early, reset, or time out, and all of those are data here.
fn drain_stream(stream: &mut TcpStream) -> Vec<u8> {
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            Err(_) => break,
        }
    }
    raw
}

/// Parse `(status, Retry-After seconds)` off a raw response, if one
/// arrived at all.
fn parse_head(raw: &[u8]) -> Option<(u16, Option<u64>)> {
    let head = String::from_utf8_lossy(raw);
    let status: u16 = head.split_whitespace().nth(1)?.parse().ok()?;
    let retry_after = head.lines().find_map(|l| {
        let (name, value) = l.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after")
            .then(|| value.trim().parse().ok())?
    });
    Some((status, retry_after))
}

/// One open-loop shot: fresh connection, full request, read whatever
/// comes back. Returns `None` when the connection itself failed.
fn overload_shot(addr: &str, body: &str) -> Option<(u16, Option<u64>, u64)> {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(4))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(4))).ok();
    let request = format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: overload\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).ok()?;
    let raw = drain_stream(&mut stream);
    let (status, retry_after) = parse_head(&raw)?;
    Some((status, retry_after, started.elapsed().as_nanos() as u64))
}

/// Oversized-body adversary: declares a length over the cap and never
/// sends the body. The server must refuse on the declaration alone.
fn oversized_shot(addr: &str) -> Option<(u16, Option<u64>)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(4))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(4))).ok();
    let request = format!(
        "POST /v1/ingest HTTP/1.1\r\nHost: overload\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n",
        OVL_MAX_BODY + 1
    );
    stream.write_all(request.as_bytes()).ok()?;
    let raw = drain_stream(&mut stream);
    parse_head(&raw)
}

/// Slow-client adversary: opens a connection and drips header bytes,
/// one every 100 ms, for [`OVL_SLOW_HOLD`]. A correct server either
/// sheds it at the door (503) or cuts it at the deadline (408 /
/// close); either way the connection must not pin a worker forever.
fn slowloris_shot(addr: &str, tally: &Mutex<OverloadTally>) {
    {
        let mut t = tally
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        t.slow_sent += 1;
    }
    let Ok(mut stream) = TcpStream::connect(addr) else {
        let mut t = tally
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        t.connect_errors += 1;
        return;
    };
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(Duration::from_secs(4))).ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(500)))
        .ok();
    let started = Instant::now();
    let mut alive = stream
        .write_all(b"POST /v1/ingest HTTP/1.1\r\nHost: slow\r\nX-Drip: ")
        .is_ok();
    while alive && started.elapsed() < OVL_SLOW_HOLD {
        std::thread::sleep(Duration::from_millis(100));
        alive = stream.write_all(b"a").is_ok();
    }
    let raw = drain_stream(&mut stream);
    let mut t = tally
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match parse_head(&raw) {
        Some((503, retry)) => {
            t.shed503 += 1;
            t.shed503_retry_after += usize::from(retry.is_some());
            t.slow_cut += 1;
        }
        Some((408, _)) => {
            t.deadline408 += 1;
            t.slow_cut += 1;
        }
        // A reset (shed racing our drip) still means the server let go.
        _ if !alive || started.elapsed() < OVL_SLOW_HOLD + Duration::from_secs(1) => {
            t.slow_cut += 1;
        }
        _ => {}
    }
}

/// Record one well-formed shot's outcome into the tally.
fn record_shot(tally: &Mutex<OverloadTally>, outcome: Option<(u16, Option<u64>, u64)>) {
    let mut t = tally
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    t.sent += 1;
    match outcome {
        Some((200, _, ns)) => {
            t.ok200 += 1;
            t.ok_ns.push(ns);
        }
        Some((503, retry, _)) => {
            t.shed503 += 1;
            t.shed503_retry_after += usize::from(retry.is_some());
        }
        Some((429, retry, _)) => {
            t.quota429 += 1;
            t.quota429_retry_after += usize::from(retry.is_some());
        }
        Some((408, _, _)) => t.deadline408 += 1,
        Some(_) => t.other_status += 1,
        None => t.connect_errors += 1,
    }
}

/// Resident-set size from `/proc/self/status`, in bytes. `None` off
/// Linux — the RSS gate then reports 0 growth rather than failing.
fn rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Closed-loop recovery pass: paced ingests that honor `Retry-After`.
/// Returns `(successes, total 429 retries taken)`.
fn recovery_pass(addr: &str, bodies: &[String]) -> (usize, usize) {
    let mut successes = 0usize;
    let mut retries = 0usize;
    for i in 0..OVL_RECOVERY_REQUESTS {
        let body = &bodies[i % bodies.len()];
        for _attempt in 0..8 {
            match overload_shot(addr, body) {
                Some((200, _, _)) => {
                    successes += 1;
                    break;
                }
                Some((429, retry, _)) => {
                    retries += 1;
                    let secs = retry.unwrap_or(1).min(2);
                    std::thread::sleep(Duration::from_secs(secs.max(1)));
                }
                _ => std::thread::sleep(Duration::from_millis(200)),
            }
        }
        std::thread::sleep(Duration::from_millis(300));
    }
    (successes, retries)
}

/// Two-space-indented JSON so merged `BENCH_serve.json` output stays
/// diffable next to the hand-formatted bench writer.
fn pretty(value: &Value, depth: usize) -> String {
    let pad = "  ".repeat(depth + 1);
    let close = "  ".repeat(depth);
    match value {
        Value::Object(fields) if !fields.is_empty() => {
            let body = fields
                .iter()
                .map(|(k, v)| {
                    let key = serde_json::to_string(&Value::String(k.clone()))
                        .unwrap_or_else(|_| format!("{k:?}"));
                    format!("{pad}{key}: {}", pretty(v, depth + 1))
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!("{{\n{body}\n{close}}}")
        }
        Value::Array(items) if !items.is_empty() => {
            let body = items
                .iter()
                .map(|v| format!("{pad}{}", pretty(v, depth + 1)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{body}\n{close}]")
        }
        other => serde_json::to_string(other).unwrap_or_else(|_| "null".to_string()),
    }
}

fn bench_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json")
}

/// Merge the overload section into `BENCH_serve.json`, preserving the
/// throughput rows the default bench mode wrote (and vice versa).
fn write_overload_section(section: Value) {
    let path = bench_path();
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .unwrap_or_else(|| Value::Object(Vec::new()));
    if !matches!(doc, Value::Object(_)) {
        doc = Value::Object(Vec::new());
    }
    if let Value::Object(fields) = &mut doc {
        match fields.iter_mut().find(|(k, _)| k == "overload") {
            Some((_, slot)) => *slot = section,
            None => fields.push(("overload".to_string(), section)),
        }
    }
    let text = format!("{}\n", pretty(&doc, 0));
    match std::fs::write(path, text) {
        Ok(()) => println!("wrote {path} (overload section)"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

/// The overload/chaos gate. Exits nonzero on any policy violation.
#[allow(clippy::too_many_lines)]
fn run_overload() {
    eprintln!("loadgen overload: rendering corpus (scale {SCALE}) ...");
    let all_batches = batches_for_seed(OVL_SEED);
    let first_period = all_batches.first().map_or(1, |(p, _)| *p);
    // Period-pure bodies only: the burst replays them out of order, and
    // cross-period replay is the engine's concern, not this gate's.
    let bodies: Vec<String> = all_batches
        .iter()
        .filter(|(p, _)| *p == first_period)
        .map(|(period, docs)| {
            serde_json::to_string(&Value::Object(vec![
                ("tenant".to_string(), Value::String("ovl".to_string())),
                (
                    "period".to_string(),
                    Value::Number(Number::U64(u64::from(*period))),
                ),
                ("docs".to_string(), Value::Array(docs.clone())),
            ]))
            .expect("batch serializes")
        })
        .collect();
    assert!(!bodies.is_empty(), "corpus produced no period-pure batches");
    for body in &bodies {
        assert!(
            body.len() < OVL_MAX_BODY,
            "well-formed batch must fit the body cap"
        );
    }

    let registry = Registry::new();
    let state = Arc::new(ServeState::new(registry.clone()));
    let config = ServerConfig {
        workers: OVL_WORKERS,
        max_body: OVL_MAX_BODY,
        max_backlog: OVL_BACKLOG,
        request_deadline: OVL_DEADLINE,
        registry: registry.clone(),
        ..ServerConfig::default()
    };
    let server = HttpServer::start_with(
        "127.0.0.1:0",
        router(Arc::clone(&state), &Tracer::disabled()),
        config,
    )
    .expect("server binds");
    let addr = server.local_addr().to_string();

    // Quota'd tenant: detector training happens before the clock.
    let mut tenant_spec = spec("ovl", OVL_SEED);
    tenant_spec.quota = Some(QuotaSpec {
        docs_per_sec: Some(OVL_QUOTA_DOCS_PER_SEC),
        burst_docs: Some(OVL_QUOTA_BURST_DOCS),
        max_inflight_bytes: Some(OVL_QUOTA_INFLIGHT_BYTES),
    });
    let body = serde_json::to_string(&tenant_spec.to_value()).expect("spec serializes");
    let mut setup = TcpStream::connect(&addr).expect("connect");
    let (status, response) = roundtrip(&mut setup, "POST", "/v1/tenants", &body);
    assert_eq!(status, 201, "tenant create failed: {response}");
    let (status, _) = roundtrip(&mut setup, "GET", "/readyz", "");
    assert_eq!(status, 200, "server must be ready before the burst");
    drop(setup);

    // Warmup inside the quota, then the RSS baseline.
    let warm = overload_shot(&addr, &bodies[0]);
    assert!(
        matches!(warm, Some((200, _, _))),
        "warmup ingest must succeed, got {warm:?}"
    );
    let rss_before = rss_bytes().unwrap_or(0);

    let plan = FaultPlan::new(FaultPlanConfig {
        seed: OVL_SEED,
        transient_ppm: 60_000,
        max_transient_failures: 1,
        rate_limited_ppm: 500_000,
        ..FaultPlanConfig::default()
    });
    let tally = Mutex::new(OverloadTally::default());
    let backlog_gauge = registry.gauge("http.backlog_depth");
    let max_backlog_seen = std::sync::atomic::AtomicI64::new(0);
    let burst_done = std::sync::atomic::AtomicBool::new(false);

    let interval = Duration::from_micros(1_000_000 / OVL_ARRIVAL_RPS);
    let total_arrivals = OVL_ARRIVAL_RPS * OVL_BURST.as_secs();
    eprintln!(
        "loadgen overload: open-loop burst, {total_arrivals} arrivals at {OVL_ARRIVAL_RPS}/s \
         + {OVL_WAVE}-connection slow-client wave ..."
    );
    let burst_started = Instant::now();
    std::thread::scope(|scope| {
        // Backlog monitor: the bound must hold at every sample.
        scope.spawn(|| {
            use std::sync::atomic::Ordering;
            while !burst_done.load(Ordering::Relaxed) {
                let depth = backlog_gauge.get();
                max_backlog_seen.fetch_max(depth, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        // Mid-burst wave: slow clients all at once, to force sheds.
        let wave = scope.spawn(|| {
            std::thread::sleep(OVL_BURST / 2);
            std::thread::scope(|inner| {
                for _ in 0..OVL_WAVE {
                    inner.spawn(|| slowloris_shot(&addr, &tally));
                }
            });
        });
        // Open-loop injectors: fixed arrival schedule, never waits for
        // responses before launching the next arrival.
        let injectors: Vec<_> = (0..OVL_INJECTORS)
            .map(|lane| {
                let addr = &addr;
                let bodies = &bodies;
                let plan = &plan;
                let tally = &tally;
                scope.spawn(move || {
                    std::thread::scope(|slow_scope| {
                        let mut index = lane;
                        while index < total_arrivals {
                            let due = burst_started + interval * index as u32;
                            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                                std::thread::sleep(wait);
                            }
                            match adversary_for(plan, index) {
                                Adversary::None => {
                                    let body = &bodies[index as usize % bodies.len()];
                                    record_shot(tally, overload_shot(addr, body));
                                }
                                Adversary::Oversized => {
                                    let mut t = tally
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    t.oversized_sent += 1;
                                    drop(t);
                                    let outcome = oversized_shot(addr);
                                    let mut t = tally
                                        .lock()
                                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                                    match outcome {
                                        Some((413, _)) => t.oversized413 += 1,
                                        Some((503, retry)) => {
                                            t.shed503 += 1;
                                            t.shed503_retry_after += usize::from(retry.is_some());
                                        }
                                        Some(_) => t.other_status += 1,
                                        None => t.connect_errors += 1,
                                    }
                                }
                                Adversary::Slowloris => {
                                    slow_scope.spawn(|| slowloris_shot(addr, tally));
                                }
                            }
                            index += OVL_INJECTORS;
                        }
                    });
                })
            })
            .collect();
        for handle in injectors {
            let _ = handle.join();
        }
        let _ = wave.join();
        burst_done.store(true, std::sync::atomic::Ordering::Relaxed);
    });
    let burst_seconds = burst_started.elapsed().as_secs_f64();

    // Let the queue drain: the deadline cuts every parked slow client
    // within OVL_DEADLINE, so the gauge must return to zero.
    let drain_started = Instant::now();
    while backlog_gauge.get() > 0 && drain_started.elapsed() < Duration::from_secs(15) {
        std::thread::sleep(Duration::from_millis(50));
    }
    let drained_secs = drain_started.elapsed().as_secs_f64();
    std::thread::sleep(Duration::from_millis(250));

    eprintln!("loadgen overload: recovery pass ({OVL_RECOVERY_REQUESTS} closed-loop ingests) ...");
    let (recovered, recovery_retries) = recovery_pass(&addr, &bodies);
    let rss_after = rss_bytes().unwrap_or(rss_before);
    let rss_growth = rss_after.saturating_sub(rss_before);

    let shed_total = registry.counter("http.shed_total").get();
    let deadline_hits = registry.counter("http.deadline_hits").get();
    let quota_rejects = registry.counter("serve.tenant.ovl.quota_rejects").get();
    server.stop();

    let mut t = tally
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    t.ok_ns.sort_unstable();
    let p50_ms = quantile_ms(&t.ok_ns, 0.50);
    let p99_ms = quantile_ms(&t.ok_ns, 0.99);
    let max_depth = max_backlog_seen.into_inner();
    let shed_rate = if t.sent + t.oversized_sent + t.slow_sent > 0 {
        shed_total as f64 / (t.sent + t.oversized_sent + t.slow_sent) as f64
    } else {
        0.0
    };
    let goodput_rps = t.ok200 as f64 / burst_seconds;

    eprintln!(
        "loadgen overload: sent={} ok200={} shed503={} quota429={} 413={} 408={} \
         other={} connect_errors={} slow_cut={}/{}",
        t.sent,
        t.ok200,
        t.shed503,
        t.quota429,
        t.oversized413,
        t.deadline408,
        t.other_status,
        t.connect_errors,
        t.slow_cut,
        t.slow_sent,
    );
    eprintln!(
        "loadgen overload: server counters shed_total={shed_total} deadline_hits={deadline_hits} \
         quota_rejects={quota_rejects}; backlog max {max_depth}/{OVL_BACKLOG}; \
         drained in {drained_secs:.2}s; admitted p50 {p50_ms:.1}ms p99 {p99_ms:.1}ms; \
         recovery {recovered}/{OVL_RECOVERY_REQUESTS} ({recovery_retries} retries); \
         rss +{} KiB",
        rss_growth / 1024,
    );

    let num = |v: f64| Value::Number(Number::F64(v));
    let int = |v: u64| Value::Number(Number::U64(v));
    let section = Value::Object(vec![
        ("arrival_rps".to_string(), int(OVL_ARRIVAL_RPS)),
        ("burst_secs".to_string(), num(burst_seconds)),
        ("workers".to_string(), int(OVL_WORKERS as u64)),
        ("max_backlog".to_string(), int(OVL_BACKLOG as u64)),
        (
            "deadline_ms".to_string(),
            int(OVL_DEADLINE.as_millis() as u64),
        ),
        (
            "quota_docs_per_sec".to_string(),
            num(OVL_QUOTA_DOCS_PER_SEC),
        ),
        ("sent".to_string(), int(t.sent as u64)),
        ("ok200".to_string(), int(t.ok200 as u64)),
        ("shed503".to_string(), int(t.shed503 as u64)),
        ("quota429".to_string(), int(t.quota429 as u64)),
        ("oversized413".to_string(), int(t.oversized413 as u64)),
        ("deadline408".to_string(), int(t.deadline408 as u64)),
        ("server_shed_total".to_string(), int(shed_total)),
        ("server_deadline_hits".to_string(), int(deadline_hits)),
        ("server_quota_rejects".to_string(), int(quota_rejects)),
        ("shed_rate".to_string(), num(shed_rate)),
        ("goodput_rps".to_string(), num(goodput_rps)),
        ("admitted_p50_ms".to_string(), num(p50_ms)),
        ("admitted_p99_ms".to_string(), num(p99_ms)),
        ("backlog_max_seen".to_string(), int(max_depth.max(0) as u64)),
        ("drain_secs".to_string(), num(drained_secs)),
        (
            "recovery_goodput".to_string(),
            num(recovered as f64 / OVL_RECOVERY_REQUESTS as f64),
        ),
        ("recovery_retries".to_string(), int(recovery_retries as u64)),
        ("rss_growth_bytes".to_string(), int(rss_growth)),
    ]);
    write_overload_section(section);

    // The gate proper: every clause is one promise from DESIGN.md §13.
    let mut failures: Vec<String> = Vec::new();
    let mut check = |ok: bool, what: String| {
        if !ok {
            failures.push(what);
        }
    };
    check(
        t.shed503 >= 1 && shed_total >= 1,
        format!(
            "backlog overflow must shed with 503 (client saw {}, server shed {shed_total})",
            t.shed503
        ),
    );
    check(
        t.shed503_retry_after == t.shed503,
        format!(
            "every shed 503 must carry Retry-After ({}/{} did)",
            t.shed503_retry_after, t.shed503
        ),
    );
    check(
        t.quota429 >= 1 && t.quota429_retry_after == t.quota429,
        format!(
            "quota breaches must answer 429 + Retry-After (saw {}, {} with the header)",
            t.quota429, t.quota429_retry_after
        ),
    );
    check(
        t.oversized_sent > 0 && t.oversized413 + t.shed503 > 0 && t.other_status == 0,
        format!(
            "oversized declarations must be refused up front \
             ({} sent, {} got 413, {} unexpected statuses)",
            t.oversized_sent, t.oversized413, t.other_status
        ),
    );
    check(
        max_depth <= OVL_BACKLOG as i64,
        format!("backlog gauge must respect its bound ({max_depth} > {OVL_BACKLOG})"),
    );
    check(
        t.ok200 >= 1,
        format!(
            "some in-quota traffic must be admitted under overload (ok200={})",
            t.ok200
        ),
    );
    check(
        p99_ms <= (OVL_DEADLINE.as_millis() as f64) + 1000.0,
        format!("admitted p99 must stay near the deadline budget ({p99_ms:.1}ms)"),
    );
    check(
        t.slow_sent > 0 && t.slow_cut == t.slow_sent,
        format!(
            "every slow client must be shed or cut at the deadline ({}/{})",
            t.slow_cut, t.slow_sent
        ),
    );
    check(
        backlog_gauge.get() == 0 && drained_secs < 15.0,
        format!("backlog must drain after the burst (took {drained_secs:.2}s)"),
    );
    check(
        recovered == OVL_RECOVERY_REQUESTS,
        format!("recovery must return to 100% goodput ({recovered}/{OVL_RECOVERY_REQUESTS})"),
    );
    check(
        rss_growth < OVL_RSS_BUDGET,
        format!(
            "RSS must stay bounded across the burst (+{} KiB, budget {} KiB)",
            rss_growth / 1024,
            OVL_RSS_BUDGET / 1024
        ),
    );

    if failures.is_empty() {
        println!("loadgen overload: PASS ({} clauses)", 11);
    } else {
        for f in &failures {
            eprintln!("loadgen overload: FAIL: {f}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let mut argv = std::env::args();
    argv.next(); // program name
    match argv.next().as_deref() {
        Some("client") => return run_client(&parse_smoke_args(argv)),
        Some("batch") => return run_batch(&parse_smoke_args(argv)),
        Some("overload") => return run_overload(),
        Some(other) => panic!("unknown mode {other:?} (expected client|batch|overload|none)"),
        None => {}
    }
    let samples = std::env::var("DOX_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(3);

    let max_tenants = TENANT_COUNTS.iter().copied().max().unwrap_or(1);
    eprintln!("loadgen: rendering {max_tenants} tenant corpora (scale {SCALE}) ...");
    let batch_sets: Vec<Vec<(u8, Vec<Value>)>> = (0..max_tenants)
        .map(|i| batches_for_seed(BASE_SEED + i as u64))
        .collect();

    let mut entries = Vec::new();
    for count in TENANT_COUNTS {
        let mut best_seconds = f64::INFINITY;
        let mut ingest_ns: Vec<u64> = Vec::new();
        let mut alert_ns: Vec<u64> = Vec::new();
        let mut requests = 0usize;
        let mut docs = 0usize;
        let mut alerts = 0u64;
        for sample in 0..samples {
            let (seconds, stats) = run_round(count, &batch_sets);
            if seconds < best_seconds {
                best_seconds = seconds;
                requests = stats.iter().map(|s| s.requests).sum();
                docs = stats.iter().map(|s| s.docs).sum();
                alerts = stats.iter().map(|s| s.alerts_seen).sum();
            }
            for s in &stats {
                ingest_ns.extend_from_slice(&s.ingest_ns);
                alert_ns.extend_from_slice(&s.alert_lag_ns);
            }
            eprintln!(
                "loadgen: t{count} sample {}/{samples}: {seconds:.3}s",
                sample + 1
            );
        }
        ingest_ns.sort_unstable();
        alert_ns.sort_unstable();
        entries.push(format!(
            "    {{ \"config\": \"serve t{count}\", \"tenants\": {count}, \"requests\": {requests}, \
             \"docs\": {docs}, \"alerts\": {alerts}, \"seconds\": {best_seconds:.6}, \
             \"requests_per_sec\": {:.0}, \"docs_per_sec\": {:.0}, \
             \"ingest_p50_ms\": {:.3}, \"ingest_p99_ms\": {:.3}, \
             \"alert_lag_p50_ms\": {:.3}, \"alert_lag_p99_ms\": {:.3} }}",
            requests as f64 / best_seconds,
            docs as f64 / best_seconds,
            quantile_ms(&ingest_ns, 0.50),
            quantile_ms(&ingest_ns, 0.99),
            quantile_ms(&alert_ns, 0.50),
            quantile_ms(&alert_ns, 0.99),
        ));
    }

    let mut json = format!(
        "{{\n  \"bench\": \"serve_ingest\",\n  \"scale\": {SCALE},\n  \
         \"docs_per_tenant\": {DOCS_PER_TENANT},\n  \"batch_docs\": {BATCH_DOCS},\n  \
         \"http_workers\": {HTTP_WORKERS},\n  \"tenant_topology\": \"w{TENANT_WORKERS} s{TENANT_SHARDS}\",\n  \
         \"hardware_threads\": {},\n  \"samples\": {samples},\n  \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        entries.join(",\n")
    );
    let path = bench_path();
    // Keep an `overload` section written by `loadgen overload` — the
    // two modes own disjoint keys of the same report.
    let previous_overload = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<Value>(&text).ok())
        .and_then(|doc| doc.get("overload").cloned());
    if let Some(overload) = previous_overload {
        if let Some(tail) = json.rfind("\n}") {
            json.truncate(tail);
            json.push_str(&format!(
                ",\n  \"overload\": {}\n}}\n",
                pretty(&overload, 1)
            ));
        }
    }
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
