//! The reproduction harness: regenerate every table and figure.
//!
//! ```text
//! cargo run -p dox-bench --release --bin repro -- [OPTIONS]
//!
//! OPTIONS:
//!   --scale <0..1]     corpus scale (default 0.05; 1.0 = paper scale)
//!   --seed <u64>       master seed (default: the study default)
//!   --workers <n>      ingest-engine stage workers (default: all cores)
//!   --shards <n>       ingest-engine dedup shards (default: 8)
//!   --reference        run the sequential reference pipeline instead of
//!                      the streaming engine (identical output, slower)
//!   --table <id>       print one result only: fig1, t1..t10, fig2, fig3,
//!                      v-ip, v-comments (default: everything)
//!   --json <path>      also write the machine-readable report
//!   --metrics <path>   write the observability snapshot (per-stage spans,
//!                      funnel counters, events) as JSON
//!   --fault-plan <p>   inject deterministic faults from a JSON
//!                      `FaultPlanConfig` (see DESIGN.md §9)
//!   --checkpoint-dir <d>  persist resumable checkpoints into <d>
//!   --checkpoint-every <n> checkpoint cadence in documents (default 10000)
//!   --resume           resume from the checkpoint in --checkpoint-dir
//!   --store            store-backed durability: checkpoints and spilled
//!                      dedup state commit atomically through the
//!                      crash-safe segment store in --checkpoint-dir
//!   --spill-cap <n>    in-memory dedup entries per shard before spilling
//!                      to the store (default 65536; needs --store)
//!   --trace <path>     export sampled causal traces as JSONL (samples
//!                      every document unless --trace-sample is given)
//!   --trace-sample <ppm>  trace sampling rate, documents per million
//!   --telemetry <addr> serve live metrics at http://<addr>/metrics and
//!                      recent traces at /traces for the duration of the run
//!   --quiet            suppress progress notes and the profile on stderr
//! ```
//!
//! The report is a pure function of `(scale, seed)`: any `--workers` /
//! `--shards` combination — and `--reference` — produces byte-identical
//! `--json` output. So does any fault plan whose faults all recover, and
//! a kill/`--resume` pair: checkpoint-resumed runs re-emit the exact
//! bytes of the uninterrupted run. Tracing inherits the same contract:
//! `--trace` output is byte-identical for a fixed `(scale, seed, ppm)` at
//! any worker/shard count, because hop timestamps come from the simulated
//! clock and sampling is a pure hash of `(seed, document id)`.
//!
//! A run halted by the fault plan's `kill_after_docs` switch exits with
//! code 3 (distinct from ordinary failures) so harnesses can follow up
//! with `--resume`.
//!
//! Wall-clock timings live only in the metrics snapshot and the stderr
//! profile — never in the `--json` report, which stays byte-identical for
//! a fixed seed whether or not metrics are collected.

use dox_core::report;
use dox_core::study::{Study, StudyConfig};
use dox_fault::FaultPlanConfig;
use dox_obs::{Level, StageSpan, Telemetry};
use std::process::ExitCode;

/// Exit code for a run stopped by the fault plan's kill switch — distinct
/// from ordinary failure so chaos harnesses can chain `--resume`.
const EXIT_HALTED: u8 = 3;

struct Args {
    scale: f64,
    seed: Option<u64>,
    workers: Option<usize>,
    shards: Option<usize>,
    reference: bool,
    table: Option<String>,
    json: Option<String>,
    metrics: Option<String>,
    fault_plan: Option<String>,
    checkpoint_dir: Option<String>,
    checkpoint_every: Option<u64>,
    resume: bool,
    store: bool,
    spill_cap: Option<usize>,
    trace: Option<String>,
    trace_sample: Option<u32>,
    telemetry: Option<String>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scale: 0.05,
        seed: None,
        workers: None,
        shards: None,
        reference: false,
        table: None,
        json: None,
        metrics: None,
        fault_plan: None,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        store: false,
        spill_cap: None,
        trace: None,
        trace_sample: None,
        telemetry: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?;
                if !(args.scale > 0.0 && args.scale <= 1.0) {
                    return Err(format!("scale must be in (0, 1], got {}", args.scale));
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                args.workers = Some(v.parse().map_err(|_| format!("bad workers {v:?}"))?);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a value")?;
                args.shards = Some(v.parse().map_err(|_| format!("bad shards {v:?}"))?);
            }
            "--reference" => args.reference = true,
            "--table" => {
                // Validated here, not after the study runs: a bad id must
                // fail fast, before the (expensive) run and before the
                // `--telemetry` startup notice can print on a doomed
                // invocation.
                let v = it.next().ok_or("--table needs a value")?;
                if !TABLE_IDS.contains(&v.as_str()) {
                    return Err(format!(
                        "unknown table {v:?} (expected one of: {})",
                        TABLE_IDS.join(" ")
                    ));
                }
                args.table = Some(v);
            }
            "--json" => args.json = Some(it.next().ok_or("--json needs a path")?),
            "--metrics" => args.metrics = Some(it.next().ok_or("--metrics needs a path")?),
            "--fault-plan" => {
                args.fault_plan = Some(it.next().ok_or("--fault-plan needs a path")?);
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir = Some(it.next().ok_or("--checkpoint-dir needs a path")?);
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a value")?;
                args.checkpoint_every = Some(
                    v.parse()
                        .map_err(|_| format!("bad checkpoint cadence {v:?}"))?,
                );
            }
            "--resume" => args.resume = true,
            "--store" => args.store = true,
            "--spill-cap" => {
                let v = it.next().ok_or("--spill-cap needs a value")?;
                args.spill_cap = Some(v.parse().map_err(|_| format!("bad spill cap {v:?}"))?);
            }
            "--trace" => args.trace = Some(it.next().ok_or("--trace needs a path")?),
            "--trace-sample" => {
                let v = it.next().ok_or("--trace-sample needs a value")?;
                args.trace_sample = Some(v.parse().map_err(|_| format!("bad sample rate {v:?}"))?);
            }
            "--telemetry" => {
                args.telemetry = Some(it.next().ok_or("--telemetry needs an address")?);
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                eprintln!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.store && args.checkpoint_dir.is_none() {
        return Err("--store needs --checkpoint-dir".to_string());
    }
    if args.spill_cap.is_some() && !args.store {
        return Err("--spill-cap needs --store".to_string());
    }
    Ok(args)
}

/// Every `--table` id, in presentation order. `parse_args` rejects
/// anything else before the study runs.
const TABLE_IDS: [&str; 15] = [
    "fig1",
    "t1",
    "t2",
    "t3",
    "t4",
    "t5",
    "t6",
    "t7",
    "t8",
    "t9",
    "t10",
    "fig2",
    "fig3",
    "v-ip",
    "v-comments",
];

const HELP: &str = "repro — regenerate every table/figure of the doxing study
  --scale <0..1]   corpus scale (default 0.05; 1.0 = paper scale)
  --seed <u64>     master seed
  --workers <n>    ingest-engine stage workers (default: all cores)
  --shards <n>     ingest-engine dedup shards (default: 8)
  --reference      use the sequential reference pipeline (same output)
  --table <id>     fig1 t1 t2 t3 t4 t5 t6 t7 t8 t9 t10 fig2 fig3 v-ip v-comments
  --json <path>    write the JSON report
  --metrics <path> write the metrics/span snapshot as JSON
  --fault-plan <p> inject deterministic faults from a JSON FaultPlanConfig
  --checkpoint-dir <d>   persist resumable checkpoints into <d>
  --checkpoint-every <n> checkpoint cadence in documents (default 10000)
  --resume         resume from the checkpoint in --checkpoint-dir
  --store          crash-safe store-backed checkpoints + dedup spill
  --spill-cap <n>  in-memory dedup entries per shard before spilling
  --trace <path>   export sampled causal traces as JSONL
  --trace-sample <ppm>   trace sampling rate per million (default: all)
  --telemetry <addr>     serve GET /metrics and /traces on <addr>
  --quiet          no progress or profile output";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let obs = dox_obs::global();
    obs.events().set_echo(!args.quiet);

    let mut config = StudyConfig::at_scale(args.scale);
    if let Some(seed) = args.seed {
        config.seed = seed;
        config.synth.seed = seed;
    }
    if let Some(workers) = args.workers {
        config.engine.workers = workers;
    }
    if let Some(shards) = args.shards {
        config.engine.shards = shards;
    }
    if let Some(path) = &args.fault_plan {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read fault plan {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let plan: FaultPlanConfig = match serde_json::from_str(&text) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: bad fault plan {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        config.faults = Some(plan);
    }
    if let Some(dir) = &args.checkpoint_dir {
        config.durability.checkpoint_dir = Some(dir.into());
    }
    if let Some(every) = args.checkpoint_every {
        config.durability.checkpoint_every_docs = every;
    }
    config.durability.resume = args.resume;
    config.durability.store = args.store;
    if let Some(cap) = args.spill_cap {
        config.durability.spill_cap_entries = cap;
    }
    if args.trace.is_some() || args.trace_sample.is_some() {
        // `--trace` alone samples everything; `--trace-sample` alone still
        // records (for `--telemetry`'s /traces) without an export file.
        config.trace_sample_ppm = args.trace_sample.unwrap_or(dox_obs::SAMPLE_ALL);
    }
    dox_obs::emit!(
        Level::Info,
        "repro",
        "starting the full study",
        scale = args.scale,
        documents = config.synth.total_documents(),
        dox_postings = config.synth.total_doxes(),
        seed = format!("{:#x}", config.seed),
    );
    let start = std::time::Instant::now();
    let study = Study::new(config);
    // Live telemetry rides alongside the run; the handle's Drop stops the
    // server, so a failed study still releases the port.
    let _telemetry = match &args.telemetry {
        Some(addr) => {
            match Telemetry::start(addr, study.registry().clone(), study.tracer().clone()) {
                Ok(server) => {
                    dox_obs::emit!(
                        Level::Info,
                        "repro",
                        "telemetry serving",
                        metrics = format!("http://{}/metrics", server.local_addr()),
                        traces = format!("http://{}/traces", server.local_addr()),
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("error: cannot bind telemetry on {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };
    let r = match if args.reference {
        study.run_reference()
    } else {
        study.run()
    } {
        Ok(r) => r,
        Err(dox_core::Error::Halted { docs_ingested }) => {
            eprintln!(
                "halted: fault plan killed the run after {docs_ingested} documents; \
                 rerun with --resume to continue from the last checkpoint"
            );
            return ExitCode::from(EXIT_HALTED);
        }
        Err(e) => {
            eprintln!("error: study failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    dox_obs::emit!(
        Level::Info,
        "repro",
        "study completed",
        elapsed = format!("{:.1?}", start.elapsed()),
    );

    let output = {
        let _span = StageSpan::enter(obs, "report.render");
        match args.table.as_deref() {
            None => report::full_report(&r),
            Some("fig1") => report::figure1(&r),
            Some("t1") => report::table1(&r),
            Some("t2") => report::table2(&r),
            Some("t3") => report::table3(&r),
            Some("t4") => report::table4(&r),
            Some("t5") => report::table5(&r),
            Some("t6") => report::table6(&r),
            Some("t7") => report::table7(&r),
            Some("t8") => report::table8(&r),
            Some("t9") => report::table9(&r),
            Some("t10") => report::table10(&r),
            Some("fig2") => report::figure2(&r),
            Some("fig3") => report::figure3(&r),
            Some("v-ip") => report::validation_ip(&r),
            Some("v-comments") => report::validation_comments(&r),
            Some(other) => {
                eprintln!("error: unknown table {other:?}\n{HELP}");
                return ExitCode::FAILURE;
            }
        }
    };
    println!("{output}");

    if let Some(path) = args.json {
        // Deterministic: derived only from (config, seed), never from the
        // metrics snapshot.
        let json = match report::to_json(&r) {
            Ok(j) => j,
            Err(e) => {
                eprintln!("error: cannot serialize report: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        dox_obs::emit!(Level::Info, "repro", "JSON report written", path = path);
    }

    if let Some(path) = &args.trace {
        // Deterministic like the report: doc-id-ordered JSONL, sim-clock
        // hop timestamps, hash-based sampling — byte-identical for a
        // fixed (scale, seed, ppm) at any worker/shard count.
        let jsonl = study.tracer().export_jsonl();
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        dox_obs::emit!(
            Level::Info,
            "repro",
            "trace export written",
            path = path,
            traces = study.tracer().buffered(),
            evicted = study.tracer().dropped(),
        );
    }

    let snapshot = obs.snapshot();
    if !args.quiet {
        eprintln!("\n--- per-stage profile ---\n{}", snapshot.render_table());
    }
    if let Some(path) = args.metrics {
        let json = serde_json::to_string_pretty(&snapshot).expect("snapshot serializes");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        dox_obs::emit!(
            Level::Info,
            "repro",
            "metrics snapshot written",
            path = path
        );
    }
    ExitCode::SUCCESS
}
