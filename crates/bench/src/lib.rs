//! # dox-bench
//!
//! Benchmarks and the experiment reproduction harness.
//!
//! The `repro` binary regenerates every table and figure of the paper
//! (`cargo run -p dox-bench --release --bin repro -- --scale 0.05`);
//! the Criterion benches (`cargo bench`) measure the throughput of each
//! pipeline stage plus ablations of the design choices called out in
//! DESIGN.md (fitted TF-IDF vs hashing vectorizer, SGD vs naive Bayes vs
//! keyword rules, account-set dedup vs SimHash, filter-era counterfactual).
//!
//! This library exposes the shared fixture builders the benches use so
//! they stay consistent and cheap to construct.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use dox_geo::alloc::{AllocConfig, Allocation};
use dox_geo::model::{World, WorldConfig};
use dox_synth::config::SynthConfig;
use dox_synth::corpus::CorpusGenerator;

/// A reusable benchmark fixture: world + allocation, with helpers that
/// materialize labeled corpora and document streams.
pub struct BenchFixture {
    /// The synthetic geography.
    pub world: World,
    /// The IP allocation over it.
    pub alloc: Allocation,
    /// Seed used for every derived generator.
    pub seed: u64,
}

impl BenchFixture {
    /// Standard fixture (seed 0xBE9C).
    pub fn new() -> Self {
        let seed = 0xBE9C;
        let world = World::generate(
            &WorldConfig {
                countries: 6,
                states_per_country: 8,
                cities_per_state: 8,
            },
            seed,
        );
        let alloc = Allocation::generate(&world, &AllocConfig::default(), seed);
        Self { world, alloc, seed }
    }

    /// A corpus generator at `scale`.
    pub fn generator(&self, scale: f64) -> CorpusGenerator<'_> {
        CorpusGenerator::new(&self.world, &self.alloc, SynthConfig::at_scale(scale))
    }

    /// A labeled training corpus at `scale`.
    pub fn training_sets(&self, scale: f64) -> (Vec<String>, Vec<bool>) {
        self.generator(scale).training_sets()
    }

    /// `n` proof-of-work dox bodies (rich, labeled).
    pub fn dox_bodies(&self, n: usize) -> Vec<String> {
        self.generator(0.02)
            .proof_of_work_sample(n)
            .into_iter()
            .map(|(doc, _)| doc.body)
            .collect()
    }
}

impl Default for BenchFixture {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds_and_generates() {
        let f = BenchFixture::new();
        let (texts, labels) = f.training_sets(0.002);
        assert_eq!(texts.len(), labels.len());
        assert!(!f.dox_bodies(5).is_empty());
    }
}
