//! Doxer-network analysis benchmarks (paper Figure 2): building the
//! credit/follow graph and enumerating maximal cliques (Bron–Kerbosch)
//! over a paper-scale doxer population.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dox_core::analysis::doxnet::{maximal_cliques, summarize, DoxerGraph};
use dox_obs::Level;
use dox_synth::doxers::DoxerPopulation;
use std::collections::BTreeSet;
use std::hint::black_box;

/// Materialize the population's team structure as a graph (what the study
/// recovers through credits + Twitter follows).
fn population_graph(pop: &DoxerPopulation) -> DoxerGraph {
    let mut g = DoxerGraph::default();
    for d in pop.doxers() {
        g.aliases.push(d.alias.clone());
        g.twitter.push(d.twitter.clone());
        g.adj.push(BTreeSet::new());
    }
    for team in pop.teams() {
        for (i, &a) in team.iter().enumerate() {
            for &b in &team[i + 1..] {
                if pop.mutual_follow(a, b) {
                    g.adj[a as usize].insert(b as usize);
                    g.adj[b as usize].insert(a as usize);
                }
            }
        }
    }
    g
}

fn bench_cliques(c: &mut Criterion) {
    dox_obs::global().events().set_echo(true);
    let mut group = c.benchmark_group("doxnet");
    for scale in [0.25, 0.5, 1.0] {
        let pop = DoxerPopulation::generate(1, scale);
        let graph = population_graph(&pop);
        group.bench_with_input(
            BenchmarkId::new("bron_kerbosch", format!("scale{scale}")),
            &graph,
            |b, g| b.iter(|| black_box(maximal_cliques(black_box(g)))),
        );
    }
    group.finish();

    // Figure 2's caption numbers at paper scale.
    let pop = DoxerPopulation::paper(1);
    let s = summarize(&population_graph(&pop));
    dox_obs::emit!(
        Level::Info,
        "bench.fig2",
        "doxer-network caption numbers",
        doxers = s.total_doxers,
        with_twitter = s.with_twitter,
        in_big_cliques = s.in_big_cliques,
        max_clique = s.max_clique,
    );
}

criterion_group!(benches, bench_cliques);
criterion_main!(benches);
