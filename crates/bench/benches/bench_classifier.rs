//! Classifier benchmarks (paper Table 1) and model ablations.
//!
//! Regenerates Table 1's evaluation (TF-IDF + SGD, 2/3–1/3 split) and
//! compares the paper's hinge-loss SGD against logistic SGD, multinomial
//! naive Bayes and the keyword-rule baseline — the design-choice ablation
//! called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion};
use dox_bench::BenchFixture;
use dox_ml::baseline::{KeywordBaseline, MultinomialNb};
use dox_ml::eval::evaluate_classifier;
use dox_ml::metrics::ClassificationReport;
use dox_ml::sgd::{SgdClassifier, SgdConfig};
use dox_textkit::tfidf::{TfidfConfig, TfidfVectorizer};
use std::hint::black_box;

fn quality_note(name: &str, report: &ClassificationReport) {
    dox_obs::emit!(
        dox_obs::Level::Info,
        "bench.table1",
        name,
        dox_p = format!("{:.2}", report.dox.precision),
        dox_r = format!("{:.2}", report.dox.recall),
        dox_f1 = format!("{:.2}", report.dox.f1),
        not_p = format!("{:.2}", report.not.precision),
        not_r = format!("{:.2}", report.not.recall),
        not_f1 = format!("{:.2}", report.not.f1),
    );
}

fn bench_training(c: &mut Criterion) {
    dox_obs::global().events().set_echo(true);
    let fixture = BenchFixture::new();
    let (texts, labels) = fixture.training_sets(0.05);

    // Print the Table 1 numbers once per run so `cargo bench` output
    // documents the quality alongside the speed.
    let outcome = evaluate_classifier(
        &texts,
        &labels,
        2.0 / 3.0,
        7,
        SgdConfig::paper(),
        TfidfConfig::default(),
    );
    quality_note("sgd-hinge", &outcome.report);
    let logistic = evaluate_classifier(
        &texts,
        &labels,
        2.0 / 3.0,
        7,
        SgdConfig::logistic(),
        TfidfConfig::default(),
    );
    quality_note("sgd-log", &logistic.report);

    let mut group = c.benchmark_group("classifier");
    group.sample_size(10);
    group.bench_function("train_paper_protocol", |b| {
        b.iter(|| {
            black_box(evaluate_classifier(
                black_box(&texts),
                black_box(&labels),
                2.0 / 3.0,
                7,
                SgdConfig::paper(),
                TfidfConfig::default(),
            ))
        })
    });

    // Inference throughput over a pre-vectorized batch.
    let mut vect = TfidfVectorizer::default();
    let vecs = vect.fit_transform(&texts);
    let n_features = vect.model().expect("fitted").n_features();
    let clf = SgdClassifier::fit(SgdConfig::paper(), n_features, &vecs, &labels);
    group.bench_function("predict_batch", |b| {
        b.iter(|| black_box(clf.predict_batch(black_box(&vecs))))
    });

    let nb = MultinomialNb::fit(n_features, &vecs, &labels, 1.0);
    group.bench_function("naive_bayes_predict_batch", |b| {
        b.iter(|| black_box(nb.predict_batch(black_box(&vecs))))
    });

    let kw = KeywordBaseline::default();
    group.bench_function("keyword_baseline_predict", |b| {
        b.iter(|| {
            let hits = texts.iter().filter(|t| kw.predict(black_box(t))).count();
            black_box(hits)
        })
    });
    group.finish();

    // Ablation quality notes.
    let nb_pred = nb.predict_batch(&vecs);
    quality_note(
        "naive-bayes(train-set)",
        &ClassificationReport::from_labels(&nb_pred, &labels),
    );
    let kw_pred: Vec<bool> = texts.iter().map(|t| kw.predict(t)).collect();
    quality_note(
        "keyword-rules(train-set)",
        &ClassificationReport::from_labels(&kw_pred, &labels),
    );
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
