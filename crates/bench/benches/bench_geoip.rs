//! Geolocation benchmarks (paper §4.1): longest-prefix lookups against the
//! synthetic geo-IP database and full consistency classifications.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dox_bench::BenchFixture;
use dox_geo::consistency::classify_pair;
use dox_geo::geoip::GeoIpDb;
use dox_geo::postal::PostalAddress;
use rand::RngExt;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_geoip(c: &mut Criterion) {
    let fixture = BenchFixture::new();
    let db = GeoIpDb::build(&fixture.world, &fixture.alloc);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let ips: Vec<Ipv4Addr> = (0..10_000)
        .map(|_| {
            let isp = &fixture.alloc.isps()[rng.random_range(0..fixture.alloc.isps().len())];
            let block = &isp.blocks[rng.random_range(0..isp.blocks.len())];
            block
                .nth(rng.random_range(0..block.size()))
                .expect("in block")
        })
        .collect();

    let mut group = c.benchmark_group("geoip");
    group.throughput(Throughput::Elements(ips.len() as u64));
    group.bench_function("lookup_10k", |b| {
        b.iter(|| {
            for &ip in &ips {
                black_box(db.lookup(black_box(ip)));
            }
        })
    });

    let city = &fixture.world.cities()[3];
    let address = PostalAddress {
        number: 12,
        street: "Bench Street".into(),
        city: city.id,
        zip: city.zip_range.0,
    };
    group.throughput(Throughput::Elements(ips.len() as u64));
    group.bench_function("classify_pair_10k", |b| {
        b.iter(|| {
            for &ip in &ips {
                black_box(classify_pair(
                    &fixture.world,
                    &db,
                    black_box(ip),
                    black_box(&address),
                ));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_geoip);
criterion_main!(benches);
