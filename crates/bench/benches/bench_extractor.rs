//! Extractor benchmarks (paper Table 2): throughput of the full extraction
//! record over realistic dox bodies, plus the per-pass split (OSN handles
//! vs sensitive fields vs credits).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dox_bench::BenchFixture;
use dox_extract::credits::extract_credits;
use dox_extract::fields::extract_fields;
use dox_extract::osn::extract_osn;
use dox_extract::record::extract;
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let fixture = BenchFixture::new();
    let bodies = fixture.dox_bodies(200);
    let total_bytes: u64 = bodies.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("extract");
    group.throughput(Throughput::Bytes(total_bytes));
    group.bench_function("full_record_200_doxes", |b| {
        b.iter(|| {
            for body in &bodies {
                black_box(extract(black_box(body)));
            }
        })
    });
    group.bench_function("osn_pass", |b| {
        b.iter(|| {
            for body in &bodies {
                black_box(extract_osn(black_box(body)));
            }
        })
    });
    group.bench_function("fields_pass", |b| {
        b.iter(|| {
            for body in &bodies {
                black_box(extract_fields(black_box(body)));
            }
        })
    });
    group.bench_function("credits_pass", |b| {
        b.iter(|| {
            for body in &bodies {
                black_box(extract_credits(black_box(body)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
