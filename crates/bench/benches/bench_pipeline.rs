//! End-to-end pipeline benchmark (paper Figure 1 / Table 4): collect,
//! classify, extract and de-duplicate a scaled two-period corpus, plus the
//! filter-era counterfactual ablation of the behavioural model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dox_bench::BenchFixture;
use dox_core::pipeline::Pipeline;
use dox_core::study::{Study, StudyConfig};
use dox_core::training::DoxClassifier;
use dox_obs::Level;
use dox_sites::collect::Collector;
use dox_synth::config::SynthConfig;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    dox_obs::global().events().set_echo(true);
    let fixture = BenchFixture::new();

    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for scale in [0.002, 0.01] {
        let cfg = SynthConfig::at_scale(scale);
        let docs = cfg.total_documents();
        group.throughput(Throughput::Elements(docs));
        group.bench_with_input(
            BenchmarkId::new("collect_classify_dedup", format!("scale{scale}")),
            &scale,
            |b, &scale| {
                b.iter(|| {
                    let mut gen = fixture.generator(scale);
                    let (texts, labels) = gen.training_sets();
                    let (clf, _) = DoxClassifier::train(&texts, &labels, fixture.seed);
                    let mut pipeline = Pipeline::new(clf);
                    let mut collector = Collector::new(fixture.seed);
                    for period in [1u8, 2] {
                        let _ = collector.collect_period(&mut gen, period, &mut |c| {
                            pipeline.process(&c, period);
                            std::ops::ControlFlow::Continue(())
                        });
                    }
                    black_box(pipeline.counters().clone())
                })
            },
        );
    }

    group.bench_function("full_study_scale0.005", |b| {
        b.iter(|| {
            black_box(
                Study::new(StudyConfig::at_scale(0.005))
                    .run()
                    .expect("study runs"),
            )
        })
    });
    group.finish();

    // One full study at a more substantial scale, with its funnel printed
    // (the Figure 1 / Table 4 shape check for `cargo bench` logs).
    let r = Study::new(StudyConfig::at_scale(0.01))
        .run()
        .expect("study runs");
    dox_obs::emit!(
        Level::Info,
        "bench.fig1",
        "funnel shape check",
        docs = r.pipeline.total,
        dox = r.pipeline.classified_dox,
        unique = r.pipeline.unique_doxes(),
        detection_tp = r.detection.0,
        detection_fp = r.detection.1,
    );
    dox_obs::emit!(
        Level::Info,
        "bench.t10",
        "behavioural-change shape check",
        control_any_change_pct = format!("{:.2}", r.control_row.frac_any_change() * 100.0),
        doxed_vs_control = format!("{:?}", r.doxed_vs_control),
    );
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
