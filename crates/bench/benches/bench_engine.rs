//! Streaming ingest engine throughput: the sharded `dox-engine` session at
//! several worker/shard topologies against the sequential reference
//! `Pipeline`, over one pre-collected two-period corpus.
//!
//! Besides the usual stdout report, the measured medians are recorded into
//! `BENCH_engine.json` at the workspace root so throughput is tracked
//! across commits. Numbers are honest wall-clock medians on whatever
//! machine runs the bench — on a single hardware thread the multi-worker
//! configurations mostly measure coordination overhead, not speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dox_bench::BenchFixture;
use dox_core::pipeline::Pipeline;
use dox_core::training::DoxClassifier;
use dox_engine::{DedupSpillConfig, DoxDetector, Engine, EngineFaults, SessionCheckpoint};
use dox_fault::{FaultPlanConfig, RetryPolicy};
use dox_obs::{Registry, TraceConfig, Tracer};
use dox_sites::collect::{CollectedDoc, Collector};
use dox_store::{Store, Table};
use serde::Deserialize;
use std::hint::black_box;
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

const SCALE: f64 = 0.01;
const TOPOLOGIES: [(usize, usize); 4] = [(1, 1), (1, 8), (2, 8), (4, 8)];
/// Topology used for the tracing-overhead and per-stage measurements.
const TRACE_TOPOLOGY: (usize, usize) = (4, 8);
/// In-memory dedup entries per shard before spilling to the store —
/// far below the corpus size, so every shard actually pages out.
const STORE_SPILL_CAP: usize = 4_096;
/// Documents between durable store checkpoints in the store-backed run.
const STORE_CHECKPOINT_EVERY: usize = 4_096;

struct EngineFixture {
    classifier: Arc<DoxClassifier>,
    docs: Vec<(u8, CollectedDoc)>,
    seed: u64,
}

impl EngineFixture {
    fn build() -> Self {
        let fixture = BenchFixture::new();
        let mut gen = fixture.generator(SCALE);
        let (texts, labels) = gen.training_sets();
        let (classifier, _) = DoxClassifier::train(&texts, &labels, fixture.seed);
        let mut docs = Vec::new();
        let mut collector = Collector::new(fixture.seed);
        for period in [1u8, 2] {
            let _ = collector.collect_period(&mut gen, period, &mut |c| {
                docs.push((period, c));
                ControlFlow::Continue(())
            });
        }
        Self {
            classifier: Arc::new(classifier),
            docs,
            seed: fixture.seed,
        }
    }

    fn run_engine(&self, workers: usize, shards: usize) -> usize {
        self.run_engine_inner(workers, shards, None)
    }

    /// The same ingest with the fault layer armed but injecting nothing:
    /// measures the pure bookkeeping overhead of consulting the plan on
    /// every chunk (the price every resilient run pays, faults or not).
    fn run_engine_healthy_plan(&self, workers: usize, shards: usize) -> usize {
        let faults = EngineFaults {
            plan: FaultPlanConfig::healthy(),
            policy: RetryPolicy::default(),
        };
        self.run_engine_inner(workers, shards, Some(faults))
    }

    fn run_engine_inner(
        &self,
        workers: usize,
        shards: usize,
        faults: Option<EngineFaults>,
    ) -> usize {
        let mut builder = Engine::builder().workers(workers).shards(shards);
        if let Some(faults) = faults {
            builder = builder.faults(faults);
        }
        let engine = builder.build().expect("valid engine config");
        let detector: Arc<dyn DoxDetector> = self.classifier.clone();
        let mut session = engine
            .session_builder()
            .detector(detector)
            .start()
            .expect("detector set");
        for (period, doc) in &self.docs {
            session.ingest(*period, doc.clone()).expect("engine up");
        }
        session
            .finish()
            .expect("engine finishes")
            .unique_doxes()
            .count()
    }

    /// The same ingest with a tracer armed: `sample_ppm = 0` measures the
    /// disabled fast path (one relaxed atomic load per stage), anything
    /// else the cost of actually recording hops for that share of docs.
    fn run_engine_traced(&self, workers: usize, shards: usize, sample_ppm: u32) -> usize {
        let engine = Engine::builder()
            .workers(workers)
            .shards(shards)
            .build()
            .expect("valid engine config");
        let detector: Arc<dyn DoxDetector> = self.classifier.clone();
        let tracer = if sample_ppm == 0 {
            Tracer::disabled()
        } else {
            Tracer::new(TraceConfig {
                seed: self.seed,
                sample_ppm,
                capacity: 4096,
            })
        };
        let registry = Registry::new();
        let mut session = engine
            .session_builder()
            .detector(detector)
            .registry(&registry)
            .tracer(&tracer)
            .start()
            .expect("detector set");
        for (period, doc) in &self.docs {
            session.ingest(*period, doc.clone()).expect("engine up");
        }
        session
            .finish()
            .expect("engine finishes")
            .unique_doxes()
            .count()
    }

    /// The same ingest with dedup shards spilling to the crash-safe
    /// segment store and a durable (quiesce + commit) checkpoint every
    /// [`STORE_CHECKPOINT_EVERY`] documents — the full price of
    /// store-backed durability. Leaves the populated store in `dir` so
    /// [`EngineFixture::store_resume_seconds`] can measure reopen cost.
    fn run_engine_store(&self, workers: usize, shards: usize, dir: &Path) -> usize {
        let _ = std::fs::remove_dir_all(dir);
        let registry = Registry::new();
        let store = Arc::new(Store::open(dir, &registry).expect("store opens"));
        let table: Table<String, String> = Table::new(Arc::clone(&store), "bench");
        let engine = Engine::builder()
            .workers(workers)
            .shards(shards)
            .build()
            .expect("valid engine config");
        let detector: Arc<dyn DoxDetector> = self.classifier.clone();
        let mut session = engine
            .session_builder()
            .detector(detector)
            .registry(&registry)
            .spill(DedupSpillConfig {
                store: Arc::clone(&store),
                cap_entries: STORE_SPILL_CAP,
            })
            .start()
            .expect("detector set");
        for (i, (period, doc)) in self.docs.iter().enumerate() {
            session.ingest(*period, doc.clone()).expect("engine up");
            if (i + 1) % STORE_CHECKPOINT_EVERY == 0 {
                let snapshot = session.checkpoint().expect("session quiesces");
                let json = serde_json::to_string(&snapshot).expect("checkpoint encodes");
                table
                    .put(&"checkpoint".to_string(), &json)
                    .expect("checkpoint stages");
                store.checkpoint().expect("store commits");
            }
        }
        session
            .finish()
            .expect("engine finishes")
            .unique_doxes()
            .count()
    }

    /// Fastest seconds to stand a session back up from the store left
    /// by [`EngineFixture::run_engine_store`]: open + recover the
    /// store, read the checkpoint, resume the engine session. This is
    /// the O(checkpoint) path a `--resume` run takes instead of
    /// re-ingesting the corpus.
    fn store_resume_seconds(
        &self,
        samples: usize,
        workers: usize,
        shards: usize,
        dir: &Path,
    ) -> f64 {
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                let registry = Registry::new();
                let store = Arc::new(Store::open(dir, &registry).expect("store reopens"));
                let table: Table<String, String> = Table::new(Arc::clone(&store), "bench");
                let json = table
                    .get(&"checkpoint".to_string())
                    .expect("checkpoint reads")
                    .expect("checkpoint exists");
                let value = serde_json::from_str(&json).expect("checkpoint parses");
                let checkpoint = SessionCheckpoint::from_value(&value).expect("checkpoint decodes");
                let engine = Engine::builder()
                    .workers(workers)
                    .shards(shards)
                    .build()
                    .expect("valid engine config");
                let detector: Arc<dyn DoxDetector> = self.classifier.clone();
                let session = engine
                    .session_builder()
                    .detector(detector)
                    .registry(&registry)
                    .spill(DedupSpillConfig {
                        store,
                        cap_entries: STORE_SPILL_CAP,
                    })
                    .resume_from(checkpoint)
                    .start()
                    .expect("session resumes");
                black_box(&session);
                drop(session);
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    }

    fn run_reference(&self) -> usize {
        let mut pipeline = Pipeline::new((*self.classifier).clone());
        for (period, doc) in &self.docs {
            pipeline.process(doc, *period);
        }
        pipeline.unique_doxes().count()
    }

    /// Median seconds per full-corpus pass over `samples` runs.
    fn time_median(&self, samples: usize, mut run: impl FnMut(&Self) -> usize) -> f64 {
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(run(self));
                start.elapsed().as_secs_f64()
            })
            .collect();
        times.sort_by(|a, b| a.total_cmp(b));
        times[times.len() / 2]
    }

    /// Fastest seconds per full-corpus pass over `samples` runs. The
    /// trace-overhead gate compares against a pinned baseline, so it
    /// wants the low-noise statistic, not the median.
    fn time_min(&self, samples: usize, mut run: impl FnMut(&Self) -> usize) -> f64 {
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                black_box(run(self));
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    }
}

/// One untimed instrumented pass: per-stage observation counts and
/// docs/s derived from the `pipeline.stage.*` span histograms.
fn per_stage_rows(fixture: &EngineFixture) -> String {
    let (workers, shards) = TRACE_TOPOLOGY;
    let engine = Engine::builder()
        .workers(workers)
        .shards(shards)
        .build()
        .expect("valid engine config");
    let detector: Arc<dyn DoxDetector> = fixture.classifier.clone();
    let registry = Registry::new();
    let mut session = engine
        .session_builder()
        .detector(detector)
        .registry(&registry)
        .start()
        .expect("detector set");
    for (period, doc) in &fixture.docs {
        session.ingest(*period, doc.clone()).expect("engine up");
    }
    let _ = session.finish().expect("engine finishes");
    let snapshot = registry.snapshot();
    let mut rows = Vec::new();
    for (name, h) in &snapshot.spans {
        let Some(stage) = name.strip_prefix("pipeline.stage.") else {
            continue;
        };
        if h.count == 0 || h.sum == 0 {
            continue;
        }
        rows.push(format!(
            "    {{ \"stage\": \"{stage}\", \"count\": {}, \"total_ns\": {}, \
             \"docs_per_sec\": {:.0} }}",
            h.count,
            h.sum,
            h.count as f64 / (h.sum as f64 / 1e9)
        ));
    }
    rows.join(",\n")
}

/// Record the medians where commit history can see them.
fn write_json(fixture: &EngineFixture, samples: usize) {
    let samples = std::env::var("DOX_BENCH_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or(samples);
    let docs = fixture.docs.len();
    let reference = fixture.time_median(samples, EngineFixture::run_reference);
    let mut entries = Vec::new();
    entries.push(format!(
        "    {{ \"config\": \"reference\", \"seconds\": {reference:.6}, \"docs_per_sec\": {:.0} }}",
        docs as f64 / reference
    ));
    for (workers, shards) in TOPOLOGIES {
        let t = fixture.time_median(samples, |f| f.run_engine(workers, shards));
        entries.push(format!(
            "    {{ \"config\": \"engine w{workers} s{shards}\", \"workers\": {workers}, \
             \"shards\": {shards}, \"seconds\": {t:.6}, \"docs_per_sec\": {:.0}, \
             \"speedup_vs_reference\": {:.3} }}",
            docs as f64 / t,
            reference / t
        ));
        // The fault layer armed with an all-healthy plan: the overhead of
        // resilience when nothing goes wrong (contract: within a few
        // percent of the plain engine).
        let tf = fixture.time_median(samples, |f| f.run_engine_healthy_plan(workers, shards));
        entries.push(format!(
            "    {{ \"config\": \"engine w{workers} s{shards} healthy-plan\", \
             \"workers\": {workers}, \"shards\": {shards}, \"seconds\": {tf:.6}, \
             \"docs_per_sec\": {:.0}, \"speedup_vs_reference\": {:.3}, \
             \"overhead_vs_no_plan\": {:.3} }}",
            docs as f64 / tf,
            reference / tf,
            tf / t
        ));
    }
    // Tracing overhead at the reference topology: disabled must price out
    // at zero (scripts/trace_overhead_gate.sh holds it within 2% of the
    // pre-tracing baseline) and 1% sampling at low single digits. Timed
    // with `time_min` — see its doc comment.
    let (tw, ts) = TRACE_TOPOLOGY;
    let plain = fixture.time_min(samples, |f| f.run_engine(tw, ts));
    for (label, ppm) in [("trace-off", 0u32), ("trace-1pct", 10_000)] {
        let t = fixture.time_min(samples, |f| f.run_engine_traced(tw, ts, ppm));
        entries.push(format!(
            "    {{ \"config\": \"engine w{tw} s{ts} {label}\", \"workers\": {tw}, \
             \"shards\": {ts}, \"timer\": \"min\", \"seconds\": {t:.6}, \
             \"docs_per_sec\": {:.0}, \"overhead_vs_plain\": {:.3} }}",
            docs as f64 / t,
            t / plain
        ));
    }
    // Store-backed dedup + durable checkpoints at the reference
    // topology: scripts/store_overhead_gate.sh holds this within 10%
    // of the plain engine (best-of-N, like the trace gate), and the
    // resume row records the O(checkpoint) restart the store buys.
    let store_dir = std::env::temp_dir().join(format!("dox_bench_store_{}", std::process::id()));
    let t_store = fixture.time_min(samples, |f| f.run_engine_store(tw, ts, &store_dir));
    entries.push(format!(
        "    {{ \"config\": \"engine w{tw} s{ts} store-dedup\", \"workers\": {tw}, \
         \"shards\": {ts}, \"timer\": \"min\", \"seconds\": {t_store:.6}, \
         \"docs_per_sec\": {:.0}, \"overhead_vs_plain\": {:.3} }}",
        docs as f64 / t_store,
        t_store / plain
    ));
    let t_resume = fixture.store_resume_seconds(samples, tw, ts, &store_dir);
    entries.push(format!(
        "    {{ \"config\": \"engine w{tw} s{ts} store-resume\", \"workers\": {tw}, \
         \"shards\": {ts}, \"timer\": \"min\", \"seconds\": {t_resume:.6}, \
         \"resume_vs_full_run\": {:.3} }}",
        t_resume / t_store
    ));
    let _ = std::fs::remove_dir_all(&store_dir);
    let json = format!(
        "{{\n  \"bench\": \"engine_ingest\",\n  \"scale\": {SCALE},\n  \"documents\": {docs},\n  \
         \"hardware_threads\": {},\n  \"samples\": {samples},\n  \"per_stage\": [\n{}\n  ],\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        per_stage_rows(fixture),
        entries.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}

fn bench_engine(c: &mut Criterion) {
    let fixture = EngineFixture::build();
    let docs = fixture.docs.len() as u64;

    // The engine must agree with the reference before its speed means
    // anything — with and without the fault layer armed.
    let expect = fixture.run_reference();
    for (workers, shards) in TOPOLOGIES {
        assert_eq!(
            fixture.run_engine(workers, shards),
            expect,
            "engine w{workers} s{shards} disagrees with the reference pipeline"
        );
        assert_eq!(
            fixture.run_engine_healthy_plan(workers, shards),
            expect,
            "engine w{workers} s{shards} under a healthy fault plan \
             disagrees with the reference pipeline"
        );
    }
    assert_eq!(
        fixture.run_engine_traced(TRACE_TOPOLOGY.0, TRACE_TOPOLOGY.1, 1_000_000),
        expect,
        "engine tracing every document disagrees with the reference pipeline"
    );
    let store_dir =
        std::env::temp_dir().join(format!("dox_bench_store_{}_verify", std::process::id()));
    assert_eq!(
        fixture.run_engine_store(TRACE_TOPOLOGY.0, TRACE_TOPOLOGY.1, &store_dir),
        expect,
        "engine with store-backed dedup disagrees with the reference pipeline"
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    group.throughput(Throughput::Elements(docs));
    group.bench_function("reference_pipeline", |b| {
        b.iter(|| black_box(fixture.run_reference()))
    });
    for (workers, shards) in TOPOLOGIES {
        group.bench_with_input(
            BenchmarkId::new("ingest", format!("w{workers}_s{shards}")),
            &(workers, shards),
            |b, &(workers, shards)| b.iter(|| black_box(fixture.run_engine(workers, shards))),
        );
        group.bench_with_input(
            BenchmarkId::new("ingest_healthy_plan", format!("w{workers}_s{shards}")),
            &(workers, shards),
            |b, &(workers, shards)| {
                b.iter(|| black_box(fixture.run_engine_healthy_plan(workers, shards)))
            },
        );
    }
    for (label, ppm) in [("off", 0u32), ("1pct", 10_000)] {
        group.bench_with_input(BenchmarkId::new("ingest_traced", label), &ppm, |b, &ppm| {
            b.iter(|| black_box(fixture.run_engine_traced(TRACE_TOPOLOGY.0, TRACE_TOPOLOGY.1, ppm)))
        });
    }
    group.finish();

    let test_mode = std::env::args().any(|a| a == "--test");
    write_json(&fixture, if test_mode { 1 } else { 5 });
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
