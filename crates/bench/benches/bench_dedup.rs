//! De-duplication benchmarks (paper §3.1.4): the streaming dedup over a
//! realistic dox stream with reposts, plus the SimHash-fuzzy ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use dox_bench::BenchFixture;
use dox_core::dedup::Deduplicator;
use dox_extract::record::{extract, ExtractedDox};
use dox_obs::Level;
use std::hint::black_box;

/// A stream of doxes in which every third document re-posts an earlier one
/// (half of those byte-exact, half with a cosmetic suffix).
fn duplicate_stream(bodies: &[String]) -> Vec<(String, ExtractedDox)> {
    let mut out: Vec<(String, ExtractedDox)> = Vec::new();
    for (i, body) in bodies.iter().enumerate() {
        let text = if i % 3 == 2 && i >= 3 {
            let orig = &out[i - 3].0;
            if i % 2 == 0 {
                orig.clone()
            } else {
                format!("{orig}\nUPDATE: reposted")
            }
        } else {
            body.clone()
        };
        let rec = extract(&text);
        out.push((text, rec));
    }
    out
}

fn bench_dedup(c: &mut Criterion) {
    dox_obs::global().events().set_echo(true);
    let fixture = BenchFixture::new();
    let stream = duplicate_stream(&fixture.dox_bodies(300));

    let mut group = c.benchmark_group("dedup");
    group.bench_function("paper_two_pass_300_docs", |b| {
        b.iter(|| {
            let mut d = Deduplicator::new();
            for (i, (text, rec)) in stream.iter().enumerate() {
                black_box(d.check(i as u64, text, rec));
            }
            black_box(d.counts)
        })
    });
    group.bench_function("with_fuzzy_simhash_300_docs", |b| {
        b.iter(|| {
            let mut d = Deduplicator::with_fuzzy(3);
            for (i, (text, rec)) in stream.iter().enumerate() {
                black_box(d.check(i as u64, text, rec));
            }
            black_box(d.counts)
        })
    });
    group.finish();

    // Report the funnel split once (feeds the Figure 1 notes).
    let mut d = Deduplicator::new();
    for (i, (text, rec)) in stream.iter().enumerate() {
        d.check(i as u64, text, rec);
    }
    dox_obs::emit!(
        Level::Info,
        "bench.fig1.dedup",
        "funnel split",
        total = d.counts.total,
        exact = d.counts.exact,
        account_set = d.counts.account_set,
        unique = d.counts.unique(),
    );
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
