//! HTML-to-text conversion throughput (the §3.1.2 pre-processing step for
//! the ~285 k chan documents).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dox_textkit::html::html_to_text;
use std::hint::black_box;

fn chan_like_posts(n: usize) -> Vec<String> {
    (0..n)
        .map(|i| {
            format!(
                "<a href=\"#p{0}\" class=\"quotelink\">&gt;&gt;{0}</a><br>\
                 post number {i} with some text<br>\
                 <span class=\"quote\">&gt;greentext line {i}</span><br>\
                 Name: Person {i}<br>Phone: (312) 555-01{1:02}<br>\
                 <ul><li>item one</li><li>item two</li></ul>\
                 trailing words &amp; entities &#039;quoted&#039;",
                10_000_000 + i,
                i % 100
            )
        })
        .collect()
}

fn bench_html(c: &mut Criterion) {
    let posts = chan_like_posts(500);
    let total: u64 = posts.iter().map(|p| p.len() as u64).sum();
    let mut group = c.benchmark_group("html2text");
    group.throughput(Throughput::Bytes(total));
    group.bench_function("chan_posts_500", |b| {
        b.iter(|| {
            for p in &posts {
                black_box(html_to_text(black_box(p)));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_html);
criterion_main!(benches);
