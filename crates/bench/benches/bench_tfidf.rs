//! Vectorization throughput: the fitted TF-IDF representation (the paper's
//! choice) against the stateless hashing vectorizer (ablation).
//!
//! Feeds into Table 1: the vectorizer dominates per-document
//! classification cost across the 1.74 M-document stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dox_bench::BenchFixture;
use dox_textkit::hashing::HashingVectorizer;
use dox_textkit::tfidf::TfidfVectorizer;
use std::hint::black_box;

fn bench_vectorizers(c: &mut Criterion) {
    let fixture = BenchFixture::new();
    let (texts, _) = fixture.training_sets(0.02);
    let docs: Vec<&str> = texts.iter().map(String::as_str).take(500).collect();
    let total_bytes: u64 = docs.iter().map(|d| d.len() as u64).sum();

    let mut group = c.benchmark_group("vectorize");
    group.throughput(Throughput::Bytes(total_bytes));

    let mut tfidf = TfidfVectorizer::default();
    tfidf.fit(&docs);
    group.bench_function(BenchmarkId::new("tfidf_transform", docs.len()), |b| {
        b.iter(|| {
            for d in &docs {
                black_box(tfidf.transform(black_box(d)));
            }
        })
    });

    let hashing = HashingVectorizer::with_defaults();
    group.bench_function(BenchmarkId::new("hashing_transform", docs.len()), |b| {
        b.iter(|| {
            for d in &docs {
                black_box(hashing.transform(black_box(d)));
            }
        })
    });

    group.bench_function("tfidf_fit_500_docs", |b| {
        b.iter(|| {
            let mut v = TfidfVectorizer::default();
            v.fit(black_box(&docs));
            black_box(v);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_vectorizers);
criterion_main!(benches);
