//! The service route table and shared daemon state.
//!
//! Endpoints (all JSON):
//!
//! | Method | Path                | Purpose |
//! |--------|---------------------|---------|
//! | POST   | `/v1/tenants`       | Create a tenant (trains its detector) |
//! | GET    | `/v1/tenants`       | List tenants with ingest/alert counts |
//! | DELETE | `/v1/tenants/:id`   | Remove a tenant (drops its session) |
//! | POST   | `/v1/ingest`        | Batch-ingest documents, get per-doc verdicts |
//! | GET    | `/v1/report`        | Full `ExperimentReport` for a tenant |
//! | GET    | `/v1/victims/:id`   | Victim lookup by account-set fingerprint |
//! | GET    | `/v1/accounts/:id`  | Account lookup by `network:handle` fingerprint |
//! | GET    | `/v1/alerts`        | Cursor-paged stream of committed doxes |
//! | GET    | `/healthz`          | Liveness (always `200` while the process serves) |
//! | GET    | `/readyz`           | Readiness (`503` the instant a drain begins) |
//! | GET    | `/metrics`          | Telemetry snapshot + rolling rates |
//! | GET    | `/traces`           | Recent causal traces |
//!
//! Requests that name no tenant (`?tenant=` / `"tenant"` field) are
//! routed to the sole tenant when exactly one exists, `400` otherwise.
//! Wrong-method hits on known paths get `405` with an `Allow` header,
//! oversized bodies `413`, ingests over a tenant's quota `429` +
//! `Retry-After`, and mutating requests during a drain `503`. Mutating
//! handlers pass through [`ServeState::admit_mutation`], whose guard
//! [`ServeState::begin_drain`] waits on — an admitted ingest always
//! reaches the checkpoint that follows a drain (no torn drain).

use crate::quota::QuotaState;
use crate::tenant::{Tenant, TenantSpec};
use dox_obs::http::{Request, Response, Router};
use dox_obs::{Registry, Tracer};
use dox_sites::collect::CollectedDoc;
use dox_store::{Store, Table as StoreTable};
use serde::value::{Number, Value};
use serde::Deserialize;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Alert records returned per `GET /v1/alerts` page by default.
const DEFAULT_ALERT_PAGE: usize = 256;

/// Store table holding one JSON checkpoint per tenant, keyed by id.
const TENANT_TABLE: &str = "serve.tenants";

/// Shared daemon state: the tenant map and the drain flag.
///
/// Each tenant sits behind its own mutex so ingests for different
/// tenants proceed in parallel; the outer map lock is held only for
/// lookup and insert/remove.
#[derive(Debug)]
pub struct ServeState {
    registry: Registry,
    tenants: Mutex<BTreeMap<String, Arc<Mutex<Tenant>>>>,
    /// Live quota enforcement, keyed by tenant id; only tenants whose
    /// spec actually limits an axis have an entry.
    quotas: Mutex<BTreeMap<String, Arc<QuotaState>>>,
    draining: AtomicBool,
    /// Mutating requests currently past admission ([`MutationGuard`]s
    /// alive). [`ServeState::begin_drain`] waits for this to hit zero
    /// so a drain checkpoint can never tear an admitted ingest.
    mutations: Mutex<u64>,
    quiesced: Condvar,
}

impl ServeState {
    /// Fresh state recording engine metrics into `registry`.
    pub fn new(registry: Registry) -> Self {
        Self {
            registry,
            tenants: Mutex::new(BTreeMap::new()),
            quotas: Mutex::new(BTreeMap::new()),
            draining: AtomicBool::new(false),
            mutations: Mutex::new(0),
            quiesced: Condvar::new(),
        }
    }

    /// The registry tenants record into (and `/metrics` serves).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    fn map(&self) -> MutexGuard<'_, BTreeMap<String, Arc<Mutex<Tenant>>>> {
        self.tenants.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Look up a tenant by id.
    pub fn get(&self, id: &str) -> Option<Arc<Mutex<Tenant>>> {
        self.map().get(id).cloned()
    }

    /// Insert a started tenant; `false` (and no insert) when the id is
    /// already taken. A limiting quota in the spec gets its live
    /// [`QuotaState`] here, so create and restore share one path.
    pub fn insert(&self, tenant: Tenant) -> bool {
        let id = tenant.spec().id.clone();
        let quota = tenant
            .spec()
            .quota
            .filter(crate::quota::QuotaSpec::is_limiting);
        let mut map = self.map();
        if map.contains_key(&id) {
            return false;
        }
        if let Some(spec) = quota {
            self.quotas
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .insert(
                    id.clone(),
                    Arc::new(QuotaState::new(spec, &id, &self.registry)),
                );
        }
        map.insert(id, Arc::new(Mutex::new(tenant)));
        true
    }

    /// Remove a tenant, dropping its resident session and quota state.
    pub fn remove(&self, id: &str) -> bool {
        self.quotas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(id);
        self.map().remove(id).is_some()
    }

    /// The live quota state for a tenant, when its spec limits one.
    pub fn quota(&self, id: &str) -> Option<Arc<QuotaState>> {
        self.quotas
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(id)
            .cloned()
    }

    /// Current tenant ids, sorted.
    pub fn tenant_ids(&self) -> Vec<String> {
        self.map().keys().cloned().collect()
    }

    /// Enter drain mode and quiesce: mutating endpoints answer `503`
    /// (and `/readyz` flips unready) the moment the flag lands, then
    /// this blocks until every already-admitted mutation has finished.
    /// Admission and the in-flight count share one mutex, so a request
    /// either completes before this returns or never got in — the
    /// checkpoint that follows can't tear an admitted ingest.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let mut inflight = self
            .mutations
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while *inflight > 0 {
            // Timed wait so a lost notify can only delay, never hang,
            // the drain.
            inflight = self
                .quiesced
                .wait_timeout(inflight, Duration::from_millis(50))
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Whether the daemon is draining.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Admit one mutating request, or refuse because a drain has begun.
    /// The guard marks the mutation in flight until dropped;
    /// [`ServeState::begin_drain`] waits for all of them.
    pub fn admit_mutation(&self) -> Option<MutationGuard<'_>> {
        let mut inflight = self
            .mutations
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if self.draining() {
            return None;
        }
        *inflight += 1;
        Some(MutationGuard { state: self })
    }

    /// Quiesce every tenant and commit all checkpoints into the segment
    /// store at `dir/store` with a single manifest swap — the drain is
    /// all-or-nothing, and a restore after a mid-drain crash sees the
    /// previous complete tenant set. Returns the drained tenant ids.
    /// Legacy per-tenant `tenant_<id>.json` files under `dir` are
    /// removed once the store commit lands (the layout they fed is
    /// migrated by [`ServeState::restore_checkpoints`]).
    ///
    /// # Errors
    /// A message naming the first tenant that failed to quiesce, or the
    /// store operation that failed.
    pub fn drain_checkpoints(&self, dir: &Path) -> Result<Vec<String>, String> {
        self.begin_drain();
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("checkpoint dir {}: {e}", dir.display()))?;
        let store_dir = dir.join("store");
        let store = Arc::new(
            Store::open(&store_dir, &self.registry)
                .map_err(|e| format!("open {}: {e}", store_dir.display()))?,
        );
        let table: StoreTable<String, String> = StoreTable::new(Arc::clone(&store), TENANT_TABLE);
        // Tenants removed since the last drain must not resurrect on
        // the next restore: clear the table before staging the live set.
        for (id, _) in table
            .scan()
            .map_err(|e| format!("scan {}: {e}", store_dir.display()))?
        {
            table
                .delete(&id)
                .map_err(|e| format!("clear tenant '{id}': {e}"))?;
        }
        let tenants: Vec<Arc<Mutex<Tenant>>> = self.map().values().cloned().collect();
        let mut drained = Vec::new();
        for tenant in tenants {
            // Serialize under the tenant lock, but stage with it
            // dropped: staging only appends to the store's in-memory
            // buffer, so no tenant waits on another's quiesce.
            let (id, payload) = {
                let mut tenant = tenant.lock().unwrap_or_else(PoisonError::into_inner);
                let id = tenant.spec().id.clone();
                let value = tenant
                    .checkpoint_value()
                    .map_err(|e| format!("tenant '{id}': {e}"))?;
                let payload =
                    serde_json::to_string(&value).map_err(|e| format!("tenant '{id}': {e}"))?;
                (id, payload)
            };
            table
                .put(&id, &payload)
                .map_err(|e| format!("stage tenant '{id}': {e}"))?;
            drained.push(id);
        }
        store
            .checkpoint()
            .map_err(|e| format!("commit {}: {e}", store_dir.display()))?;
        remove_legacy_checkpoints(dir);
        Ok(drained)
    }

    /// Restore every tenant checkpoint under `dir`: the segment store
    /// at `dir/store` when one exists, plus any legacy per-tenant
    /// `tenant_*.json` files whose id the store does not already hold
    /// (they migrate into the store on the next drain). Returns the
    /// restored tenant ids.
    ///
    /// # Errors
    /// A message naming the first unreadable, malformed or mismatched
    /// checkpoint.
    pub fn restore_checkpoints(&self, dir: &Path) -> Result<Vec<String>, String> {
        let mut restored = Vec::new();
        let store_dir = dir.join("store");
        if store_dir.join(dox_store::MANIFEST_NAME).exists() {
            let store = Arc::new(
                Store::open(&store_dir, &self.registry)
                    .map_err(|e| format!("open {}: {e}", store_dir.display()))?,
            );
            let table: StoreTable<String, String> = StoreTable::new(store, TENANT_TABLE);
            for (id, payload) in table
                .scan()
                .map_err(|e| format!("scan {}: {e}", store_dir.display()))?
            {
                let value: Value =
                    serde_json::from_str(&payload).map_err(|e| format!("tenant '{id}': {e}"))?;
                let tenant = Tenant::from_checkpoint_value(&value, &self.registry)
                    .map_err(|e| format!("tenant '{id}': {e}"))?;
                if !self.insert(tenant) {
                    return Err(format!("store tenant '{id}': duplicate"));
                }
                restored.push(id);
            }
        }
        let entries =
            std::fs::read_dir(dir).map_err(|e| format!("checkpoint dir {}: {e}", dir.display()))?;
        let mut paths: Vec<PathBuf> = entries
            .filter_map(std::result::Result::ok)
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("tenant_") && n.ends_with(".json"))
            })
            .collect();
        paths.sort();
        for path in paths {
            let raw =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let value: Value =
                serde_json::from_str(&raw).map_err(|e| format!("{}: {e}", path.display()))?;
            // The store is the newer layout; a legacy file whose id it
            // already holds is a leftover from before the migration.
            let legacy_id = value
                .get("spec")
                .and_then(|s| s.get("id"))
                .and_then(Value::as_str);
            if legacy_id.is_some_and(|id| self.get(id).is_some()) {
                continue;
            }
            let tenant = Tenant::from_checkpoint_value(&value, &self.registry)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let id = tenant.spec().id.clone();
            if !self.insert(tenant) {
                return Err(format!("{}: duplicate tenant '{id}'", path.display()));
            }
            restored.push(id);
        }
        Ok(restored)
    }

    /// Resolve the tenant a request addresses: the explicit name when
    /// given, otherwise the sole resident tenant. Returns the id with
    /// the handle so callers can reach per-tenant state (quotas,
    /// metrics) without taking the tenant lock.
    fn resolve(&self, explicit: Option<&str>) -> Result<(String, Arc<Mutex<Tenant>>), Response> {
        if let Some(id) = explicit {
            return self
                .get(id)
                .map(|tenant| (id.to_string(), tenant))
                .ok_or_else(|| Response::error(404, &format!("unknown tenant '{id}'")));
        }
        let map = self.map();
        let mut tenants = map.iter();
        match (tenants.next(), tenants.next()) {
            (None, _) => Err(Response::error(404, "no tenants resident")),
            (Some((id, sole)), None) => Ok((id.clone(), Arc::clone(sole))),
            _ => Err(Response::error(
                400,
                "multiple tenants resident; name one with ?tenant=<id>",
            )),
        }
    }
}

/// One admitted mutating request; dropping it lets a waiting drain
/// proceed once the count returns to zero.
#[derive(Debug)]
pub struct MutationGuard<'a> {
    state: &'a ServeState,
}

impl Drop for MutationGuard<'_> {
    fn drop(&mut self) {
        let mut inflight = self
            .state
            .mutations
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        *inflight = inflight.saturating_sub(1);
        if *inflight == 0 {
            self.state.quiesced.notify_all();
        }
    }
}

/// Best-effort removal of pre-store `tenant_<id>.json` checkpoints once
/// a store commit owns the tenant set. A leftover only shadows ids the
/// store already restores, so failures here are non-fatal.
fn remove_legacy_checkpoints(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for path in entries
        .filter_map(std::result::Result::ok)
        .map(|e| e.path())
    {
        let legacy = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("tenant_") && n.ends_with(".json"));
        if legacy {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Lock a tenant for the duration of one handler.
fn lock(tenant: &Arc<Mutex<Tenant>>) -> MutexGuard<'_, Tenant> {
    tenant.lock().unwrap_or_else(PoisonError::into_inner)
}

fn parse_json(bytes: &[u8]) -> Result<Value, Response> {
    let text = std::str::from_utf8(bytes)
        .map_err(|_| Response::error(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|_| Response::error(400, "request body is not valid JSON"))
}

fn parse_fingerprint(req: &Request) -> Result<u32, Response> {
    req.param("id")
        .and_then(|raw| raw.parse::<u32>().ok())
        .ok_or_else(|| Response::error(400, "id must be a decimal u32 fingerprint"))
}

/// Build the full service route table, with the telemetry routes
/// (`/metrics`, `/traces`) mounted on the same port.
pub fn router(state: Arc<ServeState>, tracer: &Tracer) -> Router {
    let telemetry = dox_obs::telemetry::router(state.registry().clone(), tracer.clone());

    let create_state = Arc::clone(&state);
    let list_state = Arc::clone(&state);
    let delete_state = Arc::clone(&state);
    let ingest_state = Arc::clone(&state);
    let report_state = Arc::clone(&state);
    let victim_state = Arc::clone(&state);
    let account_state = Arc::clone(&state);
    let alerts_state = Arc::clone(&state);
    let ready_state = Arc::clone(&state);

    Router::new()
        .route("GET", "/healthz", |_req| {
            // Liveness: the process is up and serving; never gated on
            // drain so an orchestrator won't kill a draining daemon.
            Response::ok("{\"status\":\"ok\"}")
        })
        .route("GET", "/readyz", move |_req| {
            // Readiness: flips unready the same instant mutating routes
            // start answering 503 (both read the drain flag), so a load
            // balancer stops routing before clients see the refusals.
            if ready_state.draining() {
                Response::error(503, "draining")
            } else {
                Response::ok("{\"status\":\"ready\"}")
            }
        })
        .route("POST", "/v1/tenants", move |req: &Request| {
            let Some(_admitted) = create_state.admit_mutation() else {
                return Response::error(503, "draining");
            };
            let value = match parse_json(&req.body) {
                Ok(v) => v,
                Err(response) => return response,
            };
            let Some(spec) = TenantSpec::from_value(&value) else {
                return Response::error(
                    400,
                    "tenant spec needs id (alphanumeric/-/_), seed (u64) and scale (0,1]",
                );
            };
            let id = spec.id.clone();
            if create_state.get(&id).is_some() {
                // dox-lint:allow(pii-taint) id is validated alphanumeric/-/_ by from_value
                return Response::error(409, &format!("tenant '{id}' already exists"));
            }
            let fingerprint = spec.fingerprint();
            let tenant = match Tenant::start(spec, create_state.registry()) {
                Ok(t) => t,
                // dox-lint:allow(pii-taint) boot errors are engine/training-structural, never doc content
                Err(e) => return Response::error(400, &e.to_string()),
            };
            if !create_state.insert(tenant) {
                // dox-lint:allow(pii-taint) id is validated alphanumeric/-/_ by from_value
                return Response::error(409, &format!("tenant '{id}' already exists"));
            }
            // dox-lint:allow(pii-taint) payload is the validated id plus a numeric fingerprint
            Response::json(
                201,
                serde_json::to_string(&Value::Object(vec![
                    ("id".to_string(), Value::String(id)),
                    (
                        "fingerprint".to_string(),
                        Value::Number(Number::U64(u64::from(fingerprint))),
                    ),
                ]))
                .unwrap_or_else(|_| "{}".to_string()),
            )
        })
        .route("GET", "/v1/tenants", move |_req| {
            let summaries: Vec<Value> = list_state
                .tenant_ids()
                .iter()
                .filter_map(|id| list_state.get(id))
                .map(|t| lock(&t).summary_value())
                .collect();
            Response::ok(
                serde_json::to_string(&Value::Object(vec![(
                    "tenants".to_string(),
                    Value::Array(summaries),
                )]))
                .unwrap_or_else(|_| "{}".to_string()),
            )
        })
        .route("DELETE", "/v1/tenants/:id", move |req: &Request| {
            let Some(_admitted) = delete_state.admit_mutation() else {
                return Response::error(503, "draining");
            };
            let id = req.param("id").unwrap_or_default();
            if delete_state.remove(id) {
                Response::ok(format!("{{\"removed\":\"{id}\"}}"))
            } else {
                Response::error(404, &format!("unknown tenant '{id}'"))
            }
        })
        .route("POST", "/v1/ingest", move |req: &Request| {
            // Decision ladder (DESIGN.md §13): drain admission first,
            // then parse, then the tenant's quota, then the engine.
            let Some(_admitted) = ingest_state.admit_mutation() else {
                return Response::error(503, "draining");
            };
            let value = match parse_json(&req.body) {
                Ok(v) => v,
                Err(response) => return response,
            };
            let explicit = value
                .get("tenant")
                .and_then(Value::as_str)
                .or_else(|| req.query_param("tenant"));
            let (tenant_id, tenant) = match ingest_state.resolve(explicit) {
                Ok(t) => t,
                Err(response) => return response,
            };
            let Some(period) = value
                .get("period")
                .and_then(Value::as_u64)
                .and_then(|p| u8::try_from(p).ok())
            else {
                return Response::error(400, "period must be 1 or 2");
            };
            let Some(raw_docs) = value.get("docs").and_then(Value::as_array) else {
                return Response::error(400, "docs must be an array of collected documents");
            };
            // Quota check before the (expensive) per-doc parse: the doc
            // count and body size are already known, and a refused
            // request must cost near-nothing.
            let _quota_admission = match ingest_state.quota(&tenant_id) {
                None => None,
                Some(quota) => {
                    match QuotaState::admit(&quota, raw_docs.len() as u64, req.body.len() as u64) {
                        Ok(admission) => Some(admission),
                        Err(retry_after) => {
                            // dox-lint:allow(pii-taint) refusal names only the validated tenant id, never request content
                            return Response::error(
                                429,
                                &format!("tenant '{tenant_id}' over ingest quota"),
                            )
                            .retry_after(retry_after);
                        }
                    }
                }
            };
            let mut docs = Vec::with_capacity(raw_docs.len());
            for (i, raw) in raw_docs.iter().enumerate() {
                match CollectedDoc::from_value(raw) {
                    Some(doc) => docs.push(doc),
                    None => {
                        return Response::error(400, &format!("docs[{i}] is malformed"));
                    }
                }
            }
            let outcome = lock(&tenant).ingest_batch(period, docs);
            match outcome {
                // dox-lint:allow(pii-taint) IngestOutcome is counts, ids and static verdict strings
                Ok(outcome) => Response::ok(
                    serde_json::to_string(&outcome.to_value()).unwrap_or_else(|_| "{}".to_string()),
                ),
                // dox-lint:allow(pii-taint) ingest errors are engine-structural, never doc content
                Err(e) => Response::error(400, &e.to_string()),
            }
        })
        .route("GET", "/v1/report", move |req: &Request| {
            let (_, tenant) = match report_state.resolve(req.query_param("tenant")) {
                Ok(t) => t,
                Err(response) => return response,
            };
            let report = lock(&tenant).report_json();
            match report {
                Ok(payload) => Response::ok(payload),
                Err(e) => Response::error(500, &e.to_string()),
            }
        })
        .route("GET", "/v1/victims/:id", move |req: &Request| {
            let fp = match parse_fingerprint(req) {
                Ok(fp) => fp,
                Err(response) => return response,
            };
            let (_, tenant) = match victim_state.resolve(req.query_param("tenant")) {
                Ok(t) => t,
                Err(response) => return response,
            };
            let found = lock(&tenant).victim_value(fp);
            match found {
                Some(value) => {
                    Response::ok(serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string()))
                }
                None => Response::error(404, "no victim with that fingerprint"),
            }
        })
        .route("GET", "/v1/accounts/:id", move |req: &Request| {
            let fp = match parse_fingerprint(req) {
                Ok(fp) => fp,
                Err(response) => return response,
            };
            let (_, tenant) = match account_state.resolve(req.query_param("tenant")) {
                Ok(t) => t,
                Err(response) => return response,
            };
            let found = lock(&tenant).account_value(fp);
            match found {
                Some(value) => {
                    Response::ok(serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string()))
                }
                None => Response::error(404, "no account with that fingerprint"),
            }
        })
        .route("GET", "/v1/alerts", move |req: &Request| {
            let (_, tenant) = match alerts_state.resolve(req.query_param("tenant")) {
                Ok(t) => t,
                Err(response) => return response,
            };
            let cursor = match req.query_param("cursor") {
                None => 0,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(c) => c,
                    Err(_) => return Response::error(400, "cursor must be a decimal offset"),
                },
            };
            let limit = req
                .query_param("limit")
                .and_then(|raw| raw.parse::<usize>().ok())
                .unwrap_or(DEFAULT_ALERT_PAGE)
                .clamp(1, 4096);
            let (next, page) = lock(&tenant).alerts_page(cursor, limit);
            Response::ok(
                serde_json::to_string(&Value::Object(vec![
                    (
                        "cursor".to_string(),
                        Value::Number(Number::U64(next as u64)),
                    ),
                    ("alerts".to_string(), Value::Array(page)),
                ]))
                .unwrap_or_else(|_| "{}".to_string()),
            )
        })
        .merge(telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_picks_the_sole_tenant_and_rejects_ambiguity() {
        let state = ServeState::new(Registry::new());
        assert!(state.resolve(None).is_err(), "no tenants -> 404");
        assert!(
            state.resolve(Some("ghost")).is_err(),
            "unknown tenant -> 404"
        );
    }

    #[test]
    fn drain_flag_flips_once() {
        let state = ServeState::new(Registry::new());
        assert!(!state.draining());
        state.begin_drain();
        assert!(state.draining());
    }

    fn spec(id: &str) -> TenantSpec {
        TenantSpec {
            id: id.to_string(),
            seed: 11,
            scale: 0.005,
            workers: 2,
            shards: 4,
            quota: None,
        }
    }

    #[test]
    fn admit_mutation_refuses_after_drain_and_drain_waits_for_guards() {
        let state = Arc::new(ServeState::new(Registry::new()));
        let guard = state.admit_mutation().expect("admitted before drain");
        // A drain started while the mutation is in flight must block
        // until the guard drops.
        let drainer = {
            let state = Arc::clone(&state);
            std::thread::spawn(move || state.begin_drain())
        };
        std::thread::sleep(Duration::from_millis(50));
        assert!(!drainer.is_finished(), "drain waits for in-flight guard");
        assert!(
            state.admit_mutation().is_none(),
            "new mutations refused the moment the drain flag lands"
        );
        drop(guard);
        drainer.join().expect("drain completes");
        assert!(state.draining());
    }

    #[test]
    fn drain_and_restore_round_trip_through_the_store() {
        let dir = std::env::temp_dir().join(format!("dox_serve_{}_drain", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let registry = Registry::new();
        let state = ServeState::new(registry.clone());
        let tenant = Tenant::start(spec("alpha"), &registry).expect("tenant starts");
        let ingested = tenant.docs_ingested();
        assert!(state.insert(tenant));
        let drained = state.drain_checkpoints(&dir).expect("drain");
        assert_eq!(drained, vec!["alpha".to_string()]);
        assert!(
            dir.join("store").join(dox_store::MANIFEST_NAME).exists(),
            "drain commits through the segment store"
        );

        // A pre-store checkpoint file beside the store: restore loads
        // both layouts, the store taking precedence on id clashes.
        let legacy = Tenant::start(spec("legacy"), &Registry::new()).expect("legacy starts");
        let legacy_state = ServeState::new(Registry::new());
        assert!(legacy_state.insert(legacy));
        let value = lock(&legacy_state.get("legacy").expect("resident"))
            .checkpoint_value()
            .expect("checkpoint");
        std::fs::write(
            dir.join("tenant_legacy.json"),
            serde_json::to_string(&value).expect("encode"),
        )
        .expect("write legacy file");

        let resumed = ServeState::new(Registry::new());
        let restored = resumed.restore_checkpoints(&dir).expect("restore");
        assert_eq!(restored, vec!["alpha".to_string(), "legacy".to_string()]);
        let alpha = resumed.get("alpha").expect("alpha resident");
        assert_eq!(lock(&alpha).docs_ingested(), ingested);

        // The next drain migrates the legacy tenant into the store and
        // removes its file.
        let drained = resumed.drain_checkpoints(&dir).expect("second drain");
        assert_eq!(drained, vec!["alpha".to_string(), "legacy".to_string()]);
        assert!(
            !dir.join("tenant_legacy.json").exists(),
            "legacy checkpoint migrated into the store"
        );
        let migrated = ServeState::new(Registry::new());
        let restored = migrated
            .restore_checkpoints(&dir)
            .expect("restore migrated");
        assert_eq!(restored, vec!["alpha".to_string(), "legacy".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
