//! Resident tenants: one live engine session per tenant, plus the
//! PII-safe query indexes the service answers from.
//!
//! A tenant is `(id, seed, scale, topology)`. Creating one trains the
//! tenant's detector from its own `(config, seed)` — exactly the
//! classifier [`Study::run`] would train — and parks a
//! [`Session`] behind it. Ingested documents flow through the same
//! sharded engine as the batch study, so a tenant fed the study's
//! document stream yields a byte-identical `/v1/report`.
//!
//! Query indexes are maintained incrementally from committed
//! detections and hold **only** [`redact()`]-derived fingerprints:
//! victims are keyed by the fingerprint of their §3.1.4 account-set
//! key, accounts by the fingerprint of `network:handle`. Raw handles
//! and bodies never leave the engine's output buffer.

use crate::quota::QuotaSpec;
use dox_core::error::{Error, Result};
use dox_core::study::{Study, StudyConfig};
use dox_engine::output::DetectedDox;
use dox_engine::{Engine, EngineConfig, Session, SessionCheckpoint};
use dox_obs::{redact, Registry};
use dox_sites::collect::CollectedDoc;
use serde::value::{Number, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Everything needed to (re)create a tenant deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (ASCII alphanumeric plus `-`/`_`).
    pub id: String,
    /// Master seed for the tenant's study config.
    pub seed: u64,
    /// Study scale (`0 < scale <= 1`).
    pub scale: f64,
    /// Engine stage-worker threads.
    pub workers: usize,
    /// Engine dedup shards (checkpoints only resume under the same
    /// shard count).
    pub shards: usize,
    /// Optional ingest quota (docs/s token bucket, in-flight byte
    /// cap). Operator policy, not identity: excluded from
    /// [`TenantSpec::fingerprint`] so retuning a quota never
    /// invalidates existing checkpoints.
    pub quota: Option<QuotaSpec>,
}

impl TenantSpec {
    /// Parse a spec from a JSON object: `id`, `seed` and `scale` are
    /// required, `workers`/`shards` default to the engine defaults.
    /// Returns `None` on missing fields, a malformed id, or an
    /// out-of-range scale.
    pub fn from_value(value: &Value) -> Option<Self> {
        let id = value.get("id")?.as_str()?.to_string();
        let valid_id = !id.is_empty()
            && id.len() <= 64
            && id
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
        if !valid_id {
            return None;
        }
        let seed = value.get("seed")?.as_u64()?;
        let scale = value.get("scale")?.as_f64()?;
        if !(scale > 0.0 && scale <= 1.0) {
            return None;
        }
        let defaults = EngineConfig::default();
        let workers = match value.get("workers") {
            Some(v) => usize::try_from(v.as_u64()?).ok().filter(|w| *w > 0)?,
            None => defaults.workers,
        };
        let shards = match value.get("shards") {
            Some(v) => usize::try_from(v.as_u64()?).ok().filter(|s| *s > 0)?,
            None => defaults.shards,
        };
        let quota = match value.get("quota") {
            None | Some(Value::Null) => None,
            Some(v) => Some(QuotaSpec::from_value(v)?),
        };
        Some(Self {
            id,
            seed,
            scale,
            workers,
            shards,
            quota,
        })
    }

    /// The spec as a JSON object (inverse of [`TenantSpec::from_value`]).
    /// The `quota` key is emitted only when set, so pre-quota
    /// checkpoints and new quota-less ones stay byte-identical.
    pub fn to_value(&self) -> Value {
        let mut fields = vec![
            ("id".to_string(), Value::String(self.id.clone())),
            ("seed".to_string(), Value::Number(Number::U64(self.seed))),
            ("scale".to_string(), Value::Number(Number::F64(self.scale))),
            (
                "workers".to_string(),
                Value::Number(Number::U64(self.workers as u64)),
            ),
            (
                "shards".to_string(),
                Value::Number(Number::U64(self.shards as u64)),
            ),
        ];
        if let Some(quota) = &self.quota {
            fields.push(("quota".to_string(), quota.to_value()));
        }
        Value::Object(fields)
    }

    /// The derived study configuration: the scaled paper config with
    /// this spec's seed and engine topology, fault-free.
    pub fn study_config(&self) -> StudyConfig {
        let engine = EngineConfig {
            workers: self.workers,
            shards: self.shards,
            ..EngineConfig::default()
        };
        StudyConfig::builder()
            .seed(self.seed)
            .scale(self.scale)
            .engine(engine)
            .build()
    }

    /// Stable fingerprint of the spec-to-config mapping, stored in
    /// checkpoints so a file written under a different mapping (or a
    /// tampered spec) is rejected instead of misread. The quota is
    /// deliberately excluded: it never reaches the study config, and an
    /// operator retuning it must not strand existing checkpoints.
    pub fn fingerprint(&self) -> u32 {
        let material = format!(
            "tenant|{}|{}|{:x}|{}|{}",
            self.id,
            self.seed,
            self.scale.to_bits(),
            self.workers,
            self.shards
        );
        redact(material).fingerprint()
    }
}

/// One committed dox, redacted for the alert stream.
#[derive(Debug, Clone)]
pub struct AlertRecord {
    /// Position in the tenant's alert stream (the cursor unit).
    pub seq: u64,
    /// Document id of the committed dox.
    pub doc_id: u64,
    /// Source site name.
    pub source: String,
    /// Collection period the document arrived in.
    pub period: u8,
    /// Posting time (sim minutes).
    pub posted_at: u64,
    /// Collection time (sim minutes; monitoring starts here).
    pub observed_at: u64,
    /// Fingerprint of the victim's account-set key, when the dox
    /// references any accounts.
    pub victim: Option<u32>,
    /// Fingerprints of every referenced `network:handle` pair.
    pub accounts: Vec<u32>,
    /// De-duplication verdict: `(kind, original doc id)`.
    pub duplicate: Option<(String, u64)>,
}

impl AlertRecord {
    /// The record as a JSON object.
    pub fn to_value(&self) -> Value {
        let duplicate = match &self.duplicate {
            None => Value::Null,
            Some((kind, of)) => Value::Object(vec![
                ("kind".to_string(), Value::String(kind.clone())),
                ("of_doc".to_string(), Value::Number(Number::U64(*of))),
            ]),
        };
        Value::Object(vec![
            ("seq".to_string(), Value::Number(Number::U64(self.seq))),
            (
                "doc_id".to_string(),
                Value::Number(Number::U64(self.doc_id)),
            ),
            ("source".to_string(), Value::String(self.source.clone())),
            (
                "period".to_string(),
                Value::Number(Number::U64(u64::from(self.period))),
            ),
            (
                "posted_at".to_string(),
                Value::Number(Number::U64(self.posted_at)),
            ),
            (
                "observed_at".to_string(),
                Value::Number(Number::U64(self.observed_at)),
            ),
            (
                "victim".to_string(),
                self.victim
                    .map_or(Value::Null, |fp| Value::Number(Number::U64(u64::from(fp)))),
            ),
            (
                "accounts".to_string(),
                Value::Array(
                    self.accounts
                        .iter()
                        .map(|fp| Value::Number(Number::U64(u64::from(*fp))))
                        .collect(),
                ),
            ),
            ("duplicate".to_string(), duplicate),
        ])
    }
}

/// Per-victim index entry (keyed by account-set fingerprint).
#[derive(Debug, Clone)]
struct VictimEntry {
    networks: BTreeSet<String>,
    doc_ids: Vec<u64>,
    first_seen: u64,
    doxes: u64,
}

/// Per-account index entry (keyed by `network:handle` fingerprint).
#[derive(Debug, Clone)]
struct AccountEntry {
    network: String,
    doc_ids: Vec<u64>,
}

/// Per-document verdicts for one ingest batch.
#[derive(Debug, Clone)]
pub struct IngestOutcome {
    /// Documents the engine absorbed without flagging.
    pub accepted: usize,
    /// Newly committed first-of-victim doxes.
    pub doxes: usize,
    /// Newly committed duplicates of earlier doxes.
    pub duplicates: usize,
    /// `(doc_id, "accepted" | "dox" | "duplicate")`, submission order.
    pub verdicts: Vec<(u64, &'static str)>,
}

impl IngestOutcome {
    /// The outcome as a JSON object.
    pub fn to_value(&self) -> Value {
        let verdicts = self
            .verdicts
            .iter()
            .map(|(id, verdict)| {
                Value::Object(vec![
                    ("doc_id".to_string(), Value::Number(Number::U64(*id))),
                    ("verdict".to_string(), Value::String((*verdict).to_string())),
                ])
            })
            .collect();
        Value::Object(vec![
            (
                "accepted".to_string(),
                Value::Number(Number::U64(self.accepted as u64)),
            ),
            (
                "doxes".to_string(),
                Value::Number(Number::U64(self.doxes as u64)),
            ),
            (
                "duplicates".to_string(),
                Value::Number(Number::U64(self.duplicates as u64)),
            ),
            ("verdicts".to_string(), Value::Array(verdicts)),
        ])
    }
}

/// Fingerprint of one referenced account: `network:handle`.
fn account_fingerprint(network: &str, h: &str) -> u32 {
    let mut material = String::with_capacity(network.len() + 1 + h.len());
    material.push_str(network);
    material.push(':');
    material.push_str(h);
    redact(material).fingerprint()
}

/// Fingerprint of the victim's §3.1.4 account-set key; `None` when the
/// dox references no accounts (no stable victim identity).
fn victim_fingerprint(detected: &DetectedDox) -> Option<u32> {
    let key = detected.extracted.account_set_key();
    if key.is_empty() {
        return None;
    }
    let mut material = String::new();
    for (network, h) in &key {
        material.push_str(&network.to_string());
        material.push(':');
        material.push_str(h);
        material.push('|');
    }
    Some(redact(material).fingerprint())
}

/// A resident tenant: trained detector, live session, query indexes.
pub struct Tenant {
    spec: TenantSpec,
    study: Study,
    session: Session,
    /// Committed detections already absorbed into the indexes.
    absorbed: usize,
    alerts: Vec<AlertRecord>,
    victims: BTreeMap<u32, VictimEntry>,
    accounts: BTreeMap<u32, AccountEntry>,
    docs_ingested: u64,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Study and Session are not Debug; summarize the tenant instead.
        f.debug_struct("Tenant")
            .field("spec", &self.spec)
            .field("docs_ingested", &self.docs_ingested)
            .field("committed", &self.absorbed)
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// Train the tenant's detector and start a fresh resident session.
    ///
    /// Training replays the study's world generation and classifier
    /// training — this is seconds of work at test scale, minutes at
    /// paper scale.
    ///
    /// # Errors
    /// Engine-configuration or training failures.
    pub fn start(spec: TenantSpec, registry: &Registry) -> Result<Self> {
        Self::boot(spec, registry, None, 0)
    }

    /// Recreate a tenant from a drained checkpoint: retrain the
    /// detector (pure function of the spec) and resume the session
    /// from the saved engine state.
    ///
    /// # Errors
    /// Engine, training or checkpoint-mismatch failures.
    pub fn resume(
        spec: TenantSpec,
        checkpoint: SessionCheckpoint,
        docs_ingested: u64,
        registry: &Registry,
    ) -> Result<Self> {
        Self::boot(spec, registry, Some(checkpoint), docs_ingested)
    }

    fn boot(
        spec: TenantSpec,
        registry: &Registry,
        checkpoint: Option<SessionCheckpoint>,
        docs_ingested: u64,
    ) -> Result<Self> {
        let study = Study::with_registry(spec.study_config(), registry.clone());
        let detector = study.train_detector()?;
        let engine = Engine::from_config(study.config().engine.clone())?;
        let mut builder = engine
            .session_builder()
            .detector(detector)
            .registry(registry);
        if let Some(checkpoint) = checkpoint {
            builder = builder.resume_from(checkpoint);
        }
        let session = builder.start()?;
        let mut tenant = Self {
            spec,
            study,
            session,
            absorbed: 0,
            alerts: Vec::new(),
            victims: BTreeMap::new(),
            accounts: BTreeMap::new(),
            docs_ingested,
        };
        // A resumed session already carries committed detections; the
        // indexes and alert stream rebuild from them deterministically.
        tenant.absorb_new();
        Ok(tenant)
    }

    /// The spec this tenant was created from.
    pub fn spec(&self) -> &TenantSpec {
        &self.spec
    }

    /// Total documents ingested over the tenant's lifetime (survives
    /// checkpoint/resume).
    pub fn docs_ingested(&self) -> u64 {
        self.docs_ingested
    }

    /// Committed detections so far.
    pub fn committed_len(&self) -> usize {
        self.session.committed_len()
    }

    /// Alert-stream length (the upper cursor bound).
    pub fn alerts_len(&self) -> usize {
        self.alerts.len()
    }

    /// Index every not-yet-absorbed committed detection.
    fn absorb_new(&mut self) {
        let fresh = self.session.detected_since(self.absorbed);
        for detected in &fresh {
            let victim = victim_fingerprint(detected);
            let mut account_fps = Vec::new();
            for osn in &detected.extracted.osn {
                let network = osn.network.to_string();
                let fp = account_fingerprint(&network, &osn.handle);
                account_fps.push(fp);
                let entry = self.accounts.entry(fp).or_insert_with(|| AccountEntry {
                    network,
                    doc_ids: Vec::new(),
                });
                entry.doc_ids.push(detected.doc_id);
            }
            if let Some(fp) = victim {
                let entry = self.victims.entry(fp).or_insert_with(|| VictimEntry {
                    networks: BTreeSet::new(),
                    doc_ids: Vec::new(),
                    first_seen: detected.observed_at.0,
                    doxes: 0,
                });
                for (network, _) in detected.extracted.account_set_key() {
                    entry.networks.insert(network.to_string());
                }
                entry.doc_ids.push(detected.doc_id);
                entry.doxes += 1;
                entry.first_seen = entry.first_seen.min(detected.observed_at.0);
            }
            self.alerts.push(AlertRecord {
                seq: self.alerts.len() as u64,
                doc_id: detected.doc_id,
                source: format!("{:?}", detected.source),
                period: detected.period,
                posted_at: detected.posted_at.0,
                observed_at: detected.observed_at.0,
                victim,
                accounts: account_fps,
                duplicate: detected
                    .duplicate
                    .map(|(kind, of)| (format!("{kind:?}"), of)),
            });
        }
        self.absorbed += fresh.len();
    }

    /// Ingest one batch, drain it through the engine, and return the
    /// per-document verdicts.
    ///
    /// The flush makes verdicts exact rather than eventual: every
    /// document of the batch is classified, deduplicated and committed
    /// (or dropped as a non-dox) before this returns.
    ///
    /// # Errors
    /// Engine errors (invalid period, dead workers, quiesce timeout).
    pub fn ingest_batch(&mut self, period: u8, docs: Vec<CollectedDoc>) -> Result<IngestOutcome> {
        let submitted: Vec<u64> = docs.iter().map(|c| c.doc.id).collect();
        let before = self.session.committed_len();
        for doc in docs {
            self.session.ingest(period, doc)?;
            self.docs_ingested += 1;
        }
        self.session.flush()?;
        let fresh = self.session.detected_since(before);
        self.absorb_new();

        let by_id: BTreeMap<u64, &DetectedDox> = fresh.iter().map(|d| (d.doc_id, d)).collect();
        let mut outcome = IngestOutcome {
            accepted: 0,
            doxes: 0,
            duplicates: 0,
            verdicts: Vec::with_capacity(submitted.len()),
        };
        for id in submitted {
            let verdict = match by_id.get(&id) {
                Some(d) if d.duplicate.is_some() => {
                    outcome.duplicates += 1;
                    "duplicate"
                }
                Some(_) => {
                    outcome.doxes += 1;
                    "dox"
                }
                None => {
                    outcome.accepted += 1;
                    "accepted"
                }
            };
            outcome.verdicts.push((id, verdict));
        }
        Ok(outcome)
    }

    /// The full [`dox_core::study::ExperimentReport`] for everything
    /// ingested so far, as JSON. Byte-identical to the batch
    /// [`Study::run`] once the tenant has ingested the study's whole
    /// document stream.
    ///
    /// # Errors
    /// Engine or analysis failures.
    pub fn report_json(&mut self) -> Result<String> {
        let output = self.session.output_snapshot()?;
        let report = self.study.report_from_ingest(&output)?;
        dox_core::report::to_json(&report)
    }

    /// Look up a victim by account-set fingerprint.
    pub fn victim_value(&self, fp: u32) -> Option<Value> {
        let entry = self.victims.get(&fp)?;
        Some(Value::Object(vec![
            (
                "fingerprint".to_string(),
                Value::Number(Number::U64(u64::from(fp))),
            ),
            (
                "networks".to_string(),
                Value::Array(
                    entry
                        .networks
                        .iter()
                        .map(|n| Value::String(n.clone()))
                        .collect(),
                ),
            ),
            (
                "doc_ids".to_string(),
                Value::Array(
                    entry
                        .doc_ids
                        .iter()
                        .map(|id| Value::Number(Number::U64(*id)))
                        .collect(),
                ),
            ),
            (
                "first_seen".to_string(),
                Value::Number(Number::U64(entry.first_seen)),
            ),
            ("doxes".to_string(), Value::Number(Number::U64(entry.doxes))),
        ]))
    }

    /// Look up an account by `network:handle` fingerprint.
    pub fn account_value(&self, fp: u32) -> Option<Value> {
        let entry = self.accounts.get(&fp)?;
        Some(Value::Object(vec![
            (
                "fingerprint".to_string(),
                Value::Number(Number::U64(u64::from(fp))),
            ),
            ("network".to_string(), Value::String(entry.network.clone())),
            (
                "doc_ids".to_string(),
                Value::Array(
                    entry
                        .doc_ids
                        .iter()
                        .map(|id| Value::Number(Number::U64(*id)))
                        .collect(),
                ),
            ),
        ]))
    }

    /// One page of the alert stream from `cursor`, at most `limit`
    /// records. Returns `(next_cursor, page)`; `next_cursor` is where
    /// the next poll should start.
    pub fn alerts_page(&self, cursor: usize, limit: usize) -> (usize, Vec<Value>) {
        let page: Vec<Value> = self
            .alerts
            .get(cursor..)
            .unwrap_or_default()
            .iter()
            .take(limit)
            .map(AlertRecord::to_value)
            .collect();
        (cursor + page.len(), page)
    }

    /// One-line summary for `GET /v1/tenants`.
    pub fn summary_value(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::String(self.spec.id.clone())),
            (
                "seed".to_string(),
                Value::Number(Number::U64(self.spec.seed)),
            ),
            (
                "scale".to_string(),
                Value::Number(Number::F64(self.spec.scale)),
            ),
            (
                "docs_ingested".to_string(),
                Value::Number(Number::U64(self.docs_ingested)),
            ),
            (
                "committed".to_string(),
                Value::Number(Number::U64(self.committed_len() as u64)),
            ),
            (
                "alerts".to_string(),
                Value::Number(Number::U64(self.alerts.len() as u64)),
            ),
        ])
    }

    /// Quiesce the session and serialize the complete tenant state for
    /// the drain protocol: spec, config fingerprint, lifetime ingest
    /// count, and the engine's [`SessionCheckpoint`].
    ///
    /// # Errors
    /// Engine errors while quiescing.
    pub fn checkpoint_value(&mut self) -> Result<Value> {
        self.session.flush()?;
        let checkpoint = self.session.checkpoint()?;
        Ok(Value::Object(vec![
            ("spec".to_string(), self.spec.to_value()),
            (
                "fingerprint".to_string(),
                Value::Number(Number::U64(u64::from(self.spec.fingerprint()))),
            ),
            (
                "docs_ingested".to_string(),
                Value::Number(Number::U64(self.docs_ingested)),
            ),
            ("session".to_string(), checkpoint.to_value()),
        ]))
    }

    /// Restore a tenant from a [`Tenant::checkpoint_value`] object.
    ///
    /// # Errors
    /// [`Error::Checkpoint`] on malformed or fingerprint-mismatched
    /// files, plus anything [`Tenant::resume`] can raise.
    pub fn from_checkpoint_value(value: &Value, registry: &Registry) -> Result<Self> {
        let malformed = || Error::Checkpoint("malformed tenant checkpoint".into());
        let spec = value
            .get("spec")
            .and_then(TenantSpec::from_value)
            .ok_or_else(malformed)?;
        let saved_fp = value
            .get("fingerprint")
            .and_then(Value::as_u64)
            .ok_or_else(malformed)?;
        if saved_fp != u64::from(spec.fingerprint()) {
            return Err(Error::Checkpoint(format!(
                "tenant '{}': config fingerprint mismatch (checkpoint {saved_fp:08x})",
                spec.id
            )));
        }
        let docs_ingested = value
            .get("docs_ingested")
            .and_then(Value::as_u64)
            .ok_or_else(malformed)?;
        let session = value
            .get("session")
            .and_then(SessionCheckpoint::from_value)
            .ok_or_else(malformed)?;
        Self::resume(spec, session, docs_ingested, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::ControlFlow;

    fn spec(id: &str) -> TenantSpec {
        TenantSpec {
            id: id.to_string(),
            seed: 11,
            scale: 0.005,
            workers: 2,
            shards: 4,
            quota: None,
        }
    }

    #[test]
    fn spec_round_trips_and_validates() {
        let s = spec("alpha-1");
        let parsed = TenantSpec::from_value(&s.to_value()).expect("round trip");
        assert_eq!(parsed, s);
        assert_eq!(parsed.fingerprint(), s.fingerprint());

        // A quota rides along in the JSON but never joins the
        // fingerprint — retuning it must not strand checkpoints.
        let mut quotad = spec("alpha-1");
        quotad.quota = Some(crate::quota::QuotaSpec {
            docs_per_sec: Some(50.0),
            burst_docs: Some(100),
            max_inflight_bytes: Some(1 << 20),
        });
        let parsed = TenantSpec::from_value(&quotad.to_value()).expect("quota round trip");
        assert_eq!(parsed, quotad);
        assert_eq!(quotad.fingerprint(), s.fingerprint());

        let bad_id = Value::Object(vec![
            ("id".to_string(), Value::String("has space".to_string())),
            ("seed".to_string(), Value::Number(Number::U64(1))),
            ("scale".to_string(), Value::Number(Number::F64(0.01))),
        ]);
        assert!(TenantSpec::from_value(&bad_id).is_none());
        let bad_scale = Value::Object(vec![
            ("id".to_string(), Value::String("ok".to_string())),
            ("seed".to_string(), Value::Number(Number::U64(1))),
            ("scale".to_string(), Value::Number(Number::F64(1.5))),
        ]);
        assert!(TenantSpec::from_value(&bad_scale).is_none());
    }

    #[test]
    fn tenant_ingests_queries_and_checkpoints() {
        let registry = Registry::new();
        let mut tenant = Tenant::start(spec("t0"), &registry).expect("tenant starts");
        let study = Study::with_registry(tenant.spec().study_config(), Registry::new());

        // Feed the first 400 documents of the tenant's own stream.
        let mut batch: Vec<(u8, CollectedDoc)> = Vec::new();
        let mut taken = 0usize;
        study
            .synthetic_stream(&mut |period, doc| {
                batch.push((period, doc));
                taken += 1;
                if taken >= 400 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .expect("stream replays");
        let period = batch.first().expect("docs yielded").0;
        let docs: Vec<CollectedDoc> = batch.into_iter().map(|(_, d)| d).collect();
        let submitted = docs.len();

        let outcome = tenant.ingest_batch(period, docs).expect("batch ingests");
        assert_eq!(outcome.verdicts.len(), submitted);
        assert_eq!(
            outcome.accepted + outcome.doxes + outcome.duplicates,
            submitted
        );
        assert_eq!(tenant.docs_ingested(), submitted as u64);
        assert_eq!(tenant.committed_len(), outcome.doxes + outcome.duplicates);

        // Every alert's victim/account fingerprints resolve in the indexes.
        let (next, page) = tenant.alerts_page(0, 1000);
        assert_eq!(next, tenant.alerts_len());
        for alert in &page {
            if let Some(fp) = alert.get("victim").and_then(Value::as_u64) {
                let fp = u32::try_from(fp).expect("u32 fingerprint");
                assert!(tenant.victim_value(fp).is_some(), "victim indexed");
            }
            for fp in alert
                .get("accounts")
                .and_then(Value::as_array)
                .expect("accounts")
            {
                let fp = u32::try_from(fp.as_u64().expect("number")).expect("u32");
                assert!(tenant.account_value(fp).is_some(), "account indexed");
            }
        }

        // Checkpoint → resume → identical indexes and counters.
        let saved = tenant.checkpoint_value().expect("checkpoint");
        let resumed = Tenant::from_checkpoint_value(&saved, &registry).expect("resume from value");
        assert_eq!(resumed.docs_ingested(), tenant.docs_ingested());
        assert_eq!(resumed.committed_len(), tenant.committed_len());
        assert_eq!(resumed.alerts_len(), tenant.alerts_len());
        let (_, original) = tenant.alerts_page(0, 1000);
        let (_, rebuilt) = resumed.alerts_page(0, 1000);
        assert_eq!(
            serde_json::to_string(&Value::Array(original)).expect("json"),
            serde_json::to_string(&Value::Array(rebuilt)).expect("json"),
            "alert stream rebuilds byte-identically from the checkpoint"
        );
    }

    #[test]
    fn checkpoint_rejects_fingerprint_mismatch() {
        let registry = Registry::new();
        let mut tenant = Tenant::start(spec("t1"), &registry).expect("tenant starts");
        let saved = tenant.checkpoint_value().expect("checkpoint");
        let Value::Object(mut entries) = saved else {
            panic!("object checkpoint");
        };
        for (key, value) in &mut entries {
            if key == "fingerprint" {
                *value = Value::Number(Number::U64(1));
            }
        }
        let err = Tenant::from_checkpoint_value(&Value::Object(entries), &registry)
            .expect_err("mismatch rejected");
        assert!(err.to_string().contains("fingerprint mismatch"), "{err}");
    }
}
