//! `dox-serve` — the continuous-ingest service daemon.
//!
//! ```text
//! cargo run -p dox-serve --release -- [OPTIONS]
//!
//! OPTIONS:
//!   --addr <host:port>    bind address (default 127.0.0.1:9321; port 0
//!                         picks an ephemeral port, printed on startup)
//!   --http-workers <n>    connection worker threads (default 8)
//!   --max-body <bytes>    request body limit (default 4 MiB)
//!   --max-backlog <n>     connections allowed to wait for a worker;
//!                         overflow is shed with 503 (default 1024)
//!   --deadline-ms <ms>    per-request wall-clock budget (default 30000)
//!   --checkpoint-dir <d>  where SIGTERM drain writes tenant_<id>.json
//!   --resume              restore every tenant checkpoint from
//!                         --checkpoint-dir before serving
//!   --quiet               suppress startup/drain notices on stderr
//! ```
//!
//! The daemon hosts resident engine sessions (one per tenant) behind
//! the `/v1` API — see the `dox_serve::api` module docs for the route
//! table. On SIGTERM (or SIGINT) it stops accepting mutations,
//! quiesces every tenant through the engine's checkpoint protocol,
//! writes one JSON checkpoint per tenant, and exits 0; a follow-up
//! `--resume` start restores every tenant byte-identically.

use dox_obs::http::{HttpServer, ServerConfig};
use dox_serve::ServeState;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// POSIX signal numbers (stable on every platform this builds for).
const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

/// Set from the signal handler; the main loop polls it.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_signum: i32) {
    // Only async-signal-safe work here: flip the flag, nothing else.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    // libc's signal(2). The daemon needs exactly one hook — "a SIGTERM
    // was delivered" — so the portable two-argument form is enough and
    // avoids depending on a libc crate the workspace doesn't vendor.
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

fn install_signal_handlers() {
    // SAFETY: `on_signal` only stores to an atomic, which is
    // async-signal-safe; the handler pointer outlives the process.
    // dox-lint:allow(unsafe-audit) signal(2) registration; the handler only flips an atomic flag
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

struct Args {
    addr: String,
    http_workers: usize,
    max_body: usize,
    max_backlog: usize,
    deadline: Duration,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    quiet: bool,
}

const HELP: &str = "dox-serve — continuous-ingest service daemon
  --addr <host:port>    bind address (default 127.0.0.1:9321)
  --http-workers <n>    connection worker threads (default 8)
  --max-body <bytes>    request body limit (default 4 MiB)
  --max-backlog <n>     waiting-connection bound; overflow sheds 503 (default 1024)
  --deadline-ms <ms>    per-request wall-clock budget (default 30000)
  --checkpoint-dir <d>  SIGTERM drain writes tenant_<id>.json here
  --resume              restore tenants from --checkpoint-dir first
  --quiet               no startup/drain notices";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:9321".to_string(),
        http_workers: 8,
        max_body: dox_obs::http::DEFAULT_MAX_BODY,
        max_backlog: dox_obs::http::DEFAULT_MAX_BACKLOG,
        deadline: dox_obs::http::DEFAULT_REQUEST_DEADLINE,
        checkpoint_dir: None,
        resume: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs a value")?,
            "--http-workers" => {
                let v = it.next().ok_or("--http-workers needs a value")?;
                args.http_workers = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or(format!("bad worker count {v:?}"))?;
            }
            "--max-body" => {
                let v = it.next().ok_or("--max-body needs a value")?;
                args.max_body = v.parse().map_err(|_| format!("bad body limit {v:?}"))?;
            }
            "--max-backlog" => {
                let v = it.next().ok_or("--max-backlog needs a value")?;
                args.max_backlog = v
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or(format!("bad backlog bound {v:?}"))?;
            }
            "--deadline-ms" => {
                let v = it.next().ok_or("--deadline-ms needs a value")?;
                args.deadline = v
                    .parse::<u64>()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .map(Duration::from_millis)
                    .ok_or(format!("bad deadline {v:?}"))?;
            }
            "--checkpoint-dir" => {
                args.checkpoint_dir =
                    Some(it.next().ok_or("--checkpoint-dir needs a path")?.into());
            }
            "--resume" => args.resume = true,
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                eprintln!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.resume && args.checkpoint_dir.is_none() {
        return Err("--resume needs --checkpoint-dir".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{HELP}");
            return ExitCode::FAILURE;
        }
    };
    let registry = dox_obs::global().clone();
    registry.events().set_echo(!args.quiet);
    let state = Arc::new(ServeState::new(registry));
    let tracer = dox_obs::Tracer::disabled();

    if args.resume {
        if let Some(dir) = &args.checkpoint_dir {
            match state.restore_checkpoints(dir) {
                Ok(restored) => {
                    if !args.quiet {
                        eprintln!(
                            "dox-serve: restored {} tenant(s): {}",
                            restored.len(),
                            restored.join(", ")
                        );
                    }
                }
                Err(e) => {
                    eprintln!("error: resume failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    install_signal_handlers();

    let router = dox_serve::router(Arc::clone(&state), &tracer);
    let config = ServerConfig {
        workers: args.http_workers,
        max_body: args.max_body,
        max_backlog: args.max_backlog,
        request_deadline: args.deadline,
        // The http.* shed/backlog/deadline instruments land in the same
        // registry /metrics serves.
        registry: state.registry().clone(),
        ..ServerConfig::default()
    };
    let server = match HttpServer::start_with(&args.addr, router, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if !args.quiet {
        eprintln!("dox-serve: listening on http://{}/v1", server.local_addr());
    }

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(100));
    }

    // Drain: refuse new mutations, quiesce and checkpoint every tenant,
    // then stop the server and exit cleanly.
    state.begin_drain();
    if let Some(dir) = &args.checkpoint_dir {
        match state.drain_checkpoints(dir) {
            Ok(written) => {
                if !args.quiet {
                    eprintln!(
                        "dox-serve: drained {} tenant checkpoint(s) into {}",
                        written.len(),
                        dir.display()
                    );
                }
            }
            Err(e) => {
                eprintln!("error: drain failed: {e}");
                server.stop();
                return ExitCode::FAILURE;
            }
        }
    } else if !args.quiet {
        eprintln!("dox-serve: shutting down (no --checkpoint-dir, tenants not persisted)");
    }
    server.stop();
    ExitCode::SUCCESS
}
