//! # dox-serve
//!
//! Service mode for the doxing-measurement reproduction: resident
//! [`dox_engine`] sessions behind an HTTP/JSON API, turning the batch
//! study into a continuous-ingest daemon.
//!
//! The paper's pipeline is a batch experiment — collect two periods,
//! then analyze. A monitoring deployment instead receives documents as
//! they are posted and must answer questions *while ingesting*: has
//! this victim been doxed before, which accounts does a dox reference,
//! what does the funnel look like right now. This crate hosts that
//! shape without giving up the reproduction's determinism contract:
//! a tenant that ingests the study's document stream produces a
//! `/v1/report` byte-identical to [`dox_core::Study::run`].
//!
//! Three layers:
//!
//! * [`tenant`] — one resident session per tenant: a trained detector,
//!   a live engine [`dox_engine::Session`], and the PII-safe query
//!   indexes (victims, accounts, alerts) maintained from committed
//!   detections. Checkpoint/resume wraps the engine's quiesce protocol.
//! * [`api`] — the route table over [`dox_obs::http`]: tenant CRUD,
//!   batch ingest with per-document verdicts, victim/account lookups,
//!   the cursor-paged alert stream, and the full report. The telemetry
//!   routes (`/metrics`, `/traces`) are mounted on the same port,
//!   alongside `/healthz` (liveness) and `/readyz` (flips unready the
//!   instant a drain begins).
//! * [`quota`] — per-tenant ingest quotas (token-bucket docs/s plus an
//!   in-flight byte cap) answering `429` + `Retry-After` on breach; the
//!   fairness half of the overload policy (DESIGN.md §13).
//! * The `dox-serve` binary — CLI flags, SIGTERM drain (checkpoint
//!   every tenant, then exit), and `--resume` restore.
//!
//! Everything a query can return passes through
//! [`dox_obs::redact()`]-derived fingerprints: handles and bodies never
//! leave the process.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod quota;
pub mod tenant;

pub use api::{router, ServeState};
pub use quota::{QuotaSpec, QuotaState};
pub use tenant::{AlertRecord, IngestOutcome, Tenant, TenantSpec};
