//! Per-tenant ingest quotas: a token bucket over documents per second
//! plus a cap on in-flight request bytes.
//!
//! Quotas are the fairness half of the overload story (DESIGN.md §13):
//! the HTTP layer's backlog bound protects the *process*, quotas keep
//! one hot tenant from starving the rest once requests are admitted. A
//! breach answers `429` + `Retry-After` computed from the bucket
//! deficit, and is counted per tenant in `/metrics` as
//! `serve.tenant.<id>.quota_rejects`.
//!
//! Quotas are operator policy, not tenant identity: they ride along in
//! the [`TenantSpec`](crate::tenant::TenantSpec) JSON but are excluded
//! from its config fingerprint, so retuning a quota never invalidates a
//! tenant's checkpoints. Nothing here feeds the `ExperimentReport`, so
//! wall-clock refill is fine.

use dox_obs::{Counter, Gauge, Registry};
use serde::value::{Number, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Operator-set ingest limits for one tenant. Every field is optional;
/// an absent field means "unlimited" on that axis.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct QuotaSpec {
    /// Sustained document ingest rate (token-bucket refill, docs/s).
    pub docs_per_sec: Option<f64>,
    /// Bucket capacity in documents; defaults to two seconds of refill
    /// (minimum one batch of 1) when a rate is set.
    pub burst_docs: Option<u64>,
    /// Cap on request-body bytes concurrently being ingested for this
    /// tenant.
    pub max_inflight_bytes: Option<u64>,
}

impl QuotaSpec {
    /// Parse from a JSON object. Returns `None` when the value is not
    /// an object or any present field is out of range (`docs_per_sec`
    /// must be finite and positive, the integer caps at least 1).
    pub fn from_value(value: &Value) -> Option<Self> {
        let Value::Object(_) = value else {
            return None;
        };
        let docs_per_sec = match value.get("docs_per_sec") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_f64().filter(|r| r.is_finite() && *r > 0.0)?),
        };
        let burst_docs = match value.get("burst_docs") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().filter(|b| *b >= 1)?),
        };
        let max_inflight_bytes = match value.get("max_inflight_bytes") {
            None | Some(Value::Null) => None,
            Some(v) => Some(v.as_u64().filter(|b| *b >= 1)?),
        };
        Some(Self {
            docs_per_sec,
            burst_docs,
            max_inflight_bytes,
        })
    }

    /// The spec as a JSON object (inverse of [`QuotaSpec::from_value`]);
    /// absent fields are omitted.
    pub fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        if let Some(rate) = self.docs_per_sec {
            fields.push(("docs_per_sec".to_string(), Value::Number(Number::F64(rate))));
        }
        if let Some(burst) = self.burst_docs {
            fields.push(("burst_docs".to_string(), Value::Number(Number::U64(burst))));
        }
        if let Some(bytes) = self.max_inflight_bytes {
            fields.push((
                "max_inflight_bytes".to_string(),
                Value::Number(Number::U64(bytes)),
            ));
        }
        Value::Object(fields)
    }

    /// Whether any axis is actually limited.
    pub fn is_limiting(&self) -> bool {
        self.docs_per_sec.is_some() || self.max_inflight_bytes.is_some()
    }

    /// Effective bucket capacity when a rate is set.
    fn burst(&self, rate: f64) -> f64 {
        match self.burst_docs {
            Some(b) => b as f64,
            None => (rate * 2.0).max(1.0),
        }
    }
}

/// Token bucket: current tokens and the instant they were last topped up.
#[derive(Debug)]
struct Bucket {
    tokens: f64,
    refilled_at: Instant,
}

/// Live quota enforcement for one tenant.
#[derive(Debug)]
pub struct QuotaState {
    spec: QuotaSpec,
    bucket: Mutex<Bucket>,
    inflight_bytes: AtomicU64,
    /// `serve.tenant.<id>.quota_rejects` — `429`s answered for this
    /// tenant.
    rejects: Counter,
    /// `serve.tenant.<id>.inflight_bytes` — request bytes currently
    /// being ingested.
    inflight_gauge: Gauge,
}

impl QuotaState {
    /// Fresh state: a full bucket plus this tenant's `/metrics`
    /// instruments.
    pub fn new(spec: QuotaSpec, tenant_id: &str, registry: &Registry) -> Self {
        let tokens = spec.docs_per_sec.map_or(0.0, |rate| spec.burst(rate));
        Self {
            spec,
            bucket: Mutex::new(Bucket {
                tokens,
                // dox-lint:allow(determinism) wall-clock refill anchor; admission timing, never report content
                refilled_at: Instant::now(),
            }),
            inflight_bytes: AtomicU64::new(0),
            rejects: registry.counter(&format!("serve.tenant.{tenant_id}.quota_rejects")),
            inflight_gauge: registry.gauge(&format!("serve.tenant.{tenant_id}.inflight_bytes")),
        }
    }

    /// Admit `docs` documents carried by `bytes` request-body bytes, or
    /// refuse with the `Retry-After` seconds the client should wait.
    /// The returned guard holds the in-flight byte reservation until
    /// dropped; rate tokens are consumed on admission and never
    /// returned (the work happens either way).
    ///
    /// # Errors
    /// The suggested `Retry-After` in whole seconds (at least 1).
    pub fn admit(this: &Arc<Self>, docs: u64, bytes: u64) -> Result<QuotaAdmission, u64> {
        // dox-lint:allow(determinism) wall-clock refill; quota decisions are admission-time only
        QuotaState::admit_at(this, docs, bytes, Instant::now())
    }

    /// [`QuotaState::admit`] with an explicit clock, so tests can move
    /// time instead of sleeping.
    fn admit_at(
        this: &Arc<Self>,
        docs: u64,
        bytes: u64,
        now: Instant,
    ) -> Result<QuotaAdmission, u64> {
        if let Some(cap) = this.spec.max_inflight_bytes {
            let before = this.inflight_bytes.fetch_add(bytes, Ordering::SeqCst);
            if before.saturating_add(bytes) > cap {
                this.inflight_bytes.fetch_sub(bytes, Ordering::SeqCst);
                this.rejects.inc();
                return Err(1);
            }
        }
        if let Some(rate) = this.spec.docs_per_sec {
            let mut bucket = this.bucket.lock().unwrap_or_else(PoisonError::into_inner);
            let elapsed = now.saturating_duration_since(bucket.refilled_at);
            bucket.tokens =
                (bucket.tokens + elapsed.as_secs_f64() * rate).min(this.spec.burst(rate));
            bucket.refilled_at = now;
            let needed = docs as f64;
            if bucket.tokens < needed {
                let deficit = needed - bucket.tokens;
                drop(bucket);
                if this.spec.max_inflight_bytes.is_some() {
                    this.inflight_bytes.fetch_sub(bytes, Ordering::SeqCst);
                }
                this.rejects.inc();
                let wait = (deficit / rate).ceil();
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                return Err((wait as u64).max(1));
            }
            bucket.tokens -= needed;
        }
        let reserved = if this.spec.max_inflight_bytes.is_some() {
            this.inflight_gauge
                .set(this.inflight_bytes.load(Ordering::SeqCst) as i64);
            bytes
        } else {
            0
        };
        Ok(QuotaAdmission {
            state: Arc::clone(this),
            bytes: reserved,
        })
    }

    /// `429`s answered so far (for tests and `/metrics` readers).
    pub fn rejects(&self) -> u64 {
        self.rejects.get()
    }
}

/// Holds a tenant's in-flight byte reservation for the duration of one
/// admitted ingest; dropping it releases the bytes.
#[derive(Debug)]
pub struct QuotaAdmission {
    state: Arc<QuotaState>,
    bytes: u64,
}

impl Drop for QuotaAdmission {
    fn drop(&mut self) {
        if self.bytes > 0 {
            let after = self
                .state
                .inflight_bytes
                .fetch_sub(self.bytes, Ordering::SeqCst)
                .saturating_sub(self.bytes);
            self.state.inflight_gauge.set(after as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn state(spec: QuotaSpec) -> Arc<QuotaState> {
        Arc::new(QuotaState::new(spec, "t", &Registry::new()))
    }

    #[test]
    fn quota_spec_round_trips_and_rejects_bad_fields() {
        let spec = QuotaSpec {
            docs_per_sec: Some(12.5),
            burst_docs: Some(40),
            max_inflight_bytes: Some(1 << 20),
        };
        assert_eq!(QuotaSpec::from_value(&spec.to_value()), Some(spec));
        assert_eq!(
            QuotaSpec::from_value(&Value::Object(Vec::new())),
            Some(QuotaSpec::default())
        );
        let zero_rate = Value::Object(vec![(
            "docs_per_sec".to_string(),
            Value::Number(Number::F64(0.0)),
        )]);
        assert_eq!(QuotaSpec::from_value(&zero_rate), None);
        assert_eq!(QuotaSpec::from_value(&Value::String("x".into())), None);
    }

    #[test]
    fn token_bucket_enforces_rate_and_refills_over_time() {
        let q = state(QuotaSpec {
            docs_per_sec: Some(10.0),
            burst_docs: Some(10),
            max_inflight_bytes: None,
        });
        let t0 = Instant::now();
        // The full burst admits immediately…
        QuotaState::admit_at(&q, 10, 0, t0).expect("burst admits");
        // …then the bucket is empty and the next batch is refused with
        // a deficit-derived Retry-After.
        let retry = QuotaState::admit_at(&q, 10, 0, t0).expect_err("empty bucket refuses");
        assert_eq!(retry, 1, "10 docs at 10/s is one second away");
        assert_eq!(q.rejects(), 1);
        // One second later the refill covers it.
        QuotaState::admit_at(&q, 10, 0, t0 + Duration::from_secs(1)).expect("refilled");
        let retry = QuotaState::admit_at(&q, 30, 0, t0 + Duration::from_secs(1))
            .expect_err("over burst refuses");
        assert_eq!(retry, 3, "30-doc deficit at 10/s");
    }

    #[test]
    fn inflight_bytes_reserve_and_release_via_the_guard() {
        let q = state(QuotaSpec {
            docs_per_sec: None,
            burst_docs: None,
            max_inflight_bytes: Some(100),
        });
        let t0 = Instant::now();
        let first = QuotaState::admit_at(&q, 1, 60, t0).expect("fits");
        let refused = QuotaState::admit_at(&q, 1, 60, t0).expect_err("would exceed cap");
        assert_eq!(refused, 1);
        assert_eq!(q.rejects(), 1);
        drop(first);
        QuotaState::admit_at(&q, 1, 60, t0).expect("released bytes admit again");
    }

    #[test]
    fn failed_rate_check_rolls_back_the_byte_reservation() {
        let q = state(QuotaSpec {
            docs_per_sec: Some(1.0),
            burst_docs: Some(1),
            max_inflight_bytes: Some(100),
        });
        let t0 = Instant::now();
        let _admitted = QuotaState::admit_at(&q, 1, 10, t0).expect("first admits");
        QuotaState::admit_at(&q, 1, 10, t0).expect_err("rate refuses");
        assert_eq!(
            q.inflight_bytes.load(Ordering::SeqCst),
            10,
            "refused request must not leak its byte reservation"
        );
    }
}
