//! Ring-buffered structured events.
//!
//! Each event carries a level, a target (the subsystem emitting it), a
//! message, and key/value fields. The log keeps the most recent
//! [`EventLog::capacity`] events for snapshots; echoing to stderr is a
//! runtime toggle so `--quiet` is a single call rather than an `if` at
//! every call site.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum Level {
    /// Fine-grained diagnostics.
    Debug,
    /// Normal progress notes.
    Info,
    /// Something odd but recoverable.
    Warn,
    /// A failure the caller will surface.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        })
    }
}

/// One structured event.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Event {
    /// Monotonic sequence number (process-order of emission).
    pub seq: u64,
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, e.g. `"study"` or `"repro"`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// Structured key/value fields.
    pub fields: Vec<(String, String)>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:<5} {}] {}", self.level, self.target, self.message)?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// The ring buffer of recent events.
#[derive(Debug)]
pub struct EventLog {
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    echo: AtomicBool,
}

impl Default for EventLog {
    fn default() -> Self {
        Self::with_capacity(1024)
    }
}

impl EventLog {
    /// A log retaining the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            echo: AtomicBool::new(false),
        }
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Turn stderr echoing on or off (off by default; `--quiet` keeps it
    /// off, interactive tools turn it on).
    pub fn set_echo(&self, echo: bool) {
        self.echo.store(echo, Ordering::Relaxed);
    }

    /// Whether events are echoed to stderr.
    pub fn echo(&self) -> bool {
        self.echo.load(Ordering::Relaxed)
    }

    /// Record an event; echoes to stderr when enabled.
    ///
    /// Only `Info` and louder events reach stderr — `Debug` events stay
    /// in the ring for snapshots, so diagnostics (like a resume notice)
    /// never perturb the visible event stream of an otherwise identical
    /// run.
    pub fn emit(
        &self,
        level: Level,
        target: &str,
        message: impl Into<String>,
        fields: Vec<(String, String)>,
    ) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            level,
            target: target.to_string(),
            message: message.into(),
            fields,
        };
        if level >= Level::Info && self.echo() {
            eprintln!("{event}");
        }
        let mut ring = self.ring.lock();
        if ring.len() == self.capacity {
            // Loud drop: the eviction is counted and surfaces in the
            // snapshot as `events_dropped`, never a silent overwrite.
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        self.ring.lock().iter().cloned().collect()
    }

    /// Total events ever emitted (including ones the ring dropped).
    pub fn emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events the ring evicted to admit newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_newest() {
        let log = EventLog::with_capacity(3);
        for i in 0..5 {
            log.emit(Level::Info, "t", format!("m{i}"), vec![]);
        }
        let recent = log.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].message, "m2");
        assert_eq!(recent[2].message, "m4");
        assert_eq!(recent[2].seq, 4);
        assert_eq!(log.emitted(), 5);
        assert_eq!(log.dropped(), 2, "evictions are counted, not silent");
    }

    #[test]
    fn debug_events_are_retained_for_snapshots() {
        // Debug never reaches stderr (emit gates the echo on Info+), but
        // it must still land in the ring for `recent()` snapshots.
        let log = EventLog::with_capacity(4);
        log.set_echo(true);
        log.emit(Level::Debug, "t", "diag", vec![]);
        log.emit(Level::Info, "t", "progress", vec![]);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].level, Level::Debug);
        assert_eq!(recent[0].message, "diag");
    }

    #[test]
    fn no_drops_below_capacity() {
        let log = EventLog::with_capacity(8);
        for i in 0..8 {
            log.emit(Level::Info, "t", format!("m{i}"), vec![]);
        }
        assert_eq!(log.dropped(), 0);
        log.emit(Level::Info, "t", "overflow", vec![]);
        assert_eq!(log.dropped(), 1);
    }

    #[test]
    fn display_includes_fields() {
        let e = Event {
            seq: 0,
            level: Level::Warn,
            target: "pipeline".into(),
            message: "slow stage".into(),
            fields: vec![
                ("stage".into(), "classify".into()),
                ("ms".into(), "91".into()),
            ],
        };
        let s = e.to_string();
        assert!(s.contains("WARN"), "{s}");
        assert!(s.contains("pipeline"), "{s}");
        assert!(s.contains("stage=classify"), "{s}");
        assert!(s.contains("ms=91"), "{s}");
    }

    #[test]
    fn echo_toggle_round_trips() {
        let log = EventLog::default();
        assert!(!log.echo());
        log.set_echo(true);
        assert!(log.echo());
        log.set_echo(false);
        assert!(!log.echo());
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
    }
}
