//! Observability for the doxing-measurement pipeline.
//!
//! Three pieces, all dependency-free and safe to leave enabled in release
//! builds:
//!
//! * **Metrics** — a [`Registry`] of named atomic [`Counter`]s, [`Gauge`]s
//!   and log₂-bucketed [`Histogram`]s. Handles are `Arc`-backed and cheap
//!   to clone, so hot paths resolve them once and update lock-free.
//! * **Spans** — [`StageSpan`] is an RAII timer that records its elapsed
//!   wall-clock time into a histogram on drop, via the [`Recorder`] trait
//!   so callers can instrument against any registry (or a
//!   [`NoopRecorder`]) rather than a process-global. A default process
//!   [`global`] registry exists for the common case.
//! * **Events** — a ring-buffered structured [`EventLog`] (level, target,
//!   message, key/value fields) that replaces scattered `eprintln!` calls.
//!   Echoing to stderr is a runtime toggle, so `--quiet` is one call.
//! * **Redaction** — [`redact()`] wraps a sensitive string so only its
//!   length and a stable fingerprint can reach a sink; `dox-lint`'s
//!   `pii-taint` dataflow rule enforces that document content goes
//!   through it.
//! * **Traces** — [`Tracer`] follows sampled documents hop by hop
//!   through the pipeline with seeded ids and sim-clock timestamps, so
//!   the exported JSONL is byte-identical for a given
//!   `(config, seed, sampling)` at any worker/shard topology.
//! * **HTTP** — [`http`] is a minimal HTTP/1.1 substrate (router with
//!   `:param` captures, bounded worker pool, keep-alive, body limits)
//!   shared by the telemetry endpoint and the `dox-serve` daemon.
//! * **Telemetry** — [`Telemetry`] serves the live snapshot, rolling
//!   per-stage docs/s, and recent traces over that server
//!   (`GET /metrics`, `GET /traces`).
//!
//! Metrics observe the computation without participating in it: recording
//! must never change what the pipeline produces. The study stays a pure
//! function of `(config, seed)` whether or not anything reads the
//! registry.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod http;
pub mod metrics;
pub mod redact;
pub mod snapshot;
pub mod span;
pub mod telemetry;
pub mod trace;

pub use event::{Event, EventLog, Level};
pub use http::{HttpServer, Request, Response, Router, ServerConfig};
pub use metrics::{Counter, Gauge, Histogram, LocalHistogram, Registry};
pub use redact::{redact, Redacted};
pub use snapshot::{HistogramSnapshot, Snapshot};
pub use span::{NoopRecorder, Recorder, StageSpan};
pub use telemetry::Telemetry;
pub use trace::{Trace, TraceConfig, TraceHop, Tracer, SAMPLE_ALL};

use std::sync::OnceLock;

/// The default process-wide registry.
///
/// Instrumentation that is not handed an explicit registry records here;
/// `repro --metrics` snapshots it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Emit a structured event to the [`global`] registry's log.
///
/// ```
/// dox_obs::emit!(dox_obs::Level::Info, "repro", "study completed",
///                elapsed_ms = 12, scale = 0.05);
/// ```
#[macro_export]
macro_rules! emit {
    ($level:expr, $target:expr, $msg:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::global().events().emit(
            $level,
            $target,
            $msg,
            vec![$((stringify!($key).to_string(), format!("{}", $value))),*],
        )
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_registry_is_shared() {
        global().counter("test.obs.global").add(2);
        global().counter("test.obs.global").add(3);
        assert_eq!(global().counter("test.obs.global").get(), 5);
    }

    #[test]
    fn emit_macro_records_fields() {
        emit!(
            Level::Warn,
            "test",
            "something odd",
            code = 7,
            where_ = "here"
        );
        let events = global().events().recent();
        let e = events
            .iter()
            .rev()
            .find(|e| e.target == "test")
            .expect("event recorded");
        assert_eq!(e.level, Level::Warn);
        assert_eq!(e.message, "something odd");
        assert!(e.fields.contains(&("code".to_string(), "7".to_string())));
    }
}
