//! RAII stage timers and the recorder abstraction they write through.

use crate::metrics::Registry;
use std::time::Instant;

/// Where instrumentation lands. Implemented by [`Registry`] (records into
/// named metrics) and [`NoopRecorder`] (discards everything), so library
/// code can take `&dyn Recorder` instead of reaching for a process-global.
pub trait Recorder {
    /// Add `delta` to the counter named `name`.
    fn add(&self, name: &str, delta: u64);

    /// Set the gauge named `name`.
    fn set_gauge(&self, name: &str, value: i64);

    /// Record one observation into the histogram named `name`.
    fn observe(&self, name: &str, value: u64);
}

impl Recorder for Registry {
    fn add(&self, name: &str, delta: u64) {
        self.counter(name).add(delta);
    }

    fn set_gauge(&self, name: &str, value: i64) {
        self.gauge(name).set(value);
    }

    fn observe(&self, name: &str, value: u64) {
        self.histogram(name).observe(value);
    }
}

/// A recorder that discards everything — instrument unconditionally, pay
/// nothing when observability is off.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn add(&self, _name: &str, _delta: u64) {}

    fn set_gauge(&self, _name: &str, _value: i64) {}

    fn observe(&self, _name: &str, _value: u64) {}
}

/// An RAII wall-clock timer: records its elapsed nanoseconds into the
/// histogram named after the span when dropped.
///
/// ```
/// let registry = dox_obs::Registry::new();
/// {
///     let _span = dox_obs::StageSpan::enter(&registry, "study.phase.demo");
///     // ... timed work ...
/// }
/// assert_eq!(registry.histogram("study.phase.demo").count(), 1);
/// ```
pub struct StageSpan<'a> {
    recorder: &'a dyn Recorder,
    name: &'a str,
    start: Instant,
}

impl<'a> StageSpan<'a> {
    /// Start timing `name` against `recorder`.
    pub fn enter(recorder: &'a dyn Recorder, name: &'a str) -> Self {
        Self {
            recorder,
            name,
            start: Instant::now(),
        }
    }

    /// The span's histogram name.
    pub fn name(&self) -> &str {
        self.name
    }
}

impl Drop for StageSpan<'_> {
    fn drop(&mut self) {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.recorder.observe(self.name, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_once_on_drop() {
        let registry = Registry::new();
        {
            let _span = StageSpan::enter(&registry, "stage.alpha");
            let _inner = StageSpan::enter(&registry, "stage.beta");
        }
        assert_eq!(registry.histogram("stage.alpha").count(), 1);
        assert_eq!(registry.histogram("stage.beta").count(), 1);
        assert!(registry.histogram("stage.alpha").sum() > 0);
    }

    #[test]
    fn noop_recorder_discards() {
        let noop = NoopRecorder;
        {
            let _span = StageSpan::enter(&noop, "ignored");
        }
        noop.add("ignored", 5);
        noop.set_gauge("ignored", 5);
        // Nothing to assert beyond "it runs" — there is no state.
    }

    #[test]
    fn recorder_trait_reaches_named_metrics() {
        let registry = Registry::new();
        let r: &dyn Recorder = &registry;
        r.add("c", 3);
        r.set_gauge("g", -2);
        r.observe("h", 10);
        assert_eq!(registry.counter("c").get(), 3);
        assert_eq!(registry.gauge("g").get(), -2);
        assert_eq!(registry.histogram("h").count(), 1);
    }

    #[test]
    fn dyn_recorder_spans_compile_and_record() {
        let registry = Registry::new();
        let r: &dyn Recorder = &registry;
        {
            let _span = StageSpan::enter(r, "dyn.span");
        }
        assert_eq!(registry.histogram("dyn.span").count(), 1);
    }
}
