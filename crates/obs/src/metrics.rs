//! The metrics registry: named atomic counters, gauges, and histograms.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so 64 value buckets cover all of
/// `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a recorded value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive `(low, high)` value bounds of bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

/// A monotonically increasing counter. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed value. Cloning shares the underlying cell.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Replace the value.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram of `u64` observations (typically span
/// durations in nanoseconds). Cloning shares the underlying cells.
///
/// Quantiles are bucket-midpoint estimates: exact to within a factor of 2,
/// which is plenty for "where does the time go" profiling while keeping
/// recording a single atomic increment.
#[derive(Clone, Debug, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn observe(&self, value: u64) {
        let core = &*self.0;
        core.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        core.count.fetch_add(1, Ordering::Relaxed);
        core.sum.fetch_add(value, Ordering::Relaxed);
        core.min.fetch_min(value, Ordering::Relaxed);
        core.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Smallest observed value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        match self.0.min.load(Ordering::Relaxed) {
            u64::MAX if self.count() == 0 => None,
            v => Some(v),
        }
    }

    /// Largest observed value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        if self.count() == 0 {
            None
        } else {
            Some(self.0.max.load(Ordering::Relaxed))
        }
    }

    /// Estimated value at quantile `q ∈ [0, 1]` (`None` when empty).
    ///
    /// Returns the midpoint of the bucket containing the rank-`⌈q·n⌉`
    /// observation, clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let rank = ((q * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                let (lo, hi) = bucket_bounds(i);
                let mid = lo + (hi - lo) / 2;
                let lo_clamp = self.min().unwrap_or(mid);
                let hi_clamp = self.max().unwrap_or(mid);
                return Some(mid.clamp(lo_clamp, hi_clamp));
            }
        }
        self.max()
    }
}

/// A thread-local, non-atomic histogram for contended hot loops: workers
/// record into their own `LocalHistogram` and merge once per chunk,
/// turning per-item atomic traffic into one merge per thread.
#[derive(Debug, Clone)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl LocalHistogram {
    /// A fresh, empty local histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record a duration as nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Observations recorded locally.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Fold this local histogram into a shared one, leaving `self` empty.
    pub fn merge_into(&mut self, shared: &Histogram) {
        if self.count == 0 {
            return;
        }
        let core = &*shared.0;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b > 0 {
                core.buckets[i].fetch_add(b, Ordering::Relaxed);
            }
        }
        core.count.fetch_add(self.count, Ordering::Relaxed);
        core.sum.fetch_add(self.sum, Ordering::Relaxed);
        core.min.fetch_min(self.min, Ordering::Relaxed);
        core.max.fetch_max(self.max, Ordering::Relaxed);
        *self = Self::default();
    }
}

#[derive(Clone, Debug)]
pub(crate) enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named-metric registry. Cloning shares the underlying store, so a
/// `Registry` value is itself a cheap handle.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    pub(crate) metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
    pub(crate) events: Arc<crate::event::EventLog>,
}

impl Registry {
    /// An empty registry with its own event log.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            // dox-lint:allow(panic-hygiene) documented contract: kind mismatch is programmer error
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            // dox-lint:allow(panic-hygiene) documented contract: kind mismatch is programmer error
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut metrics = self.metrics.lock();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            // dox-lint:allow(panic-hygiene) documented contract: kind mismatch is programmer error
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The structured event log attached to this registry.
    pub fn events(&self) -> &crate::event::EventLog {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Every value lands inside its bucket's bounds.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn histogram_quantiles_track_the_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(1000));
        // log2 buckets: estimates are within a factor of 2.
        let p50 = h.quantile(0.5).unwrap();
        assert!((250..=1000).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((500..=1000).contains(&p99), "p99 {p99}");
        assert!(h.quantile(0.0).unwrap() >= 1);
        assert_eq!(h.quantile(1.0).unwrap(), h.quantile(0.9999).unwrap());
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        let registry = Registry::new();
        let counter = registry.counter("hits");
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let counter = counter.clone();
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(registry.counter("hits").get(), 80_000);
    }

    #[test]
    fn concurrent_histogram_observations_are_lossless() {
        let h = Histogram::default();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..5_000u64 {
                        h.observe(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 20_000);
    }

    #[test]
    fn local_histogram_merge_matches_direct_observation() {
        let direct = Histogram::default();
        let merged = Histogram::default();
        let mut local = LocalHistogram::new();
        for v in [0u64, 1, 5, 1000, 123_456, 1 << 40] {
            direct.observe(v);
            local.record(v);
        }
        local.merge_into(&merged);
        assert_eq!(local.count(), 0, "merge drains the local histogram");
        assert_eq!(direct.count(), merged.count());
        assert_eq!(direct.sum(), merged.sum());
        assert_eq!(direct.min(), merged.min());
        assert_eq!(direct.max(), merged.max());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(direct.quantile(q), merged.quantile(q));
        }
    }

    #[test]
    fn gauge_set_and_add() {
        let registry = Registry::new();
        let g = registry.gauge("depth");
        g.set(10);
        g.add(-3);
        assert_eq!(registry.gauge("depth").get(), 7);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = Registry::new();
        registry.counter("x");
        registry.histogram("x");
    }
}
