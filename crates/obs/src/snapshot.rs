//! Point-in-time serializable views of a [`Registry`].

use crate::event::Event;
use crate::metrics::{Metric, Registry};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Summary of one histogram (span durations are nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations (total time, for span histograms).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

/// A point-in-time view of every metric and recent event in a registry.
#[derive(Debug, Clone, Serialize)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name (stage spans live here).
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Events the ring buffer evicted to admit newer ones (loud-drop
    /// accounting: `events` below is complete iff this is 0).
    pub events_dropped: u64,
    /// Recent structured events, oldest first.
    pub events: Vec<Event>,
}

impl Registry {
    /// Capture the current state of every metric plus recent events.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock();
        let mut counters = BTreeMap::new();
        let mut gauges = BTreeMap::new();
        let mut spans = BTreeMap::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    spans.insert(
                        name.clone(),
                        HistogramSnapshot {
                            count: h.count(),
                            sum: h.sum(),
                            min: h.min().unwrap_or(0),
                            max: h.max().unwrap_or(0),
                            p50: h.quantile(0.50).unwrap_or(0),
                            p90: h.quantile(0.90).unwrap_or(0),
                            p99: h.quantile(0.99).unwrap_or(0),
                        },
                    );
                }
            }
        }
        drop(metrics);
        Snapshot {
            counters,
            gauges,
            spans,
            events_dropped: self.events.dropped(),
            events: self.events.recent(),
        }
    }
}

/// Format a nanosecond quantity with a readable unit.
pub fn fmt_nanos(nanos: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let n = nanos as f64;
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.1} µs", n / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.1} ms", n / 1e6)
    } else {
        format!("{:.2} s", n / 1e9)
    }
}

impl Snapshot {
    /// Render the per-stage timing table plus counters as aligned text —
    /// the stderr profile `repro` prints after a run.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            let _ = writeln!(
                out,
                "{:<34} {:>10} {:>10} {:>10} {:>10}",
                "stage", "count", "total", "p50", "p99"
            );
            for (name, h) in &self.spans {
                let _ = writeln!(
                    out,
                    "{:<34} {:>10} {:>10} {:>10} {:>10}",
                    name,
                    h.count,
                    fmt_nanos(h.sum),
                    fmt_nanos(h.p50),
                    fmt_nanos(h.p99)
                );
            }
        }
        if !self.counters.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            let _ = writeln!(out, "{:<34} {:>10}", "counter", "value");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "{name:<34} {value:>10}");
            }
        }
        if !self.gauges.is_empty() {
            out.push('\n');
            let _ = writeln!(out, "{:<34} {:>10}", "gauge", "value");
            for (name, value) in &self.gauges {
                let _ = writeln!(out, "{name:<34} {value:>10}");
            }
        }
        if self.events_dropped > 0 {
            out.push('\n');
            let _ = writeln!(
                out,
                "events dropped: {} (ring evicted; raise the event-log capacity to keep them)",
                self.events_dropped
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Level;

    fn populated() -> Registry {
        let registry = Registry::new();
        registry.counter("pipeline.funnel.collected").add(100);
        registry.counter("pipeline.funnel.classified_dox").add(9);
        registry.gauge("pipeline.batch.threads").set(8);
        let h = registry.histogram("pipeline.classify");
        for v in [100u64, 200, 400, 800, 100_000] {
            h.observe(v);
        }
        registry
            .events()
            .emit(Level::Info, "test", "done", vec![("k".into(), "v".into())]);
        registry
    }

    #[test]
    fn snapshot_captures_all_metric_kinds() {
        let s = populated().snapshot();
        assert_eq!(s.counters["pipeline.funnel.collected"], 100);
        assert_eq!(s.gauges["pipeline.batch.threads"], 8);
        let h = &s.spans["pipeline.classify"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 101_500);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 100_000);
        assert!(h.p50 >= h.min && h.p50 <= h.max);
        assert!(h.p99 >= h.p50);
        assert_eq!(s.events.len(), 1);
    }

    #[test]
    fn fmt_nanos_units() {
        assert_eq!(fmt_nanos(999), "999 ns");
        assert_eq!(fmt_nanos(1_500), "1.5 µs");
        assert_eq!(fmt_nanos(2_500_000), "2.5 ms");
        assert_eq!(fmt_nanos(3_210_000_000), "3.21 s");
    }

    #[test]
    fn table_lists_spans_and_counters() {
        let table = populated().snapshot().render_table();
        assert!(table.contains("pipeline.classify"), "{table}");
        assert!(table.contains("pipeline.funnel.collected"), "{table}");
        assert!(table.contains("p99"), "{table}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(Registry::new().snapshot().render_table(), "");
    }

    #[test]
    fn snapshot_surfaces_event_drops() {
        let registry = Registry::new();
        assert_eq!(registry.snapshot().events_dropped, 0);
        let capacity = registry.events().capacity();
        for i in 0..capacity + 3 {
            registry
                .events()
                .emit(Level::Info, "test", format!("e{i}"), vec![]);
        }
        let s = registry.snapshot();
        assert_eq!(s.events_dropped, 3);
        assert!(s.render_table().contains("events dropped: 3"));
    }
}
