//! Redaction for sensitive values bound for log sinks.
//!
//! The corpus is synthetic, but the pipeline treats it exactly like the
//! real thing the paper studied: document bodies, names, addresses and
//! OSN handles never reach an event payload or `stderr` verbatim. A
//! [`Redacted`] wrapper is the only sanctioned way to mention such a
//! value in a sink — its `Display`/`Debug` render a length and a stable
//! fingerprint, never the content — and the `pii-taint` rule in
//! `dox-lint` treats `redact(…)` as the sole taint sanitizer.
//!
//! ```
//! use dox_obs::redact;
//!
//! let body = "Jane Doe, 123 Main St, SSN 000-00-0000";
//! let shown = redact(body).to_string();
//! assert!(!shown.contains("Jane"));
//! assert!(shown.starts_with("[redacted"));
//! ```

use std::fmt;

/// A value whose `Display`/`Debug` output reveals only its length and a
/// stable fingerprint. Construct with [`redact`].
///
/// The fingerprint (FNV-1a, truncated to 32 bits) lets operators
/// correlate events about the same document — "is this the same body the
/// dedup stage flagged?" — without ever seeing the text.
#[derive(Clone, Copy)]
pub struct Redacted<T>(T);

/// Wrap a sensitive value for safe logging.
pub fn redact<T: AsRef<str>>(value: T) -> Redacted<T> {
    Redacted(value)
}

impl<T: AsRef<str>> Redacted<T> {
    /// Character count of the hidden value.
    pub fn len_chars(&self) -> usize {
        self.0.as_ref().chars().count()
    }

    /// Stable 32-bit fingerprint of the hidden value.
    pub fn fingerprint(&self) -> u32 {
        fnv1a(self.0.as_ref().as_bytes()) as u32
    }
}

impl<T: AsRef<str>> fmt::Display for Redacted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[redacted {} chars, fp={:08x}]",
            self.len_chars(),
            self.fingerprint()
        )
    }
}

impl<T: AsRef<str>> fmt::Debug for Redacted<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// FNV-1a over `bytes` — tiny, dependency-free, stable across runs and
/// platforms (unlike `DefaultHasher`, whose seed is randomized).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_never_contains_content() {
        let secret = "Jane Doe, 123 Main St";
        let shown = redact(secret).to_string();
        assert!(!shown.contains("Jane"));
        assert!(!shown.contains("Main"));
        assert!(shown.contains("21 chars"));
    }

    #[test]
    fn debug_matches_display() {
        let r = redact("abc");
        assert_eq!(format!("{r}"), format!("{r:?}"));
    }

    #[test]
    fn fingerprint_is_stable_and_discriminates() {
        assert_eq!(redact("abc").fingerprint(), redact("abc").fingerprint());
        assert_ne!(redact("abc").fingerprint(), redact("abd").fingerprint());
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn counts_chars_not_bytes() {
        assert_eq!(redact("héllo").len_chars(), 5);
    }
}
