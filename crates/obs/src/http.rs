//! A minimal HTTP/1.1 server substrate over [`std::net::TcpListener`],
//! hardened for overload.
//!
//! The no-external-registry constraint rules out hyper/axum; the
//! telemetry endpoint proved a hand-rolled server is enough for an
//! operator port, and service mode (`dox-serve`) needs the same thing
//! with a little more: method+path dispatch with `:param` captures,
//! request bodies with an enforced size limit, HTTP/1.1 keep-alive, and
//! a bounded worker pool so one slow client cannot starve the rest.
//!
//! Overload is adversarial in this problem domain — a doxer who notices
//! they are being monitored can cheaply open sockets, drip headers, or
//! post oversized bodies — so the server *sheds* rather than queues:
//!
//! * **Admission control** — the backlog between the acceptor and the
//!   worker pool is bounded by [`ServerConfig::max_backlog`]; overflow
//!   connections are answered `503` + `Retry-After` immediately and
//!   closed, counted in `http.shed_total`, with the live queue depth in
//!   the `http.backlog_depth` gauge.
//! * **Per-request deadlines** — every request gets a wall-clock budget
//!   ([`ServerConfig::request_deadline`]) from accept (first request) or
//!   first byte (keep-alive successors) to the last response byte. Read
//!   and write timeouts are recomputed from the remaining budget before
//!   every socket operation, so a slow-drip client (slowloris) cannot
//!   pin a worker past the budget: breach answers `408` and closes.
//! * **Header caps** — at most [`ServerConfig::max_header_lines`] lines
//!   of at most [`ServerConfig::max_header_line_bytes`] each; breach
//!   answers `431` and closes.
//! * **Accept backoff** — `accept()` errors (fd exhaustion, aborted
//!   handshakes) back off exponentially instead of hot-spinning, counted
//!   in `http.accept_errors`.
//!
//! * [`Router`] — ordered `(method, pattern)` routes; a path that
//!   matches a pattern under the *wrong* method yields `405 Method Not
//!   Allowed` with an `Allow` header, an unknown path `404`.
//! * [`HttpServer`] — an acceptor thread feeding a bounded pool of
//!   worker threads through a condvar-signalled queue; each worker runs
//!   a keep-alive connection loop under the deadlines above.
//! * [`Request`] / [`Response`] — just enough of HTTP to write JSON
//!   handlers against.
//!
//! Nothing served here ever feeds the `ExperimentReport`, so wall-clock
//! time and thread scheduling are fine in this module.

use crate::metrics::{Counter, Gauge, Registry};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default cap on request bodies; larger requests get `413`.
pub const DEFAULT_MAX_BODY: usize = 4 * 1024 * 1024;

/// Default cap on connections waiting for a worker; overflow is shed
/// with `503`.
pub const DEFAULT_MAX_BACKLOG: usize = 1024;

/// Default wall-clock budget per request (accept / first byte to last
/// response byte).
pub const DEFAULT_REQUEST_DEADLINE: Duration = Duration::from_secs(30);

/// How long a keep-alive connection may sit idle between requests
/// before the worker closes it.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// Floor for recomputed per-phase socket timeouts: `set_read_timeout`
/// rejects zero, and sub-millisecond waits just spin.
const MIN_IO_TICK: Duration = Duration::from_millis(5);

/// Bounded window for best-effort error/shed writes and for flushing a
/// response whose budget expired during handler execution. Keeps a
/// zero-window client from pinning the acceptor or a worker.
const ERROR_WRITE_WINDOW: Duration = Duration::from_millis(250);

/// First accept-error backoff delay; doubles per consecutive error.
const ACCEPT_BACKOFF_BASE: Duration = Duration::from_millis(1);

/// Accept-error backoff ceiling.
const ACCEPT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Tunables for [`HttpServer`]: pool size, body cap, and the
/// overload-resilience knobs. [`ServerConfig::default`] matches the
/// historical behaviour of [`HttpServer::start`] plus safe bounds.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Connection worker threads (minimum 1).
    pub workers: usize,
    /// Request body cap in bytes; larger bodies answer `413`.
    pub max_body: usize,
    /// Connections allowed to wait for a worker; overflow connections
    /// are answered `503` + `Retry-After` and closed immediately.
    pub max_backlog: usize,
    /// Wall-clock budget per request: from accept (first request on a
    /// connection, queue wait included) or from the first request byte
    /// (keep-alive successors) to the last response byte. Breach during
    /// parse answers `408`; a response that cannot be flushed within
    /// the budget (plus a short grace window) closes the connection.
    pub request_deadline: Duration,
    /// How long a keep-alive connection may idle between requests.
    pub keep_alive_idle: Duration,
    /// Cap on header lines per request (request line excluded); breach
    /// answers `431`.
    pub max_header_lines: usize,
    /// Cap on the byte length of the request line and of each header
    /// line; breach answers `431`.
    pub max_header_line_bytes: usize,
    /// `Retry-After` seconds advertised on `503` sheds.
    pub retry_after_secs: u64,
    /// Registry receiving the `http.*` counters and gauges.
    pub registry: Registry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_body: DEFAULT_MAX_BODY,
            max_backlog: DEFAULT_MAX_BACKLOG,
            request_deadline: DEFAULT_REQUEST_DEADLINE,
            keep_alive_idle: KEEP_ALIVE_IDLE,
            max_header_lines: 64,
            max_header_line_bytes: 8 * 1024,
            retry_after_secs: 1,
            registry: Registry::new(),
        }
    }
}

/// The `http.*` instruments, resolved once at server start.
#[derive(Clone, Debug)]
struct HttpMetrics {
    /// Connections currently waiting for a worker.
    backlog_depth: Gauge,
    /// Connections shed with `503` at admission.
    shed_total: Counter,
    /// `accept()` errors (each one also backs the acceptor off).
    accept_errors: Counter,
    /// Requests dispatched to a handler.
    requests_total: Counter,
    /// Requests cut by the per-request deadline (`408` or a dropped
    /// response write).
    deadline_hits: Counter,
    /// Requests rejected for header count/length (`431`).
    header_rejects: Counter,
    /// Requests rejected as unparseable (`400`, e.g. malformed
    /// `Content-Length`).
    bad_requests: Counter,
}

impl HttpMetrics {
    fn new(registry: &Registry) -> Self {
        Self {
            backlog_depth: registry.gauge("http.backlog_depth"),
            shed_total: registry.counter("http.shed_total"),
            accept_errors: registry.counter("http.accept_errors"),
            requests_total: registry.counter("http.requests_total"),
            deadline_hits: registry.counter("http.deadline_hits"),
            header_rejects: registry.counter("http.header_rejects"),
            bad_requests: registry.counter("http.bad_requests"),
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/v1/victims/42`).
    pub path: String,
    /// The raw query string after `?`, if any.
    pub query: Option<String>,
    /// `:name` captures from the matched route pattern, in pattern order.
    pub params: Vec<(String, String)>,
    /// The request body (empty for bodyless requests).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a `:name` capture from the matched route.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Look up a `key=value` pair from the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// An HTTP response: status, content type, extra headers and payload.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `Allow` on a 405).
    pub headers: Vec<(String, String)>,
    /// The response payload.
    pub payload: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, payload: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            payload: payload.into(),
        }
    }

    /// `200 OK` with a JSON payload.
    pub fn ok(payload: impl Into<String>) -> Self {
        Self::json(200, payload)
    }

    /// A JSON error envelope: `{"error":"…"}`.
    pub fn error(status: u16, message: &str) -> Self {
        let escaped: String = message.chars().flat_map(char::escape_default).collect();
        Self::json(status, format!("{{\"error\":\"{escaped}\"}}"))
    }

    /// Add a header, builder style.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Add a `Retry-After: <secs>` header, builder style — the shed and
    /// quota paths advertise when the client should try again.
    #[must_use]
    pub fn retry_after(self, secs: u64) -> Self {
        self.with_header("Retry-After", secs.to_string())
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// One segment of a route pattern.
enum Segment {
    Literal(String),
    Param(String),
}

/// A registered route.
struct Route {
    method: String,
    segments: Vec<Segment>,
    handler: Box<dyn Fn(&Request) -> Response + Send + Sync>,
}

impl Route {
    /// Match `path` against the pattern, returning the `:name` captures.
    fn matches(&self, path: &str) -> Option<Vec<(String, String)>> {
        let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
        let pattern_empty = self.segments.is_empty();
        let path_empty = parts.iter().all(|p| p.is_empty());
        if pattern_empty || path_empty {
            return (pattern_empty && path_empty).then(Vec::new);
        }
        if parts.len() != self.segments.len() {
            return None;
        }
        let mut params = Vec::new();
        for (seg, part) in self.segments.iter().zip(&parts) {
            match seg {
                Segment::Literal(lit) => {
                    if lit != part {
                        return None;
                    }
                }
                Segment::Param(name) => {
                    params.push((name.clone(), (*part).to_string()));
                }
            }
        }
        Some(params)
    }
}

/// Method+path dispatch over an ordered route table.
///
/// ```
/// use dox_obs::http::{Request, Response, Router};
///
/// let router = Router::new()
///     .route("GET", "/v1/victims/:id", |req: &Request| {
///         Response::ok(format!("{{\"id\":\"{}\"}}", req.param("id").unwrap_or("")))
///     });
/// ```
#[must_use = "a router does nothing until served by HttpServer::start"]
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler for `method` + `pattern`. Pattern segments
    /// starting with `:` capture the matching path segment into
    /// [`Request::params`].
    pub fn route(
        mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.strip_prefix(':').map_or_else(
                    || Segment::Literal(s.to_string()),
                    |name| Segment::Param(name.to_string()),
                )
            })
            .collect();
        self.routes.push(Route {
            method: method.to_uppercase(),
            segments,
            handler: Box::new(handler),
        });
        self
    }

    /// Append every route of `other` after this router's own — lets a
    /// service mount the telemetry routes next to its API on one port.
    pub fn merge(mut self, other: Router) -> Self {
        self.routes.extend(other.routes);
        self
    }

    /// Dispatch a request: `200`-range from the handler, `405` with an
    /// `Allow` header when the path exists under other methods, `404`
    /// when no pattern matches at all.
    pub fn dispatch(&self, request: &mut Request) -> Response {
        let mut allowed: Vec<String> = Vec::new();
        for route in &self.routes {
            let Some(params) = route.matches(&request.path) else {
                continue;
            };
            if route.method == request.method {
                request.params = params;
                return (route.handler)(request);
            }
            if !allowed.contains(&route.method) {
                allowed.push(route.method.clone());
            }
        }
        if allowed.is_empty() {
            Response::error(404, "not found")
        } else {
            let mut response = Response::error(405, "method not allowed");
            response
                .headers
                .push(("Allow".to_string(), allowed.join(", ")));
            response
        }
    }
}

/// Connections waiting for a worker, plus the shutdown flag. Each entry
/// carries its accept timestamp so the first request's deadline covers
/// queue wait.
#[derive(Debug)]
struct Backlog {
    queue: Mutex<VecDeque<(TcpStream, Instant)>>,
    ready: Condvar,
    stop: AtomicBool,
}

/// Immutable state every worker shares: routes, tunables, instruments.
struct Shared {
    router: Router,
    config: ServerConfig,
    metrics: HttpMetrics,
}

/// A running HTTP server: one acceptor thread and a bounded pool of
/// connection workers. Stop it with [`HttpServer::stop`]; dropping it
/// also shuts everything down.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    backlog: Arc<Backlog>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (port 0 for ephemeral) and serve `router` on a pool
    /// of `workers` threads, rejecting request bodies over `max_body`
    /// bytes with `413`. Every other tunable takes its
    /// [`ServerConfig::default`]; use [`HttpServer::start_with`] to set
    /// the overload knobs and the metrics registry.
    ///
    /// # Errors
    /// Returns the bind error when the address is unavailable.
    pub fn start(
        addr: &str,
        router: Router,
        workers: usize,
        max_body: usize,
    ) -> std::io::Result<Self> {
        HttpServer::start_with(
            addr,
            router,
            ServerConfig {
                workers,
                max_body,
                ..ServerConfig::default()
            },
        )
    }

    /// Bind `addr` (port 0 for ephemeral) and serve `router` under the
    /// given [`ServerConfig`].
    ///
    /// # Errors
    /// Returns the bind error when the address is unavailable.
    pub fn start_with(addr: &str, router: Router, config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let backlog = Arc::new(Backlog {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let metrics = HttpMetrics::new(&config.registry);
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            router,
            config,
            metrics,
        });
        let acceptor = {
            let backlog = Arc::clone(&backlog);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("dox-http-accept".to_string())
                .spawn(move || accept_loop(&listener, &backlog, &shared))?
        };
        let pool = (0..workers)
            .map(|i| {
                let backlog = Arc::clone(&backlog);
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dox-http-{i}"))
                    .spawn(move || worker_loop(&backlog, &shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            addr: local,
            backlog,
            acceptor: Some(acceptor),
            workers: pool,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the server down and join every thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.backlog.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection, then wake
        // every idle worker.
        let _ = TcpStream::connect(self.addr);
        self.backlog.ready.notify_all();
        let _ = acceptor.join();
        self.backlog.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Accept connections forever: admit into the bounded backlog, shed the
/// overflow with `503`, and back off exponentially on `accept()` errors
/// (fd exhaustion returns `EMFILE` in a tight loop — the old
/// `let Ok(stream) else continue` hot-spun through it).
fn accept_loop(listener: &TcpListener, backlog: &Backlog, shared: &Shared) {
    let mut consecutive_errors: u32 = 0;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                consecutive_errors = 0;
                if backlog.stop.load(Ordering::SeqCst) {
                    break;
                }
                let mut queue = backlog.queue.lock().unwrap_or_else(PoisonError::into_inner);
                if queue.len() >= shared.config.max_backlog.max(1) {
                    drop(queue);
                    shared.metrics.shed_total.inc();
                    shed(stream, shared.config.retry_after_secs);
                    continue;
                }
                queue.push_back((stream, Instant::now()));
                shared.metrics.backlog_depth.set(queue.len() as i64);
                drop(queue);
                backlog.ready.notify_one();
            }
            Err(_) => {
                if backlog.stop.load(Ordering::SeqCst) {
                    break;
                }
                shared.metrics.accept_errors.inc();
                consecutive_errors = consecutive_errors.saturating_add(1);
                let shift = consecutive_errors.saturating_sub(1).min(16);
                let delay = ACCEPT_BACKOFF_BASE
                    .saturating_mul(1 << shift)
                    .min(ACCEPT_BACKOFF_CAP);
                std::thread::sleep(delay);
            }
        }
    }
}

/// Answer a shed connection `503` + `Retry-After` without ever blocking
/// the acceptor: the response is a single small write under a bounded
/// write timeout, then the connection drops.
fn shed(mut stream: TcpStream, retry_after_secs: u64) {
    let _ = stream.set_write_timeout(Some(ERROR_WRITE_WINDOW));
    let _ = stream.set_nodelay(true);
    let response =
        Response::error(503, "server overloaded, retry later").retry_after(retry_after_secs);
    let _ = stream.write_all(&render_response(&response, true));
}

fn worker_loop(backlog: &Backlog, shared: &Shared) {
    loop {
        let (stream, accepted_at) = {
            let mut queue = backlog.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(entry) = queue.pop_front() {
                    shared.metrics.backlog_depth.set(queue.len() as i64);
                    break entry;
                }
                if backlog.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = backlog
                    .ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let _ = serve_connection(stream, accepted_at, shared, &backlog.stop);
    }
}

/// Outcome of one budgeted line read.
enum LineRead {
    /// A complete line (terminator included in the scan, stripped here).
    Line(String),
    /// The peer closed the connection.
    Eof,
    /// The per-request deadline expired mid-line.
    TimedOut,
    /// The line exceeded the header-line byte cap.
    TooLong,
}

/// Whether bytes arrived on an idle keep-alive connection.
enum DataWait {
    /// At least one request byte is buffered.
    Ready,
    /// The idle window elapsed with no data.
    Idle,
    /// The peer closed the connection.
    Eof,
}

/// `true` for the error kinds a socket timeout surfaces as.
fn is_timeout(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Wait up to `idle` for the next request's first byte (without
/// consuming it).
fn wait_for_data(reader: &mut BufReader<TcpStream>, idle: Duration) -> std::io::Result<DataWait> {
    if !reader.buffer().is_empty() {
        return Ok(DataWait::Ready);
    }
    reader
        .get_ref()
        .set_read_timeout(Some(idle.max(MIN_IO_TICK)))?;
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(DataWait::Eof),
            Ok(_) => return Ok(DataWait::Ready),
            Err(e) if is_timeout(e.kind()) => return Ok(DataWait::Idle),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Read one `\n`-terminated line, recomputing the socket read timeout
/// from the remaining deadline budget before every underlying read.
/// This is the slowloris defence: a client dripping one byte per
/// timeout window used to reset the clock on every byte; here the
/// budget only ever shrinks, so the total stall is bounded by the
/// deadline no matter how the bytes are paced.
fn read_line_within(
    reader: &mut BufReader<TcpStream>,
    deadline: Instant,
    max_len: usize,
) -> std::io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Ok(LineRead::TimedOut);
        }
        reader
            .get_ref()
            .set_read_timeout(Some(remaining.max(MIN_IO_TICK)))?;
        match reader.fill_buf() {
            Ok([]) => return Ok(LineRead::Eof),
            Ok(buf) => {
                let take = buf
                    .iter()
                    .position(|&b| b == b'\n')
                    .map_or(buf.len(), |i| i + 1);
                line.extend_from_slice(&buf[..take]);
                reader.consume(take);
                if line.len() > max_len {
                    return Ok(LineRead::TooLong);
                }
                if line.last() == Some(&b'\n') {
                    return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
                }
            }
            Err(e) if is_timeout(e.kind()) => return Ok(LineRead::TimedOut),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

/// Outcome of one budgeted body read.
enum BodyRead {
    /// The body arrived in full.
    Complete,
    /// The peer closed mid-body.
    Eof,
    /// The deadline expired mid-body.
    TimedOut,
}

/// Read exactly `buf.len()` body bytes under the remaining budget.
fn read_exact_within(
    reader: &mut BufReader<TcpStream>,
    buf: &mut [u8],
    deadline: Instant,
) -> std::io::Result<BodyRead> {
    let mut filled = 0usize;
    while filled < buf.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Ok(BodyRead::TimedOut);
        }
        reader
            .get_ref()
            .set_read_timeout(Some(remaining.max(MIN_IO_TICK)))?;
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(BodyRead::Eof),
            Ok(n) => filled += n,
            Err(e) if is_timeout(e.kind()) => return Ok(BodyRead::TimedOut),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(BodyRead::Complete)
}

/// Render a response to wire bytes.
fn render_response(response: &Response, close: bool) -> Vec<u8> {
    let mut extra = String::new();
    for (name, value) in &response.headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let connection = if close { "close" } else { "keep-alive" };
    format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{extra}Connection: {connection}\r\n\r\n{}",
        response.status,
        Response::reason(response.status),
        response.content_type,
        response.payload.len(),
        response.payload,
    )
    .into_bytes()
}

/// Write all of `bytes` before `deadline`, recomputing the socket write
/// timeout per syscall so a slow-reading client cannot stretch the
/// write phase past the budget.
fn write_all_within(
    stream: &mut TcpStream,
    bytes: &[u8],
    deadline: Instant,
) -> std::io::Result<bool> {
    let mut written = 0usize;
    while written < bytes.len() {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Ok(false);
        }
        stream.set_write_timeout(Some(remaining.max(MIN_IO_TICK)))?;
        match stream.write(&bytes[written..]) {
            Ok(0) => return Ok(false),
            Ok(n) => written += n,
            Err(e) if is_timeout(e.kind()) => return Ok(false),
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    stream.flush()?;
    Ok(true)
}

/// Best-effort terminal error response (`400`/`408`/`413`/`431`): one
/// bounded write, then the caller closes the connection. The connection
/// is no longer in a known framing state after any of these, so they
/// always carry `Connection: close`.
fn refuse(stream: &mut TcpStream, response: &Response) {
    let deadline = Instant::now() + ERROR_WRITE_WINDOW;
    let _ = write_all_within(stream, &render_response(response, true), deadline);
}

/// Keep-alive loop over one connection: parse → dispatch → respond until
/// the client closes, errors, goes idle, breaches a cap, or overruns its
/// deadline.
fn serve_connection(
    stream: TcpStream,
    accepted_at: Instant,
    shared: &Shared,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    let cfg = &shared.config;
    let metrics = &shared.metrics;
    // Responses are written in one buffered syscall; Nagle would hold
    // them behind the peer's delayed ACK (~40ms per round trip).
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    let mut first_request = true;
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // The first request's budget is anchored at accept, so time in
        // the backlog counts against it; keep-alive successors may idle
        // up to `keep_alive_idle` and their budget starts at the first
        // byte of the next request.
        let deadline = if first_request {
            accepted_at + cfg.request_deadline
        } else {
            match wait_for_data(&mut reader, cfg.keep_alive_idle)? {
                DataWait::Ready => Instant::now() + cfg.request_deadline,
                DataWait::Idle | DataWait::Eof => return Ok(()),
            }
        };
        first_request = false;

        // Request line (stray CRLFs between pipelined requests are
        // skipped, bounded by the header-line cap).
        let mut skipped_blanks = 0usize;
        let request_line = loop {
            match read_line_within(&mut reader, deadline, cfg.max_header_line_bytes)? {
                LineRead::Line(line) => {
                    if !line.trim().is_empty() {
                        break line;
                    }
                    skipped_blanks += 1;
                    if skipped_blanks > cfg.max_header_lines {
                        metrics.header_rejects.inc();
                        refuse(
                            reader.get_mut(),
                            &Response::error(400, "malformed request stream"),
                        );
                        return Ok(());
                    }
                }
                LineRead::Eof => return Ok(()),
                LineRead::TimedOut => {
                    metrics.deadline_hits.inc();
                    refuse(reader.get_mut(), &Response::error(408, "request timeout"));
                    return Ok(());
                }
                LineRead::TooLong => {
                    metrics.header_rejects.inc();
                    refuse(
                        reader.get_mut(),
                        &Response::error(431, "request line too long"),
                    );
                    return Ok(());
                }
            }
        };
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("").to_uppercase();
        let target = parts.next().unwrap_or("");
        let version = parts.next().unwrap_or("HTTP/1.1");

        // Headers: we care about Content-Length and Connection. A
        // Content-Length that does not parse is answered `400` and the
        // connection closed — treating garbage as "no body" would leave
        // the unread body bytes to desync the keep-alive framing.
        let mut content_length: usize = 0;
        let mut close_requested = version == "HTTP/1.0";
        let mut header_lines = 0usize;
        loop {
            let header = match read_line_within(&mut reader, deadline, cfg.max_header_line_bytes)? {
                LineRead::Line(line) => line,
                LineRead::Eof => return Ok(()),
                LineRead::TimedOut => {
                    metrics.deadline_hits.inc();
                    refuse(reader.get_mut(), &Response::error(408, "request timeout"));
                    return Ok(());
                }
                LineRead::TooLong => {
                    metrics.header_rejects.inc();
                    refuse(
                        reader.get_mut(),
                        &Response::error(431, "header line too long"),
                    );
                    return Ok(());
                }
            };
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            header_lines += 1;
            if header_lines > cfg.max_header_lines {
                metrics.header_rejects.inc();
                refuse(reader.get_mut(), &Response::error(431, "too many headers"));
                return Ok(());
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    match value.parse::<usize>() {
                        Ok(n) => content_length = n,
                        Err(_) => {
                            metrics.bad_requests.inc();
                            refuse(
                                reader.get_mut(),
                                &Response::error(400, "malformed Content-Length"),
                            );
                            return Ok(());
                        }
                    }
                } else if name.eq_ignore_ascii_case("connection") {
                    close_requested = value.eq_ignore_ascii_case("close");
                }
            }
        }

        if content_length > cfg.max_body {
            // Refuse to read an oversized payload; the connection is no
            // longer in a known state, so close it after answering.
            refuse(
                reader.get_mut(),
                &Response::error(413, "request body too large"),
            );
            return Ok(());
        }
        let mut body = vec![0u8; content_length];
        match read_exact_within(&mut reader, &mut body, deadline)? {
            BodyRead::Complete => {}
            BodyRead::Eof => return Ok(()),
            BodyRead::TimedOut => {
                metrics.deadline_hits.inc();
                refuse(reader.get_mut(), &Response::error(408, "request timeout"));
                return Ok(());
            }
        }

        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };
        let mut request = Request {
            method,
            path,
            query,
            params: Vec::new(),
            body,
        };
        metrics.requests_total.inc();
        let response = shared.router.dispatch(&mut request);

        // Last response byte is due at the deadline; a short grace
        // window lets a handler that finished just inside the budget
        // still flush. A client that will not drain the response within
        // that window loses the connection.
        let write_deadline = deadline.max(Instant::now() + ERROR_WRITE_WINDOW);
        let bytes = render_response(&response, close_requested);
        if !write_all_within(reader.get_mut(), &bytes, write_deadline)? {
            metrics.deadline_hits.inc();
            return Ok(());
        }
        if close_requested {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_router() -> Router {
        Router::new()
            .route("GET", "/ping", |_req| Response::ok("{\"pong\":true}"))
            .route("GET", "/v1/items/:id", |req: &Request| {
                Response::ok(format!(
                    "{{\"id\":\"{}\"}}",
                    req.param("id").unwrap_or_default()
                ))
            })
            .route("POST", "/v1/echo", |req: &Request| {
                Response::ok(format!("{{\"len\":{}}}", req.body.len()))
            })
            .route("GET", "/slow", |_req| {
                std::thread::sleep(Duration::from_millis(300));
                Response::ok("{\"slow\":true}")
            })
    }

    fn send(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        send(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn routes_dispatch_with_params() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 2, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/ping").contains("\"pong\":true"));
        let with_param = get(addr, "/v1/items/42");
        assert!(with_param.starts_with("HTTP/1.1 200"), "{with_param}");
        assert!(with_param.contains("\"id\":\"42\""), "{with_param}");
        server.stop();
    }

    #[test]
    fn unknown_paths_are_404_and_wrong_methods_405() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 2, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        let wrong_method = send(
            addr,
            "POST /ping HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        assert!(wrong_method.contains("Allow: GET"), "{wrong_method}");
        server.stop();
    }

    #[test]
    fn request_bodies_reach_handlers_and_oversized_ones_are_413() {
        let server =
            HttpServer::start("127.0.0.1:0", test_router(), 2, 64).expect("bind ephemeral");
        let addr = server.local_addr();
        let ok = send(
            addr,
            "POST /v1/echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(ok.contains("\"len\":5"), "{ok}");
        let huge = format!(
            "POST /v1/echo HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\nConnection: close\r\n\r\n{}",
            "x".repeat(100)
        );
        let too_large = send(addr, &huge);
        assert!(too_large.starts_with("HTTP/1.1 413"), "{too_large}");
        server.stop();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 2, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        for i in 0..3 {
            write!(stream, "GET /v1/items/{i} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
            // Keep-alive leaves the stream open, so read until the body
            // (which ends with `}`) has fully arrived.
            let mut response = String::new();
            let mut buf = [0u8; 1024];
            while !response.ends_with('}') {
                let n = stream.read(&mut buf).expect("read");
                assert!(n > 0, "server closed early: {response}");
                response.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            assert!(response.starts_with("HTTP/1.1 200"), "{response}");
            assert!(response.contains(&format!("\"id\":\"{i}\"")), "{response}");
            assert!(response.contains("Connection: keep-alive"), "{response}");
        }
        server.stop();
    }

    #[test]
    fn query_params_parse() {
        let router = Router::new().route("GET", "/v1/alerts", |req: &Request| {
            Response::ok(format!(
                "{{\"cursor\":\"{}\"}}",
                req.query_param("cursor").unwrap_or("0")
            ))
        });
        let server =
            HttpServer::start("127.0.0.1:0", router, 1, DEFAULT_MAX_BODY).expect("bind ephemeral");
        let with_query = get(server.local_addr(), "/v1/alerts?cursor=17&wait=0");
        assert!(with_query.contains("\"cursor\":\"17\""), "{with_query}");
        server.stop();
    }

    #[test]
    fn stop_joins_all_threads_and_releases_the_port() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 4, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/ping").contains("pong"));
        server.stop();
        assert!(
            TcpListener::bind(addr).is_ok(),
            "address released after stop"
        );
    }

    #[test]
    fn concurrent_connections_are_served_by_the_pool() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 4, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let response = get(addr, &format!("/v1/items/{i}"));
                    assert!(response.contains(&format!("\"id\":\"{i}\"")), "{response}");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        server.stop();
    }

    #[test]
    fn malformed_content_length_is_400_and_closes() {
        // Regression: `unwrap_or(0)` used to treat garbage as an empty
        // body, leaving the real body bytes to desync keep-alive framing.
        let registry = Registry::new();
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 2,
                registry: registry.clone(),
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral");
        let response = send(
            server.local_addr(),
            "POST /v1/echo HTTP/1.1\r\nHost: t\r\nContent-Length: banana\r\n\r\nhello",
        );
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        assert!(response.contains("Connection: close"), "{response}");
        assert!(response.contains("malformed Content-Length"), "{response}");
        assert_eq!(registry.counter("http.bad_requests").get(), 1);
        // The server stays healthy for well-formed clients.
        assert!(get(server.local_addr(), "/ping").contains("pong"));
        server.stop();
    }

    #[test]
    fn slowloris_header_drip_is_cut_at_the_deadline() {
        let deadline = Duration::from_millis(400);
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 1,
                request_deadline: deadline,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();

        let started = Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
            .write_all(b"GET /ping HTTP/1.1\r\nX-Drip: ")
            .expect("prefix");
        // Drip one header byte per 50ms, far longer than the budget.
        // Per-line idle timeouts used to reset on every byte; the
        // deadline must cut the worker loose regardless of pacing.
        let mut response = Vec::new();
        for _ in 0..100 {
            if stream.write_all(b"x").is_err() {
                break; // server already closed
            }
            std::thread::sleep(Duration::from_millis(50));
            if started.elapsed() > Duration::from_secs(8) {
                break;
            }
            // A 408 arriving ends the drip early.
            stream
                .set_read_timeout(Some(Duration::from_millis(1)))
                .expect("poll timeout");
            let mut buf = [0u8; 512];
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => {
                    response.extend_from_slice(&buf[..n]);
                    break;
                }
                Err(_) => {}
            }
        }
        let elapsed = started.elapsed();
        assert!(
            elapsed < Duration::from_secs(4),
            "worker pinned for {elapsed:?} — slowloris defence failed"
        );
        // Either an explicit 408 or a hard close is acceptable; the
        // worker must be free again for legitimate clients (the pool
        // has exactly one worker, so this request proves it).
        if !response.is_empty() {
            let head = String::from_utf8_lossy(&response).into_owned();
            assert!(head.starts_with("HTTP/1.1 408"), "{head}");
        }
        drop(stream);
        assert!(get(addr, "/ping").contains("pong"), "worker not released");
        server.stop();
    }

    #[test]
    fn header_caps_answer_431() {
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 2,
                max_header_lines: 4,
                max_header_line_bytes: 128,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();
        let long_line = format!("GET /ping HTTP/1.1\r\nX-Long: {}\r\n\r\n", "v".repeat(1024));
        let response = send(addr, &long_line);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        let many_headers = format!(
            "GET /ping HTTP/1.1\r\n{}\r\n",
            (0..16).fold(String::new(), |mut s, i| {
                s.push_str(&format!("X-H{i}: v\r\n"));
                s
            })
        );
        let response = send(addr, &many_headers);
        assert!(response.starts_with("HTTP/1.1 431"), "{response}");
        server.stop();
    }

    #[test]
    fn backlog_overflow_sheds_with_503_and_retry_after() {
        let registry = Registry::new();
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            test_router(),
            ServerConfig {
                workers: 1,
                max_backlog: 1,
                retry_after_secs: 2,
                registry: registry.clone(),
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();

        // Occupy the only worker with a slow request…
        let busy = std::thread::spawn(move || get(addr, "/slow"));
        std::thread::sleep(Duration::from_millis(100));
        // …fill the single backlog slot…
        let queued = std::thread::spawn(move || get(addr, "/slow"));
        std::thread::sleep(Duration::from_millis(50));
        // …and watch the next connection get shed at admission.
        let shed = get(addr, "/ping");
        assert!(shed.starts_with("HTTP/1.1 503"), "{shed}");
        assert!(shed.contains("Retry-After: 2"), "{shed}");
        assert!(registry.counter("http.shed_total").get() >= 1);
        assert!(
            registry.gauge("http.backlog_depth").get() <= 1,
            "backlog depth bounded by max_backlog"
        );
        let busy = busy.join().expect("busy client");
        assert!(busy.contains("\"slow\":true"), "{busy}");
        let queued = queued.join().expect("queued client");
        assert!(queued.contains("\"slow\":true"), "{queued}");
        server.stop();
    }

    #[test]
    fn response_write_to_stalled_reader_is_bounded() {
        // A handler response larger than the socket buffers, written to
        // a client that never reads: the write phase must give up at the
        // deadline instead of pinning the worker.
        let payload = "y".repeat(8 * 1024 * 1024);
        let router = Router::new()
            .route("GET", "/big", move |_req| Response::ok(payload.clone()))
            .route("GET", "/probe", |_req| Response::ok("{\"probe\":true}"));
        let server = HttpServer::start_with(
            "127.0.0.1:0",
            router,
            ServerConfig {
                workers: 1,
                request_deadline: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral");
        let addr = server.local_addr();
        let mut stalled = TcpStream::connect(addr).expect("connect");
        stalled
            .write_all(b"GET /big HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("send");
        // Never read. Once the write budget lapses the only worker must
        // be free again; probe after it, on a fresh deadline.
        std::thread::sleep(Duration::from_millis(1200));
        let started = Instant::now();
        let mut probe = TcpStream::connect(addr).expect("connect probe");
        probe
            .set_read_timeout(Some(Duration::from_secs(8)))
            .expect("timeout");
        probe
            .write_all(b"GET /probe HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("send probe");
        let mut response = String::new();
        probe.read_to_string(&mut response).expect("probe read");
        assert!(response.contains("\"probe\":true"), "{response}");
        assert!(
            started.elapsed() < Duration::from_secs(6),
            "worker pinned by stalled reader"
        );
        drop(stalled);
        server.stop();
    }
}
