//! A minimal HTTP/1.1 server substrate over [`std::net::TcpListener`].
//!
//! The no-external-registry constraint rules out hyper/axum; the
//! telemetry endpoint proved a hand-rolled server is enough for an
//! operator port, and service mode (`dox-serve`) needs the same thing
//! with a little more: method+path dispatch with `:param` captures,
//! request bodies with an enforced size limit, HTTP/1.1 keep-alive, and
//! a bounded worker pool so one slow client cannot starve the rest.
//!
//! * [`Router`] — ordered `(method, pattern)` routes; a path that
//!   matches a pattern under the *wrong* method yields `405 Method Not
//!   Allowed` with an `Allow` header, an unknown path `404`.
//! * [`HttpServer`] — an acceptor thread feeding a bounded pool of
//!   worker threads through a condvar-signalled queue; each worker runs
//!   a keep-alive connection loop with read timeouts.
//! * [`Request`] / [`Response`] — just enough of HTTP to write JSON
//!   handlers against.
//!
//! Nothing served here ever feeds the `ExperimentReport`, so wall-clock
//! time and thread scheduling are fine in this module.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default cap on request bodies; larger requests get `413`.
pub const DEFAULT_MAX_BODY: usize = 4 * 1024 * 1024;

/// How long a keep-alive connection may sit idle between requests
/// before the worker closes it.
const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string (`/v1/victims/42`).
    pub path: String,
    /// The raw query string after `?`, if any.
    pub query: Option<String>,
    /// `:name` captures from the matched route pattern, in pattern order.
    pub params: Vec<(String, String)>,
    /// The request body (empty for bodyless requests).
    pub body: Vec<u8>,
}

impl Request {
    /// Look up a `:name` capture from the matched route.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Look up a `key=value` pair from the query string.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.as_deref()?.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }
}

/// An HTTP response: status, content type, extra headers and payload.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `404`, …).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional headers (e.g. `Allow` on a 405).
    pub headers: Vec<(String, String)>,
    /// The response payload.
    pub payload: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, payload: impl Into<String>) -> Self {
        Self {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            payload: payload.into(),
        }
    }

    /// `200 OK` with a JSON payload.
    pub fn ok(payload: impl Into<String>) -> Self {
        Self::json(200, payload)
    }

    /// A JSON error envelope: `{"error":"…"}`.
    pub fn error(status: u16, message: &str) -> Self {
        let escaped: String = message.chars().flat_map(char::escape_default).collect();
        Self::json(status, format!("{{\"error\":\"{escaped}\"}}"))
    }

    fn reason(status: u16) -> &'static str {
        match status {
            200 => "OK",
            201 => "Created",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            410 => "Gone",
            413 => "Payload Too Large",
            503 => "Service Unavailable",
            _ => "Internal Server Error",
        }
    }
}

/// One segment of a route pattern.
enum Segment {
    Literal(String),
    Param(String),
}

/// A registered route.
struct Route {
    method: String,
    segments: Vec<Segment>,
    handler: Box<dyn Fn(&Request) -> Response + Send + Sync>,
}

impl Route {
    /// Match `path` against the pattern, returning the `:name` captures.
    fn matches(&self, path: &str) -> Option<Vec<(String, String)>> {
        let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
        let pattern_empty = self.segments.is_empty();
        let path_empty = parts.iter().all(|p| p.is_empty());
        if pattern_empty || path_empty {
            return (pattern_empty && path_empty).then(Vec::new);
        }
        if parts.len() != self.segments.len() {
            return None;
        }
        let mut params = Vec::new();
        for (seg, part) in self.segments.iter().zip(&parts) {
            match seg {
                Segment::Literal(lit) => {
                    if lit != part {
                        return None;
                    }
                }
                Segment::Param(name) => {
                    params.push((name.clone(), (*part).to_string()));
                }
            }
        }
        Some(params)
    }
}

/// Method+path dispatch over an ordered route table.
///
/// ```
/// use dox_obs::http::{Request, Response, Router};
///
/// let router = Router::new()
///     .route("GET", "/v1/victims/:id", |req: &Request| {
///         Response::ok(format!("{{\"id\":\"{}\"}}", req.param("id").unwrap_or("")))
///     });
/// ```
#[must_use = "a router does nothing until served by HttpServer::start"]
#[derive(Default)]
pub struct Router {
    routes: Vec<Route>,
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("routes", &self.routes.len())
            .finish()
    }
}

impl Router {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a handler for `method` + `pattern`. Pattern segments
    /// starting with `:` capture the matching path segment into
    /// [`Request::params`].
    pub fn route(
        mut self,
        method: &str,
        pattern: &str,
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> Self {
        let segments = pattern
            .trim_matches('/')
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| {
                s.strip_prefix(':').map_or_else(
                    || Segment::Literal(s.to_string()),
                    |name| Segment::Param(name.to_string()),
                )
            })
            .collect();
        self.routes.push(Route {
            method: method.to_uppercase(),
            segments,
            handler: Box::new(handler),
        });
        self
    }

    /// Append every route of `other` after this router's own — lets a
    /// service mount the telemetry routes next to its API on one port.
    pub fn merge(mut self, other: Router) -> Self {
        self.routes.extend(other.routes);
        self
    }

    /// Dispatch a request: `200`-range from the handler, `405` with an
    /// `Allow` header when the path exists under other methods, `404`
    /// when no pattern matches at all.
    pub fn dispatch(&self, request: &mut Request) -> Response {
        let mut allowed: Vec<String> = Vec::new();
        for route in &self.routes {
            let Some(params) = route.matches(&request.path) else {
                continue;
            };
            if route.method == request.method {
                request.params = params;
                return (route.handler)(request);
            }
            if !allowed.contains(&route.method) {
                allowed.push(route.method.clone());
            }
        }
        if allowed.is_empty() {
            Response::error(404, "not found")
        } else {
            let mut response = Response::error(405, "method not allowed");
            response
                .headers
                .push(("Allow".to_string(), allowed.join(", ")));
            response
        }
    }
}

/// Connections waiting for a worker, plus the shutdown flag.
#[derive(Debug)]
struct Backlog {
    queue: Mutex<VecDeque<TcpStream>>,
    ready: Condvar,
    stop: AtomicBool,
}

/// A running HTTP server: one acceptor thread and a bounded pool of
/// connection workers. Stop it with [`HttpServer::stop`]; dropping it
/// also shuts everything down.
#[derive(Debug)]
pub struct HttpServer {
    addr: SocketAddr,
    backlog: Arc<Backlog>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (port 0 for ephemeral) and serve `router` on a pool
    /// of `workers` threads, rejecting request bodies over `max_body`
    /// bytes with `413`.
    ///
    /// # Errors
    /// Returns the bind error when the address is unavailable.
    pub fn start(
        addr: &str,
        router: Router,
        workers: usize,
        max_body: usize,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let backlog = Arc::new(Backlog {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let router = Arc::new(router);
        let acceptor = {
            let backlog = Arc::clone(&backlog);
            std::thread::Builder::new()
                .name("dox-http-accept".to_string())
                .spawn(move || accept_loop(&listener, &backlog))?
        };
        let pool = (0..workers.max(1))
            .map(|i| {
                let backlog = Arc::clone(&backlog);
                let router = Arc::clone(&router);
                std::thread::Builder::new()
                    .name(format!("dox-http-{i}"))
                    .spawn(move || worker_loop(&backlog, &router, max_body))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Self {
            addr: local,
            backlog,
            acceptor: Some(acceptor),
            workers: pool,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shut the server down and join every thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.backlog.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection, then wake
        // every idle worker.
        let _ = TcpStream::connect(self.addr);
        self.backlog.ready.notify_all();
        let _ = acceptor.join();
        self.backlog.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, backlog: &Backlog) {
    for stream in listener.incoming() {
        if backlog.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let mut queue = backlog.queue.lock().unwrap_or_else(PoisonError::into_inner);
        queue.push_back(stream);
        drop(queue);
        backlog.ready.notify_one();
    }
}

fn worker_loop(backlog: &Backlog, router: &Router, max_body: usize) {
    loop {
        let stream = {
            let mut queue = backlog.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(stream) = queue.pop_front() {
                    break stream;
                }
                if backlog.stop.load(Ordering::SeqCst) {
                    return;
                }
                queue = backlog
                    .ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        };
        let _ = serve_connection(stream, router, max_body, &backlog.stop);
    }
}

/// Keep-alive loop over one connection: parse → dispatch → respond until
/// the client closes, errors, goes idle, or asks for `Connection: close`.
fn serve_connection(
    stream: TcpStream,
    router: &Router,
    max_body: usize,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(KEEP_ALIVE_IDLE))?;
    // Responses are written in one buffered syscall; Nagle would hold
    // them behind the peer's delayed ACK (~40ms per round trip).
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream);
    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut request_line = String::new();
        if reader.read_line(&mut request_line)? == 0 {
            return Ok(()); // client closed
        }
        if request_line.trim().is_empty() {
            continue; // stray CRLF between pipelined requests
        }
        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("").to_uppercase();
        let target = parts.next().unwrap_or("");
        let version = parts.next().unwrap_or("HTTP/1.1");

        // Headers: we care about Content-Length and Connection.
        let mut content_length: usize = 0;
        let mut close_requested = version == "HTTP/1.0";
        loop {
            let mut header = String::new();
            if reader.read_line(&mut header)? == 0 {
                return Ok(());
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().unwrap_or(0);
                } else if name.eq_ignore_ascii_case("connection") {
                    close_requested = value.eq_ignore_ascii_case("close");
                }
            }
        }

        if content_length > max_body {
            // Refuse to read an oversized payload; the connection is no
            // longer in a known state, so close it after answering.
            write_response(
                reader.get_mut(),
                &Response::error(413, "request body too large"),
                true,
            )?;
            return Ok(());
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body)?;

        let (path, query) = match target.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (target.to_string(), None),
        };
        let mut request = Request {
            method,
            path,
            query,
            params: Vec::new(),
            body,
        };
        let response = router.dispatch(&mut request);
        write_response(reader.get_mut(), &response, close_requested)?;
        if close_requested {
            return Ok(());
        }
    }
}

fn write_response(stream: &mut TcpStream, response: &Response, close: bool) -> std::io::Result<()> {
    let payload = &response.payload;
    let mut extra = String::new();
    for (name, value) in &response.headers {
        extra.push_str(name);
        extra.push_str(": ");
        extra.push_str(value);
        extra.push_str("\r\n");
    }
    let connection = if close { "close" } else { "keep-alive" };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n{extra}Connection: {connection}\r\n\r\n{payload}",
        response.status,
        Response::reason(response.status),
        response.content_type,
        payload.len(),
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_router() -> Router {
        Router::new()
            .route("GET", "/ping", |_req| Response::ok("{\"pong\":true}"))
            .route("GET", "/v1/items/:id", |req: &Request| {
                Response::ok(format!(
                    "{{\"id\":\"{}\"}}",
                    req.param("id").unwrap_or_default()
                ))
            })
            .route("POST", "/v1/echo", |req: &Request| {
                Response::ok(format!("{{\"len\":{}}}", req.body.len()))
            })
    }

    fn send(addr: SocketAddr, raw: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        send(
            addr,
            &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
        )
    }

    #[test]
    fn routes_dispatch_with_params() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 2, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/ping").contains("\"pong\":true"));
        let with_param = get(addr, "/v1/items/42");
        assert!(with_param.starts_with("HTTP/1.1 200"), "{with_param}");
        assert!(with_param.contains("\"id\":\"42\""), "{with_param}");
        server.stop();
    }

    #[test]
    fn unknown_paths_are_404_and_wrong_methods_405() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 2, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        let wrong_method = send(
            addr,
            "POST /ping HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        assert!(wrong_method.starts_with("HTTP/1.1 405"), "{wrong_method}");
        assert!(wrong_method.contains("Allow: GET"), "{wrong_method}");
        server.stop();
    }

    #[test]
    fn request_bodies_reach_handlers_and_oversized_ones_are_413() {
        let server =
            HttpServer::start("127.0.0.1:0", test_router(), 2, 64).expect("bind ephemeral");
        let addr = server.local_addr();
        let ok = send(
            addr,
            "POST /v1/echo HTTP/1.1\r\nHost: t\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(ok.contains("\"len\":5"), "{ok}");
        let huge = format!(
            "POST /v1/echo HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\nConnection: close\r\n\r\n{}",
            "x".repeat(100)
        );
        let too_large = send(addr, &huge);
        assert!(too_large.starts_with("HTTP/1.1 413"), "{too_large}");
        server.stop();
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 2, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        for i in 0..3 {
            write!(stream, "GET /v1/items/{i} HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
            // Keep-alive leaves the stream open, so read until the body
            // (which ends with `}`) has fully arrived.
            let mut response = String::new();
            let mut buf = [0u8; 1024];
            while !response.ends_with('}') {
                let n = stream.read(&mut buf).expect("read");
                assert!(n > 0, "server closed early: {response}");
                response.push_str(&String::from_utf8_lossy(&buf[..n]));
            }
            assert!(response.starts_with("HTTP/1.1 200"), "{response}");
            assert!(response.contains(&format!("\"id\":\"{i}\"")), "{response}");
            assert!(response.contains("Connection: keep-alive"), "{response}");
        }
        server.stop();
    }

    #[test]
    fn query_params_parse() {
        let router = Router::new().route("GET", "/v1/alerts", |req: &Request| {
            Response::ok(format!(
                "{{\"cursor\":\"{}\"}}",
                req.query_param("cursor").unwrap_or("0")
            ))
        });
        let server =
            HttpServer::start("127.0.0.1:0", router, 1, DEFAULT_MAX_BODY).expect("bind ephemeral");
        let with_query = get(server.local_addr(), "/v1/alerts?cursor=17&wait=0");
        assert!(with_query.contains("\"cursor\":\"17\""), "{with_query}");
        server.stop();
    }

    #[test]
    fn stop_joins_all_threads_and_releases_the_port() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 4, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        assert!(get(addr, "/ping").contains("pong"));
        server.stop();
        assert!(
            TcpListener::bind(addr).is_ok(),
            "address released after stop"
        );
    }

    #[test]
    fn concurrent_connections_are_served_by_the_pool() {
        let server = HttpServer::start("127.0.0.1:0", test_router(), 4, DEFAULT_MAX_BODY)
            .expect("bind ephemeral");
        let addr = server.local_addr();
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    let response = get(addr, &format!("/v1/items/{i}"));
                    assert!(response.contains(&format!("\"id\":\"{i}\"")), "{response}");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        server.stop();
    }
}
