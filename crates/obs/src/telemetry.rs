//! Live telemetry over the shared [`crate::http`] server.
//!
//! The endpoint answers two routes:
//!
//! * `GET /metrics` — the current [`crate::Snapshot`] (counters, gauges,
//!   span histograms, recent events, drop counts) plus
//!   `rates_per_s`: rolling per-stage docs/s computed from counter and
//!   histogram-count deltas between successive scrapes, and the
//!   tracer's admitted/buffered/dropped tallies.
//! * `GET /traces` — the most recent sampled traces from the bounded
//!   trace buffer, as a JSON object.
//!
//! Wrong-method hits on those routes get `405` with an `Allow` header;
//! anything else is a 404. This is an operator inspection port, not a
//! public API. Wall-clock time is used for scrape-to-scrape rates —
//! that is fine here because nothing served by this endpoint ever feeds
//! the `ExperimentReport`.

use crate::http::{HttpServer, Response, Router};
use crate::metrics::Registry;
use crate::trace::Tracer;
use serde::value::{Number, Value};
use serde::Serialize;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Traces returned by `GET /traces`.
const TRACES_LIMIT: usize = 64;

/// Workers serving the inspection port; scrapes are cheap and rare.
const TELEMETRY_WORKERS: usize = 2;

/// A running telemetry endpoint. Stop it with [`Telemetry::stop`];
/// dropping it also shuts the server down.
#[derive(Debug)]
pub struct Telemetry {
    server: HttpServer,
}

impl Telemetry {
    /// Bind `addr` (e.g. `"127.0.0.1:9100"`, port 0 for ephemeral) and
    /// serve the given registry and tracer until stopped.
    ///
    /// # Errors
    /// Returns the bind error when the address is unavailable.
    pub fn start(addr: &str, registry: Registry, tracer: Tracer) -> std::io::Result<Self> {
        let server = HttpServer::start(
            addr,
            router(registry, tracer),
            TELEMETRY_WORKERS,
            crate::http::DEFAULT_MAX_BODY,
        )?;
        Ok(Self { server })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// Shut the server down and join its threads.
    pub fn stop(self) {
        self.server.stop();
    }
}

/// Build the telemetry route table over `registry` and `tracer`.
///
/// `dox-serve` mounts these same routes next to its service API so one
/// port serves both; the standalone [`Telemetry`] endpoint serves them
/// alone.
pub fn router(registry: Registry, tracer: Tracer) -> Router {
    let baseline: Mutex<Option<RateBaseline>> = Mutex::new(None);
    let traces_tracer = tracer.clone();
    Router::new()
        .route("GET", "/metrics", move |_req| {
            let mut baseline = baseline.lock().unwrap_or_else(PoisonError::into_inner);
            Response::ok(metrics_body(&registry, &tracer, &mut baseline))
        })
        .route("GET", "/traces", move |_req| {
            Response::ok(traces_body(&traces_tracer))
        })
}

/// Scrape-to-scrape state for rolling rates.
struct RateBaseline {
    at: Instant,
    counts: BTreeMap<String, u64>,
}

/// Current per-stage completion counts: every counter's value plus every
/// histogram's observation count — the quantities whose deltas are
/// "documents per second" for a stage.
fn stage_counts(snapshot: &crate::Snapshot) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = snapshot.counters.clone();
    for (name, h) in &snapshot.spans {
        counts.insert(name.clone(), h.count);
    }
    counts
}

#[allow(clippy::cast_precision_loss)]
fn metrics_body(
    registry: &Registry,
    tracer: &Tracer,
    baseline: &mut Option<RateBaseline>,
) -> String {
    let snapshot = registry.snapshot();
    let now = Instant::now();
    let counts = stage_counts(&snapshot);
    let mut rates: Vec<(String, Value)> = Vec::new();
    if let Some(prev) = baseline.as_ref() {
        let elapsed = now.duration_since(prev.at).as_secs_f64();
        if elapsed > 0.0 {
            for (name, count) in &counts {
                let before = prev.counts.get(name).copied().unwrap_or(0);
                let per_s = (count.saturating_sub(before)) as f64 / elapsed;
                // Keep the JSON readable: three decimals is plenty for an
                // operator eyeballing throughput.
                rates.push((
                    name.clone(),
                    Value::Number(Number::F64((per_s * 1000.0).round() / 1000.0)),
                ));
            }
        }
    }
    *baseline = Some(RateBaseline { at: now, counts });
    let trace_stats = Value::Object(vec![
        (
            "admitted".to_string(),
            Value::Number(Number::U64(tracer.admitted())),
        ),
        (
            "buffered".to_string(),
            Value::Number(Number::U64(tracer.buffered() as u64)),
        ),
        (
            "dropped".to_string(),
            Value::Number(Number::U64(tracer.dropped())),
        ),
    ]);
    let body = Value::Object(vec![
        ("snapshot".to_string(), snapshot.to_value()),
        ("rates_per_s".to_string(), Value::Object(rates)),
        ("trace".to_string(), trace_stats),
    ]);
    serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_string())
}

fn traces_body(tracer: &Tracer) -> String {
    let traces: Vec<Value> = tracer
        .recent(TRACES_LIMIT)
        .iter()
        .map(Serialize::to_value)
        .collect();
    let body = Value::Object(vec![
        (
            "dropped".to_string(),
            Value::Number(Number::U64(tracer.dropped())),
        ),
        ("traces".to_string(), Value::Array(traces)),
    ]);
    serde_json::to_string(&body).unwrap_or_else(|_| "{}".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{hop, TraceConfig, SAMPLE_ALL};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
        )
        .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    fn fixture() -> (Registry, Tracer) {
        let registry = Registry::new();
        registry.counter("pipeline.funnel.collected").add(120);
        registry.histogram("pipeline.stage.classify").observe(500);
        let tracer = Tracer::new(TraceConfig {
            seed: 5,
            sample_ppm: SAMPLE_ALL,
            capacity: 64,
        });
        tracer.begin(3, hop("collect", 30, "src=pastebin"));
        tracer.hop(3, hop("commit", 30, "seq=0"));
        (registry, tracer)
    }

    #[test]
    fn metrics_endpoint_serves_snapshot_and_rates() {
        let (registry, tracer) = fixture();
        let server =
            Telemetry::start("127.0.0.1:0", registry.clone(), tracer).expect("bind ephemeral");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("application/json"), "{head}");
        let v: serde_json::Value = serde_json::from_str(&body).expect("json body");
        assert_eq!(
            v["snapshot"]["counters"]["pipeline.funnel.collected"].as_u64(),
            Some(120)
        );
        assert_eq!(v["trace"]["buffered"].as_u64(), Some(1));

        // Second scrape: rates appear, reflecting the delta.
        registry.counter("pipeline.funnel.collected").add(60);
        let (_, body2) = get(addr, "/metrics");
        let v2: serde_json::Value = serde_json::from_str(&body2).expect("json body");
        let rate = v2["rates_per_s"]["pipeline.funnel.collected"]
            .as_f64()
            .expect("rate present");
        assert!(rate > 0.0, "delta of 60 must yield a positive rate");
        server.stop();
    }

    #[test]
    fn traces_endpoint_serves_recent_traces() {
        let (registry, tracer) = fixture();
        let server = Telemetry::start("127.0.0.1:0", registry, tracer).expect("bind ephemeral");
        let (head, body) = get(server.local_addr(), "/traces");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let v: serde_json::Value = serde_json::from_str(&body).expect("json body");
        let traces = v["traces"].as_array().expect("traces array");
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0]["doc_id"].as_u64(), Some(3));
        assert_eq!(traces[0]["hops"][1]["stage"].as_str(), Some("commit"));
        server.stop();
    }

    #[test]
    fn unknown_routes_are_404_and_wrong_methods_405() {
        let (registry, tracer) = fixture();
        let server = Telemetry::start("127.0.0.1:0", registry, tracer).expect("bind ephemeral");
        let addr = server.local_addr();
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(
            stream,
            "POST /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
        )
        .expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
        assert!(response.contains("Allow: GET"), "{response}");
        server.stop();
    }

    #[test]
    fn stop_joins_the_server_thread() {
        let (registry, tracer) = fixture();
        let server = Telemetry::start("127.0.0.1:0", registry, tracer).expect("bind ephemeral");
        let addr = server.local_addr();
        server.stop();
        // The port is released once the threads exit; a rebind succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "address released after stop");
    }
}
