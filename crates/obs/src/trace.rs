//! `dox-trace` — deterministic end-to-end causal tracing.
//!
//! Every document entering the pipeline can carry a trace: a seeded,
//! deterministic trace id plus an append-only list of [`TraceHop`]s, one
//! per stage the document passes through (collect → classify/extract →
//! shard routing → dedup → commit → monitor probes). Hops record
//! timestamps on the fault *sim-clock* — never the wall clock — so the
//! exported trace stream is a pure function of `(config, seed, sampling)`
//! and byte-identical at any worker/shard topology.
//!
//! Determinism is achieved structurally, not by locking the pipeline:
//!
//! * **Sampling** is a hash decision: a document is sampled iff
//!   `mix(seed ^ doc_id) % 1_000_000 < sample_ppm`. No state, no races.
//! * **Admission** ([`Tracer::begin`]) happens only at the first hop,
//!   which the single-threaded collector performs in document order, so
//!   which documents occupy the bounded buffer is deterministic. When the
//!   buffer is full the oldest trace (smallest `doc_id`) is evicted and
//!   counted in [`Tracer::dropped`] — a loud drop, never a silent one.
//! * **Hops** for one document are appended in causal pipeline order
//!   (queue handoffs impose happens-before), and each document owns its
//!   hop vector, so cross-document thread interleaving cannot reorder
//!   anything observable.
//! * **Export** ([`Tracer::export_jsonl`]) walks the buffer in `doc_id`
//!   order after the pipeline has drained.
//!
//! Document content never enters a hop directly: bodies and handles must
//! pass through [`crate::redact()`], which is what the `content_note`
//! helper on [`Tracer`] enforces.

use crate::redact::redact;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `sample_ppm` value that samples every document.
pub const SAMPLE_ALL: u32 = 1_000_000;

/// SplitMix64 finalizer — the same mixer `dox-fault` uses for fault
/// decisions, so trace ids are seeded, well-spread, and entropy-free.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Tracing knobs. The default is disabled (zero sampling), which costs
/// one branch per document on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceConfig {
    /// Seed folded into every trace id and sampling decision.
    pub seed: u64,
    /// Sampling rate in parts per million (0 disables tracing,
    /// [`SAMPLE_ALL`] traces everything).
    pub sample_ppm: u32,
    /// Maximum traces held in memory; the oldest is evicted (and counted
    /// dropped) when a new document is admitted past this bound.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            sample_ppm: 0,
            capacity: 4096,
        }
    }
}

/// One stage transition in a document's journey.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TraceHop {
    /// Stage name (`collect`, `classify`, `route`, `dedup`, `commit`,
    /// `probe`, …).
    pub stage: String,
    /// Sim-clock tick the hop is attributed to.
    pub at: u64,
    /// Attempts the stage's operation took (1 = no retries, 0 = the
    /// stage has no fault boundary).
    pub attempts: u32,
    /// Virtual ticks spent in retry backoff before the stage succeeded.
    pub delay: u64,
    /// Circuit-breaker trips this operation caused (0 almost always).
    pub breaker_trips: u32,
    /// Free-form detail — shard index, dedup verdict, redacted content
    /// fingerprint. Never raw document content.
    pub note: String,
}

/// One document's journey: a stable id plus its hops in causal order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Trace {
    /// Seeded trace id, 16 hex digits.
    pub trace_id: String,
    /// The document the trace follows.
    pub doc_id: u64,
    /// Hops in pipeline order.
    pub hops: Vec<TraceHop>,
}

#[derive(Debug)]
struct TracerCore {
    seed: u64,
    sample_ppm: u32,
    capacity: usize,
    buffer: Mutex<BTreeMap<u64, Trace>>,
    dropped: AtomicU64,
    admitted: AtomicU64,
}

/// A cheap-to-clone handle to the shared trace buffer.
///
/// A disabled tracer ([`Tracer::disabled`], also `Default`) carries no
/// allocation and makes every recording call a no-op, so pipeline code
/// can thread a `Tracer` unconditionally.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Arc<TracerCore>>);

impl Tracer {
    /// A tracer recording into a fresh buffer under `config`.
    pub fn new(config: TraceConfig) -> Self {
        Self(Some(Arc::new(TracerCore {
            seed: config.seed,
            sample_ppm: config.sample_ppm,
            capacity: config.capacity.max(1),
            buffer: Mutex::new(BTreeMap::new()),
            dropped: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        })))
    }

    /// A tracer that records nothing and holds nothing.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether any document could be sampled.
    pub fn enabled(&self) -> bool {
        self.0.as_ref().is_some_and(|c| c.sample_ppm > 0)
    }

    /// The deterministic sampling decision for `doc_id`.
    #[inline]
    pub fn sampled(&self, doc_id: u64) -> bool {
        match &self.0 {
            None => false,
            Some(core) => {
                core.sample_ppm > 0
                    && mix(core.seed ^ doc_id) % 1_000_000 < u64::from(core.sample_ppm)
            }
        }
    }

    /// The seeded trace id for `doc_id` (stable across runs and
    /// topologies).
    pub fn trace_id(&self, doc_id: u64) -> String {
        let seed = self.0.as_ref().map_or(0, |c| c.seed);
        format!("{:016x}", mix(seed ^ mix(doc_id)))
    }

    /// Admit `doc_id` into the buffer with its first hop, if sampled.
    ///
    /// Must be called from the ingest boundary (the collector), which
    /// processes documents sequentially — that is what makes buffer
    /// occupancy deterministic. Evicts (and counts) the oldest trace when
    /// full. Returns whether the document is now traced.
    pub fn begin(&self, doc_id: u64, hop: TraceHop) -> bool {
        if !self.sampled(doc_id) {
            return false;
        }
        let Some(core) = &self.0 else { return false };
        let trace_id = self.trace_id(doc_id);
        let mut buffer = core.buffer.lock();
        if buffer.contains_key(&doc_id) {
            return true;
        }
        if buffer.len() >= core.capacity {
            if let Some(oldest) = buffer.keys().next().copied() {
                buffer.remove(&oldest);
                core.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        buffer.insert(
            doc_id,
            Trace {
                trace_id,
                doc_id,
                hops: vec![hop],
            },
        );
        core.admitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Append a hop to `doc_id`'s trace. A no-op for unsampled, evicted,
    /// or never-admitted documents — recording must never perturb the
    /// pipeline.
    #[inline]
    pub fn hop(&self, doc_id: u64, hop: TraceHop) {
        let Some(core) = &self.0 else { return };
        if core.sample_ppm == 0 || !self.sampled(doc_id) {
            return;
        }
        let mut buffer = core.buffer.lock();
        if let Some(trace) = buffer.get_mut(&doc_id) {
            trace.hops.push(hop);
        }
    }

    /// A hop note for document content: redacted to length + fingerprint
    /// so PII can never reach an exported trace. This is the only
    /// sanctioned path from a body/handle into a hop.
    pub fn content_note(text: &str) -> String {
        redact(text).to_string()
    }

    /// Traces admitted over the tracer's lifetime.
    pub fn admitted(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.admitted.load(Ordering::Relaxed))
    }

    /// Traces evicted from the bounded buffer (loud-drop accounting).
    pub fn dropped(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |c| c.dropped.load(Ordering::Relaxed))
    }

    /// Traces currently buffered.
    pub fn buffered(&self) -> usize {
        self.0.as_ref().map_or(0, |c| c.buffer.lock().len())
    }

    /// The most recent `limit` traces (largest `doc_id`s), oldest first —
    /// the `GET /traces` payload.
    pub fn recent(&self, limit: usize) -> Vec<Trace> {
        let Some(core) = &self.0 else {
            return Vec::new();
        };
        let buffer = core.buffer.lock();
        let skip = buffer.len().saturating_sub(limit);
        buffer.values().skip(skip).cloned().collect()
    }

    /// Export every buffered trace as JSONL, one trace per line in
    /// `doc_id` order. Byte-identical across runs with the same
    /// `(config, seed, sampling)` once the pipeline has drained.
    pub fn export_jsonl(&self) -> String {
        let Some(core) = &self.0 else {
            return String::new();
        };
        let buffer = core.buffer.lock();
        let mut out = String::new();
        for trace in buffer.values() {
            if let Ok(line) = serde_json::to_string(trace) {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }
}

/// Shorthand for building a [`TraceHop`] with no fault boundary.
pub fn hop(stage: &str, at: u64, note: impl Into<String>) -> TraceHop {
    TraceHop {
        stage: stage.to_string(),
        at,
        attempts: 0,
        delay: 0,
        breaker_trips: 0,
        note: note.into(),
    }
}

/// Shorthand for building a [`TraceHop`] at a fault boundary.
pub fn fault_hop(
    stage: &str,
    at: u64,
    attempts: u32,
    delay: u64,
    breaker_trips: u32,
    note: impl Into<String>,
) -> TraceHop {
    TraceHop {
        stage: stage.to_string(),
        at,
        attempts,
        delay,
        breaker_trips,
        note: note.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(seed: u64) -> Tracer {
        Tracer::new(TraceConfig {
            seed,
            sample_ppm: SAMPLE_ALL,
            capacity: 4096,
        })
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.enabled());
        assert!(!t.sampled(7));
        assert!(!t.begin(7, hop("collect", 0, "")));
        t.hop(7, hop("classify", 0, ""));
        assert_eq!(t.export_jsonl(), "");
        assert_eq!(t.admitted(), 0);
    }

    #[test]
    fn zero_ppm_samples_nothing_and_full_ppm_samples_everything() {
        let off = Tracer::new(TraceConfig {
            seed: 1,
            sample_ppm: 0,
            capacity: 16,
        });
        let on = all(1);
        for doc in 0..200 {
            assert!(!off.sampled(doc));
            assert!(on.sampled(doc));
        }
    }

    #[test]
    fn sampling_rate_is_roughly_honored_and_deterministic() {
        let t = Tracer::new(TraceConfig {
            seed: 42,
            sample_ppm: 100_000, // 10%
            capacity: 16,
        });
        let hits = (0..10_000).filter(|&d| t.sampled(d)).count();
        assert!((700..=1_300).contains(&hits), "10% of 10k docs, got {hits}");
        let t2 = Tracer::new(TraceConfig {
            seed: 42,
            sample_ppm: 100_000,
            capacity: 16,
        });
        for d in 0..10_000 {
            assert_eq!(t.sampled(d), t2.sampled(d), "doc {d}");
        }
    }

    #[test]
    fn hops_accumulate_in_order() {
        let t = all(3);
        assert!(t.begin(5, hop("collect", 100, "src=pastebin")));
        t.hop(5, hop("classify", 100, "dox"));
        t.hop(5, fault_hop("probe", 220, 3, 40, 1, "fb"));
        let traces = t.recent(10);
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert_eq!(trace.doc_id, 5);
        assert_eq!(trace.trace_id.len(), 16);
        let stages: Vec<&str> = trace.hops.iter().map(|h| h.stage.as_str()).collect();
        assert_eq!(stages, vec!["collect", "classify", "probe"]);
        assert_eq!(trace.hops[2].attempts, 3);
        assert_eq!(trace.hops[2].breaker_trips, 1);
    }

    #[test]
    fn hop_without_begin_is_dropped() {
        let t = all(3);
        t.hop(9, hop("classify", 0, ""));
        assert_eq!(t.buffered(), 0);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_dropped() {
        let t = Tracer::new(TraceConfig {
            seed: 0,
            sample_ppm: SAMPLE_ALL,
            capacity: 2,
        });
        for doc in 1..=4 {
            assert!(t.begin(doc, hop("collect", doc, "")));
        }
        assert_eq!(t.buffered(), 2);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.admitted(), 4);
        let kept: Vec<u64> = t.recent(10).iter().map(|tr| tr.doc_id).collect();
        assert_eq!(kept, vec![3, 4], "oldest evicted first");
        // Late hops for an evicted document vanish silently from the
        // buffer (the eviction itself was counted).
        t.hop(1, hop("classify", 5, ""));
        assert_eq!(t.buffered(), 2);
    }

    #[test]
    fn export_is_doc_ordered_jsonl() {
        let t = all(9);
        for doc in [30u64, 10, 20] {
            t.begin(doc, hop("collect", doc, ""));
        }
        let jsonl = t.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        let ids: Vec<u64> = lines
            .iter()
            .map(|l| {
                let v: serde_json::Value = serde_json::from_str(l).expect("valid JSON");
                v["doc_id"].as_u64().expect("doc_id")
            })
            .collect();
        assert_eq!(ids, vec![10, 20, 30]);
    }

    #[test]
    fn export_is_reproducible_for_same_seed_and_differs_across_seeds() {
        let build = |seed| {
            let t = all(seed);
            for doc in 0..50 {
                t.begin(doc, hop("collect", doc * 7, "src"));
                t.hop(doc, hop("commit", doc * 7, "seq"));
            }
            t.export_jsonl()
        };
        assert_eq!(build(11), build(11));
        assert_ne!(build(11), build(12), "trace ids are seeded");
    }

    #[test]
    fn trace_ids_are_stable_per_seed() {
        let t = all(77);
        assert_eq!(t.trace_id(1), t.trace_id(1));
        assert_ne!(t.trace_id(1), t.trace_id(2));
        assert_eq!(t.trace_id(1), all(77).trace_id(1));
    }

    #[test]
    fn content_note_redacts() {
        let note = Tracer::content_note("john doe lives at 12 main st");
        assert!(!note.contains("john"), "{note}");
        assert!(note.contains("redacted"), "{note}");
    }

    #[test]
    fn recent_returns_the_tail() {
        let t = all(0);
        for doc in 0..10 {
            t.begin(doc, hop("collect", doc, ""));
        }
        let tail: Vec<u64> = t.recent(3).iter().map(|tr| tr.doc_id).collect();
        assert_eq!(tail, vec![7, 8, 9]);
    }
}
