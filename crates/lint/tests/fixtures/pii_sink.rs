//! Fixture: pii-sink findings and the redact() escape hatch.

pub fn leaks_ident(body: &str) {
    println!("{}", body);
}

pub fn leaks_inline_arg(ssn: &str) {
    let message = format!("ssn is {ssn}");
    drop(message);
}

pub fn redacted_is_fine(body: &str) {
    println!("{}", dox_obs::redact(body));
}
