//! Fixture: lock-discipline findings.

use std::sync::{Mutex, PoisonError};

pub fn discards_guard(m: &Mutex<u32>) {
    let _ = m.lock();
}

pub fn relocks(m: &Mutex<u32>) -> u32 {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    let again = m.lock();
    *guard + u32::from(again.is_ok())
}
