//! Fixture: determinism findings (wall clock + hashed containers).

use std::collections::HashMap;
use std::time::Instant;

pub fn elapsed_ns() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn counts() -> HashMap<String, u64> {
    HashMap::new()
}
