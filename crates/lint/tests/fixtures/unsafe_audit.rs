//! Fixture: unsafe-audit (missing forbid, unsafe code).

pub unsafe fn danger() {}
