//! Fixture: pii-taint dataflow — typed sources, propagation through
//! locals and calls, the redact() sanitizer, and the allow escape hatch.

pub struct CollectedDoc {
    pub body: String,
    pub url: String,
}

fn shout(message: &str) {
    println!("paste: {message}");
}

pub fn leaks_directly(doc: &CollectedDoc) {
    println!("{}", doc.body);
}

pub fn leaks_through_local(doc: &CollectedDoc) {
    let text = doc.body.clone();
    let message = format!("body={text}");
    eprintln!("{message}");
}

pub fn leaks_interprocedurally(doc: &CollectedDoc) {
    shout(&doc.body);
}

pub fn redacted_is_fine(doc: &CollectedDoc) {
    println!("{}", dox_obs::redact(&doc.body));
}

pub fn length_is_fine(doc: &CollectedDoc) {
    println!("{} bytes", doc.body.len());
}

pub fn untainted_field_is_fine(doc: &CollectedDoc) {
    println!("fetched {}", doc.url);
}

pub fn suppressed_leak(doc: &CollectedDoc) {
    // dox-lint:allow(pii-taint) fixture: demonstrates the escape hatch
    println!("{}", doc.body);
}
