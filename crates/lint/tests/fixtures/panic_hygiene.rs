//! Fixture: panic-hygiene findings and suppressions.

pub fn bad_unwrap(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn bad_expect(x: Option<u32>) -> u32 {
    x.expect("always some")
}

pub fn bad_macro() {
    panic!("boom");
}

pub fn justified(x: Option<u32>) -> u32 {
    // dox-lint:allow(panic-hygiene) fixture: provably Some
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(None::<u32>.unwrap_or(7), 7);
    }
}
