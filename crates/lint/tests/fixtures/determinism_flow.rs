//! Fixture: determinism-flow — HashMap iteration order reaching
//! serialization; sorting or collecting into a BTree container is clean.

use std::collections::{BTreeMap, HashMap};

pub fn leaks_unordered(counts: &HashMap<String, u64>) -> String {
    let mut rows = Vec::new();
    for (k, v) in counts.iter() {
        rows.push(format!("{k}={v}"));
    }
    serde_json::to_string(&rows).unwrap_or_default()
}

pub fn sorted_is_fine(counts: &HashMap<String, u64>) -> String {
    let mut rows = Vec::new();
    for (k, v) in counts.iter() {
        rows.push(format!("{k}={v}"));
    }
    rows.sort();
    serde_json::to_string(&rows).unwrap_or_default()
}

pub fn btree_is_fine(counts: &HashMap<String, u64>) -> String {
    let ordered: BTreeMap<&String, &u64> = counts.iter().collect();
    let mut rows = Vec::new();
    for (k, v) in ordered.iter() {
        rows.push(format!("{k}={v}"));
    }
    serde_json::to_string(&rows).unwrap_or_default()
}
