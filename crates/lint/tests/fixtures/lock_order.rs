//! Fixture: lock-order — an acquisition-order cycle between two mutexes
//! and a guard held across blocking I/O; the sequential taker is clean.

use std::sync::Mutex;

pub struct Pair {
    pub a: Mutex<u64>,
    pub b: Mutex<u64>,
}

pub fn ab(p: &Pair) {
    let ga = p.a.lock();
    let gb = p.b.lock();
    drop(gb);
    drop(ga);
}

pub fn ba(p: &Pair) {
    let gb = p.b.lock();
    let ga = p.a.lock();
    drop(ga);
    drop(gb);
}

pub fn guard_across_io(p: &Pair, path: &std::path::Path) {
    let ga = p.a.lock();
    std::fs::write(path, "x");
    drop(ga);
}

pub fn sequential_is_fine(p: &Pair) {
    let ga = p.a.lock();
    drop(ga);
    let gb = p.b.lock();
    drop(gb);
}
