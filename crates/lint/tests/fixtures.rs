//! Per-rule fixture tests.
//!
//! Each file under `fixtures/` carries deliberate violations of exactly
//! one rule (the workspace walker skips `fixtures/` directories, so they
//! never trip the real gate). These tests assert the *exact* diagnostics
//! — file, line, column and rule — so any drift in the lexer, parser or
//! rule logic shows up as a precise diff.

use dox_lint::callgraph::Workspace;
use dox_lint::config::Config;
use dox_lint::parser::parse_file;
use dox_lint::rules::{run_rules, FileClass, FileInput, Prepared, Suppressions};
use dox_lint::symbols::FileModel;
use dox_lint::{detflow, lockorder, taint};

/// Lint `text` with the per-file token rules, as the library file `rel`
/// of crate `demo`.
fn lint(rel: &str, text: &str, cfg: &Config) -> Vec<(u32, u32, String)> {
    let input = FileInput {
        rel: rel.to_string(),
        class: FileClass::Library,
        crate_name: Some("demo".to_string()),
        text: text.to_string(),
    };
    let prep = Prepared::new(&input);
    run_rules(&prep, cfg)
        .into_iter()
        .map(|d| (d.line, d.col, d.rule.to_string()))
        .collect()
}

/// Lint `text` with the three workspace dataflow rules (pii-taint,
/// lock-order, determinism-flow) as a one-file workspace.
fn lint_flow(rel: &str, text: &str) -> Vec<(u32, u32, String)> {
    let cfg = Config::default();
    let input = FileInput {
        rel: rel.to_string(),
        class: FileClass::Library,
        crate_name: Some("demo".to_string()),
        text: text.to_string(),
    };
    let preps = vec![Prepared::new(&input)];
    let models = preps
        .iter()
        .map(|p| FileModel::build(p.input, &parse_file(&p.code)))
        .collect();
    let ws = Workspace::build(models);
    let sup = Suppressions::new(&preps);
    let mut out = Vec::new();
    taint::check(&ws, &cfg, &sup, &mut out);
    lockorder::check(&ws, &cfg, &sup, &mut out);
    detflow::check(&ws, &cfg, &sup, &mut out);
    out.sort_by_key(|d| (d.line, d.col));
    out.into_iter()
        .map(|d| (d.line, d.col, d.rule.to_string()))
        .collect()
}

#[test]
fn panic_hygiene_fixture() {
    let got = lint(
        "crates/demo/src/panic_hygiene.rs",
        include_str!("fixtures/panic_hygiene.rs"),
        &Config::default(),
    );
    // The `justified` unwrap (inline allow) and the `#[cfg(test)]` unwrap
    // produce nothing.
    assert_eq!(
        got,
        vec![
            (4, 7, "panic-hygiene".to_string()),
            (8, 7, "panic-hygiene".to_string()),
            (12, 5, "panic-hygiene".to_string()),
        ]
    );
}

#[test]
fn determinism_fixture_flags_wall_clock_only() {
    // Since the determinism-flow rule took over container tracking, the
    // token rule's only job is wall-clock/entropy calls: a HashMap
    // mention alone is not a finding.
    let got = lint(
        "crates/demo/src/determinism.rs",
        include_str!("fixtures/determinism.rs"),
        &Config::default(),
    );
    assert_eq!(got, vec![(7, 17, "determinism".to_string())]);
}

#[test]
fn lock_discipline_fixture() {
    let got = lint(
        "crates/demo/src/lock_discipline.rs",
        include_str!("fixtures/lock_discipline.rs"),
        &Config::default(),
    );
    assert_eq!(
        got,
        vec![
            (6, 5, "lock-discipline".to_string()),   // let _ = m.lock()
            (11, 19, "lock-discipline".to_string()), // re-lock while `guard` is live
        ]
    );
}

#[test]
fn unsafe_audit_fixture() {
    let got = lint(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/unsafe_audit.rs"),
        &Config::default(),
    );
    assert_eq!(
        got,
        vec![
            (1, 1, "unsafe-audit".to_string()), // crate root missing forbid(unsafe_code)
            (3, 5, "unsafe-audit".to_string()), // the `unsafe` keyword itself
        ]
    );
}

#[test]
fn pii_taint_fixture() {
    let got = lint_flow(
        "crates/demo/src/pii_taint.rs",
        include_str!("fixtures/pii_taint.rs"),
    );
    let rules: Vec<&str> = got.iter().map(|(_, _, r)| r.as_str()).collect();
    assert!(rules.iter().all(|r| *r == "pii-taint"), "{got:?}");
    let lines: Vec<u32> = got.iter().map(|(l, _, _)| *l).collect();
    // leaks_directly (14), leaks_through_local (20), the call site inside
    // leaks_interprocedurally (24). The redact()-wrapped, length-only,
    // non-PII-field and allow-suppressed functions are all clean.
    assert_eq!(lines, vec![14, 20, 24], "{got:?}");
}

#[test]
fn pii_taint_suppression_round_trip() {
    // Stripping the allow comment from the fixture must surface exactly
    // one extra finding on the previously suppressed line — proving the
    // suppression (and only it) was holding that finding back.
    let text = include_str!("fixtures/pii_taint.rs").replace(
        "// dox-lint:allow(pii-taint) fixture: demonstrates the escape hatch",
        "",
    );
    let with_allow = lint_flow(
        "crates/demo/src/pii_taint.rs",
        include_str!("fixtures/pii_taint.rs"),
    );
    let without_allow = lint_flow("crates/demo/src/pii_taint.rs", &text);
    assert_eq!(
        without_allow.len(),
        with_allow.len() + 1,
        "{without_allow:?}"
    );
    assert!(
        without_allow.iter().any(|(l, _, _)| *l == 41),
        "{without_allow:?}"
    );
}

#[test]
fn lock_order_fixture() {
    let got = lint_flow(
        "crates/demo/src/lock_order.rs",
        include_str!("fixtures/lock_order.rs"),
    );
    let rules: Vec<&str> = got.iter().map(|(_, _, r)| r.as_str()).collect();
    assert!(rules.iter().all(|r| *r == "lock-order"), "{got:?}");
    let lines: Vec<u32> = got.iter().map(|(l, _, _)| *l).collect();
    // The a→b edge in ab() (13) and the b→a edge in ba() (20) each close
    // the cycle; guard_across_io holds `Pair.a` across fs::write (27).
    // sequential_is_fine produces nothing.
    assert_eq!(lines, vec![13, 20, 27], "{got:?}");
}

#[test]
fn determinism_flow_fixture() {
    let got = lint_flow(
        "crates/demo/src/determinism_flow.rs",
        include_str!("fixtures/determinism_flow.rs"),
    );
    let rules: Vec<&str> = got.iter().map(|(_, _, r)| r.as_str()).collect();
    assert!(rules.iter().all(|r| *r == "determinism-flow"), "{got:?}");
    let lines: Vec<u32> = got.iter().map(|(l, _, _)| *l).collect();
    // Only leaks_unordered serializes hash-ordered rows (11); the sorted
    // and BTree-collected variants are clean.
    assert_eq!(lines, vec![11], "{got:?}");
}
