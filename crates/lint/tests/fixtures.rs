//! Per-rule fixture tests.
//!
//! Each file under `fixtures/` carries deliberate violations of exactly
//! one rule (the workspace walker skips `fixtures/` directories, so they
//! never trip the real gate). These tests assert the *exact* diagnostics
//! — file, line, column and rule — so any drift in the lexer or the rule
//! logic shows up as a precise diff.

use dox_lint::config::Config;
use dox_lint::rules::{run_rules, FileClass, FileInput, Prepared};

/// Lint `text` as if it were the library file `rel` of crate `demo`.
fn lint(rel: &str, text: &str, cfg: &Config) -> Vec<(u32, u32, String)> {
    let input = FileInput {
        rel: rel.to_string(),
        class: FileClass::Library,
        crate_name: Some("demo".to_string()),
        text: text.to_string(),
    };
    let prep = Prepared::new(&input);
    run_rules(&prep, cfg)
        .into_iter()
        .map(|d| (d.line, d.col, d.rule.to_string()))
        .collect()
}

#[test]
fn panic_hygiene_fixture() {
    let got = lint(
        "crates/demo/src/panic_hygiene.rs",
        include_str!("fixtures/panic_hygiene.rs"),
        &Config::default(),
    );
    // The `justified` unwrap (inline allow) and the `#[cfg(test)]` unwrap
    // produce nothing.
    assert_eq!(
        got,
        vec![
            (4, 7, "panic-hygiene".to_string()),
            (8, 7, "panic-hygiene".to_string()),
            (12, 5, "panic-hygiene".to_string()),
        ]
    );
}

#[test]
fn pii_sink_fixture() {
    let got = lint(
        "crates/demo/src/pii_sink.rs",
        include_str!("fixtures/pii_sink.rs"),
        &Config::default(),
    );
    // `body` as a sink argument, `{ssn}` as an inline format capture; the
    // redact()-wrapped call is clean.
    assert_eq!(
        got,
        vec![
            (4, 20, "pii-sink".to_string()),
            (8, 27, "pii-sink".to_string()),
        ]
    );
}

#[test]
fn determinism_fixture() {
    let rel = "crates/demo/src/determinism.rs";
    let cfg = Config {
        ordered_paths: vec![rel.to_string()],
        ..Config::default()
    };
    let got = lint(rel, include_str!("fixtures/determinism.rs"), &cfg);
    assert_eq!(
        got,
        vec![
            (3, 23, "determinism".to_string()),  // use …::HashMap
            (7, 17, "determinism".to_string()),  // Instant::now()
            (11, 20, "determinism".to_string()), // -> HashMap<…>
            (12, 5, "determinism".to_string()),  // HashMap::new()
        ]
    );
}

#[test]
fn determinism_fixture_off_ordered_paths_only_flags_clock() {
    // The same file off the ordered-path list: HashMap is tolerated,
    // wall-clock is not.
    let got = lint(
        "crates/demo/src/determinism.rs",
        include_str!("fixtures/determinism.rs"),
        &Config::default(),
    );
    assert_eq!(got, vec![(7, 17, "determinism".to_string())]);
}

#[test]
fn lock_discipline_fixture() {
    let got = lint(
        "crates/demo/src/lock_discipline.rs",
        include_str!("fixtures/lock_discipline.rs"),
        &Config::default(),
    );
    assert_eq!(
        got,
        vec![
            (6, 5, "lock-discipline".to_string()),   // let _ = m.lock()
            (11, 19, "lock-discipline".to_string()), // re-lock while `guard` is live
        ]
    );
}

#[test]
fn unsafe_audit_fixture() {
    let got = lint(
        "crates/demo/src/lib.rs",
        include_str!("fixtures/unsafe_audit.rs"),
        &Config::default(),
    );
    assert_eq!(
        got,
        vec![
            (1, 1, "unsafe-audit".to_string()), // crate root missing forbid(unsafe_code)
            (3, 5, "unsafe-audit".to_string()), // the `unsafe` keyword itself
        ]
    );
}
