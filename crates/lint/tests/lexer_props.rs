//! Property tests for the lexer: it must never panic, and every token's
//! recorded span must slice the source back to exactly the token text.

use dox_lint::lexer::lex;
use proptest::prelude::*;

proptest! {
    /// Arbitrary printable input (including multi-byte characters) never
    /// panics the lexer.
    #[test]
    fn never_panics_on_arbitrary_input(src in "\\PC{0,200}") {
        let _ = lex(&src);
    }

    /// Input biased toward Rust's lexical hazards — quote characters, raw
    /// string sigils, comment openers, braces — never panics the lexer.
    /// Plain \PC rarely forms `r#"` or `/*`; this class forms them often.
    #[test]
    fn never_panics_on_hazard_soup(src in r##"["'rb#/*!\\a-z0-9 \n(){}._]{0,120}"##) {
        let _ = lex(&src);
    }

    /// Tokens appear in source order, never overlap, and each one's
    /// `(off, len)` span slices the source to exactly its `text`.
    #[test]
    fn spans_round_trip(src in r##"["'rb#/*!\\a-z0-9 \n(){}._]{0,120}"##) {
        let mut prev_end = 0usize;
        for t in lex(&src) {
            prop_assert!(t.off >= prev_end, "tokens overlap or regress");
            prop_assert_eq!(&src[t.off..t.off + t.len], t.text.as_str());
            prev_end = t.off + t.len;
        }
    }
}
