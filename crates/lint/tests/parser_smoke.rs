//! Parser smoke test: every checkable `.rs` file in the workspace must
//! lex, parse and produce a symbol model without panicking, and the
//! model must not be trivially empty — a parser regression that silently
//! drops functions would otherwise blind every dataflow rule.

use dox_lint::parser::parse_file;
use dox_lint::rules::Prepared;
use dox_lint::symbols::FileModel;
use dox_lint::walker::{collect_files, find_workspace_root};
use std::path::Path;

#[test]
fn every_workspace_file_parses_into_the_model() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above crates/lint");
    let files = collect_files(&root).expect("workspace walks");
    assert!(files.len() > 100, "suspiciously few files: {}", files.len());

    let mut total_fns = 0usize;
    let mut total_structs = 0usize;
    for input in &files {
        let prep = Prepared::new(input);
        let parsed = parse_file(&prep.code);
        let model = FileModel::build(input, &parsed);
        total_fns += model.fns.len();
        total_structs += model.structs.len();
        // Every file with a `fn` token must surface at least one
        // function in the model (attributes/macros may hide bodies, but
        // never *all* of them).
        let fn_tokens = prep.code.iter().filter(|t| t.is_ident("fn")).count();
        assert!(
            fn_tokens == 0 || !model.fns.is_empty(),
            "{}: {} `fn` tokens but an empty model",
            input.rel,
            fn_tokens
        );
    }
    // The workspace holds thousands of functions; a collapse of the
    // symbol model to a fraction of that is a parser bug, not drift.
    assert!(total_fns > 1000, "only {total_fns} fns modeled");
    assert!(total_structs > 100, "only {total_structs} structs modeled");
}
