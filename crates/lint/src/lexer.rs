//! A small, error-tolerant Rust lexer.
//!
//! The analyzer cannot use `syn` (the workspace is offline and vendors no
//! parser crates), and none of the project lints need a full AST — every
//! rule works on a token stream with accurate line/column spans. The
//! lexer therefore handles exactly the token-level hazards that would
//! otherwise produce false matches inside literals:
//!
//! * strings with escapes, raw strings (`r"…"`, `r#"…"#`, any hash
//!   count), byte strings, and byte chars;
//! * char literals vs. lifetimes (`'a'` vs. `'a`);
//! * nested block comments and line comments (kept as tokens — the
//!   suppression scanner reads them);
//! * raw identifiers (`r#type`).
//!
//! It never panics on malformed input: unterminated literals and comments
//! are closed at end of file, and any byte it does not recognize becomes a
//! one-character [`TokenKind::Punct`] token. Every token records its byte
//! offset and length, so the original source slice can always be
//! recovered (`&src[tok.off..tok.off + tok.len]` equals `tok.text`).

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including `_` and raw identifiers).
    Ident,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// Numeric literal (integers, floats, suffixed forms).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'x'`.
    Char,
    /// `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */` comment, nesting handled.
    BlockComment,
    /// Any single punctuation or unrecognized character.
    Punct,
}

/// One lexed token with its exact source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source.
    pub off: usize,
    /// Byte length of the token.
    pub len: usize,
}

impl Token {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// For [`TokenKind::Punct`], the (first) character; `None` otherwise.
    pub fn punct(&self) -> Option<char> {
        if self.kind == TokenKind::Punct {
            self.text.chars().next()
        } else {
            None
        }
    }

    /// True when the token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.punct() == Some(c)
    }

    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|&(_, c)| c)
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_off(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Tokenize `src`, keeping comments. Whitespace is the only input not
/// represented in the output stream.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        let start_off = cur.byte_off();
        let start_line = cur.line;
        let start_col = cur.col;
        let kind = scan_token(&mut cur, c);
        let end_off = cur.byte_off();
        out.push(Token {
            kind,
            text: src[start_off..end_off].to_string(),
            line: start_line,
            col: start_col,
            off: start_off,
            len: end_off - start_off,
        });
    }
    out
}

/// Consume one token starting at `c`; the cursor is advanced past it.
fn scan_token(cur: &mut Cursor<'_>, c: char) -> TokenKind {
    match c {
        '/' if cur.peek_at(1) == Some('/') => {
            while let Some(ch) = cur.peek() {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            TokenKind::LineComment
        }
        '/' if cur.peek_at(1) == Some('*') => {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(), cur.peek_at(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        }
        'r' if matches!(cur.peek_at(1), Some('"') | Some('#')) => scan_raw_or_ident(cur, 1),
        'b' => scan_byte_prefixed(cur),
        '"' => {
            cur.bump();
            scan_string_body(cur);
            TokenKind::Str
        }
        '\'' => scan_char_or_lifetime(cur),
        _ if c == '_' || unicode_ident_start(c) => {
            while let Some(ch) = cur.peek() {
                if ch == '_' || ch.is_alphanumeric() {
                    cur.bump();
                } else {
                    break;
                }
            }
            TokenKind::Ident
        }
        _ if c.is_ascii_digit() => {
            scan_number(cur);
            TokenKind::Number
        }
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

fn unicode_ident_start(c: char) -> bool {
    c.is_alphabetic()
}

/// Called with the cursor on `r` (after `skip` known prefix chars when
/// reached through `b`). Distinguishes `r"…"`/`r#"…"#` raw strings and
/// `r#ident` raw identifiers from a plain identifier starting with `r`.
fn scan_raw_or_ident(cur: &mut Cursor<'_>, prefix: usize) -> TokenKind {
    // Count hashes after the prefix.
    let mut hashes = 0usize;
    while cur.peek_at(prefix + hashes) == Some('#') {
        hashes += 1;
    }
    match cur.peek_at(prefix + hashes) {
        Some('"') => {
            for _ in 0..prefix + hashes + 1 {
                cur.bump();
            }
            scan_raw_string_body(cur, hashes);
            TokenKind::Str
        }
        Some(ch) if hashes == 1 && (ch == '_' || unicode_ident_start(ch)) => {
            // Raw identifier `r#type`.
            cur.bump(); // r
            cur.bump(); // #
            while let Some(ch) = cur.peek() {
                if ch == '_' || ch.is_alphanumeric() {
                    cur.bump();
                } else {
                    break;
                }
            }
            TokenKind::Ident
        }
        _ => {
            // Just an identifier starting with `r` (or a lone `r` before
            // stray hashes — consume the ident part only).
            while let Some(ch) = cur.peek() {
                if ch == '_' || ch.is_alphanumeric() {
                    cur.bump();
                } else {
                    break;
                }
            }
            TokenKind::Ident
        }
    }
}

/// Called with the cursor on `b`: byte strings `b"…"`, raw byte strings
/// `br"…"`, byte chars `b'x'`, or an identifier starting with `b`.
fn scan_byte_prefixed(cur: &mut Cursor<'_>) -> TokenKind {
    match cur.peek_at(1) {
        Some('"') => {
            cur.bump();
            cur.bump();
            scan_string_body(cur);
            TokenKind::Str
        }
        Some('\'') => {
            cur.bump();
            cur.bump();
            scan_char_body(cur);
            TokenKind::Char
        }
        Some('r') if matches!(cur.peek_at(2), Some('"') | Some('#')) => {
            cur.bump(); // b
            scan_raw_or_ident(cur, 1)
        }
        _ => {
            while let Some(ch) = cur.peek() {
                if ch == '_' || ch.is_alphanumeric() {
                    cur.bump();
                } else {
                    break;
                }
            }
            TokenKind::Ident
        }
    }
}

/// Scan the body of a `"…"` string; the opening quote is consumed.
fn scan_string_body(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Scan the body of a raw string until `"` followed by `hashes` hashes.
fn scan_raw_string_body(cur: &mut Cursor<'_>, hashes: usize) {
    while let Some(ch) = cur.bump() {
        if ch == '"' {
            let mut seen = 0usize;
            while seen < hashes && cur.peek() == Some('#') {
                cur.bump();
                seen += 1;
            }
            if seen == hashes {
                break;
            }
        }
    }
}

/// Scan the rest of a char literal after the opening quote.
fn scan_char_body(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '\'' | '\n' => break,
            _ => {}
        }
    }
}

/// Disambiguate `'a'` (char) from `'a` (lifetime). Cursor is on `'`.
fn scan_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    match (cur.peek_at(1), cur.peek_at(2)) {
        // Escape sequence: definitely a char literal.
        (Some('\\'), _) => {
            cur.bump();
            scan_char_body(cur);
            TokenKind::Char
        }
        // 'x' — a one-character char literal.
        (Some(_), Some('\'')) => {
            cur.bump();
            cur.bump();
            cur.bump();
            TokenKind::Char
        }
        // 'ident — a lifetime (or `'static`).
        (Some(ch), _) if ch == '_' || unicode_ident_start(ch) => {
            cur.bump();
            while let Some(ch) = cur.peek() {
                if ch == '_' || ch.is_alphanumeric() {
                    cur.bump();
                } else {
                    break;
                }
            }
            TokenKind::Lifetime
        }
        // Lone quote at EOF or before punctuation: tolerate as punct.
        _ => {
            cur.bump();
            TokenKind::Punct
        }
    }
}

/// Scan a numeric literal. Coarse on purpose: rules never inspect numbers,
/// the scanner only needs to not swallow range dots (`1..2`) and to keep
/// spans exact.
fn scan_number(cur: &mut Cursor<'_>) {
    while let Some(ch) = cur.peek() {
        if ch == '_' || ch.is_ascii_alphanumeric() {
            cur.bump();
        } else {
            break;
        }
    }
    // One fractional part: `.` followed by a digit (so `1..2` and
    // `1.max(2)` are left alone).
    if cur.peek() == Some('.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while let Some(ch) = cur.peek() {
            if ch == '_' || ch.is_ascii_alphanumeric() {
                cur.bump();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokenKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn line_and_column_tracking() {
        let toks = lex("a\n  b\nccc d");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!((toks[2].line, toks[2].col), (3, 1));
        assert_eq!((toks[3].line, toks[3].col), (3, 5));
    }

    #[test]
    fn double_slash_inside_string_is_not_a_comment() {
        let toks = kinds(r#"let url = "https://example.com"; x"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("https://")));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"# ; done"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("quote")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "done"));
    }

    #[test]
    fn raw_string_unwrap_is_not_a_call() {
        // `.unwrap()` inside a string must lex as part of the literal.
        let toks = lex(r#"let s = "call .unwrap() here";"#);
        assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("a /* outer /* inner */ still */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].1, "a");
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert!(toks[1].1.contains("inner"));
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' 'b x<'a> '\\n'");
        assert_eq!(toks[0], (TokenKind::Char, "'a'".into()));
        assert_eq!(toks[1], (TokenKind::Lifetime, "'b".into()));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert_eq!(toks.last(), Some(&(TokenKind::Char, "'\\n'".into())));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r##"b"bytes" b'x' br#"raw"# bare"##);
        assert_eq!(toks[0].0, TokenKind::Str);
        assert_eq!(toks[1].0, TokenKind::Char);
        assert_eq!(toks[2].0, TokenKind::Str);
        assert_eq!(toks[3], (TokenKind::Ident, "bare".into()));
    }

    #[test]
    fn raw_identifier() {
        let toks = kinds("r#type + regular");
        assert_eq!(toks[0], (TokenKind::Ident, "r#type".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "regular".into()));
    }

    #[test]
    fn numbers_do_not_swallow_range_dots() {
        let toks = kinds("for i in 1..20 { x(3.5_f64); }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "1"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "20"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && t == "3.5_f64"));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"open", "r#\"open", "/* open", "'", "b'", "r#", "\\"] {
            let _ = lex(src);
        }
    }

    #[test]
    fn spans_recover_source_slices() {
        let src = "fn main() { let s = \"héllo\"; } // done";
        for t in lex(src) {
            assert_eq!(&src[t.off..t.off + t.len], t.text, "span mismatch");
        }
    }
}
