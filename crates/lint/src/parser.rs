//! A small, recovery-tolerant Rust parser over the [`crate::lexer`]
//! token stream.
//!
//! The dataflow rules (`pii-taint`, `lock-order`, `determinism-flow`)
//! need to follow *values* — through let-bindings, calls, field and
//! method expressions — which a flat token stream cannot express. This
//! parser produces exactly the shape those rules consume: items, `fn`
//! signatures with typed parameters, `impl` blocks, struct field types,
//! and an expression tree with spans. It is *not* a full Rust grammar:
//!
//! * macros-by-example are never expanded — a macro invocation becomes
//!   [`Expr::Macro`] with its arguments parsed best-effort as a comma
//!   list;
//! * patterns are reduced to the identifiers they bind;
//! * types are reduced to their last path segment plus generic
//!   arguments ([`Ty`]);
//! * anything it cannot parse degrades *gracefully*: the construct
//!   becomes [`Expr::Opaque`] (or the enclosing fn is marked
//!   [`FnDef::degraded`]) and analysis of everything else continues.
//!   The parser never panics on any input (asserted over the whole
//!   workspace by the parser smoke test).

use crate::lexer::{Token, TokenKind};

/// A type reduced to its last path segment and generic arguments.
///
/// `std::collections::HashMap<u64, Trace>` becomes
/// `Ty { name: "HashMap", args: [Ty("u64"), Ty("Trace")] }`; references,
/// lifetimes, `dyn`/`impl` and `mut` are stripped. Tuples parse as a
/// `Ty` named `"(tuple)"` whose args are the element types.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ty {
    /// Last path segment (`HashMap`, `Mutex`, `u64`, …).
    pub name: String,
    /// Generic arguments, in order.
    pub args: Vec<Ty>,
}

impl Ty {
    /// A type with no generic arguments.
    pub fn simple(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            args: Vec::new(),
        }
    }

    /// Peel smart-pointer/cell wrappers (`Arc`, `Rc`, `Box`, `Mutex`,
    /// `RwLock`, `RefCell`, `Option`, `MutexGuard`) down to the
    /// innermost interesting type. `Arc<Mutex<Tenant>>` → `Tenant`.
    pub fn peeled(&self) -> &Ty {
        const WRAPPERS: [&str; 8] = [
            "Arc",
            "Rc",
            "Box",
            "Mutex",
            "RwLock",
            "RefCell",
            "MutexGuard",
            "Option",
        ];
        let mut ty = self;
        let mut depth = 0;
        while WRAPPERS.contains(&ty.name.as_str()) && !ty.args.is_empty() && depth < 8 {
            // MutexGuard<'a, T>: the lifetime was stripped, args[0] is T.
            ty = &ty.args[0];
            depth += 1;
        }
        ty
    }
}

/// One parsed expression with the span of its head token.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A (possibly `::`-qualified) path, including bare identifiers.
    Path {
        /// Path segments; turbofish segments are dropped.
        segs: Vec<String>,
        /// Line of the first segment.
        line: u32,
        /// Column of the first segment.
        col: u32,
    },
    /// A literal (string, number, char, `true`/`false`).
    Lit {
        /// Token kind of the literal.
        kind: TokenKind,
        /// The literal's exact source text (quotes included for strings) —
        /// the taint rule reads inline format captures out of it.
        text: String,
        /// Line of the literal.
        line: u32,
        /// Column of the literal.
        col: u32,
    },
    /// `base.field` (also tuple indices: `pair.0`).
    Field {
        /// The receiver expression.
        base: Box<Expr>,
        /// Field name (or tuple index digits).
        name: String,
        /// Line of the field name.
        line: u32,
        /// Column of the field name.
        col: u32,
    },
    /// `callee(args…)` where the callee is an arbitrary expression
    /// (usually a [`Expr::Path`]).
    Call {
        /// The called expression.
        callee: Box<Expr>,
        /// Arguments, in order.
        args: Vec<Expr>,
        /// Line of the call head.
        line: u32,
        /// Column of the call head.
        col: u32,
    },
    /// `recv.method(args…)`.
    MethodCall {
        /// The receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Turbofish type arguments (`collect::<BTreeMap<_, _>>`).
        turbofish: Vec<Ty>,
        /// Arguments, in order (receiver excluded).
        args: Vec<Expr>,
        /// Line of the method name.
        line: u32,
        /// Column of the method name.
        col: u32,
    },
    /// `name!(args…)` — arguments parsed best-effort as a comma list.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Parsed arguments; unparseable tails become [`Expr::Opaque`].
        args: Vec<Expr>,
        /// Line of the macro name.
        line: u32,
        /// Column of the macro name.
        col: u32,
    },
    /// `|params| body` (also `move |…| …`).
    Closure {
        /// Parameter names bound by the closure.
        params: Vec<String>,
        /// The closure body.
        body: Box<Expr>,
        /// Line of the opening `|`.
        line: u32,
        /// Column of the opening `|`.
        col: u32,
    },
    /// `Type { field: expr, … }` struct literal.
    Struct {
        /// The struct's last path segment.
        ty: String,
        /// `(field, value)` pairs; shorthand fields repeat the name.
        fields: Vec<(String, Expr)>,
        /// Line of the type name.
        line: u32,
        /// Column of the type name.
        col: u32,
    },
    /// `base[index]` — kept distinct from [`Expr::Group`] so the type
    /// environment can resolve map/vec element types.
    Index {
        /// The indexed expression.
        base: Box<Expr>,
        /// The index expression.
        index: Box<Expr>,
    },
    /// A `{ … }` block in expression position.
    Block(Block),
    /// `if cond { … } else …` (includes `if let`, with the bound names).
    If {
        /// Names bound by an `if let` pattern (empty for plain `if`).
        bound: Vec<String>,
        /// The condition (or `if let` scrutinee).
        cond: Box<Expr>,
        /// The then-block.
        then: Block,
        /// The else arm (another `If` or a `Block`).
        els: Option<Box<Expr>>,
    },
    /// `match scrutinee { pat => body, … }`.
    Match {
        /// The matched expression.
        scrutinee: Box<Expr>,
        /// One entry per arm: the names its pattern binds, the optional
        /// guard, and the body.
        arms: Vec<MatchArm>,
    },
    /// `for pat in iter { … }`.
    For {
        /// Names bound by the loop pattern.
        bound: Vec<String>,
        /// The iterated expression.
        iter: Box<Expr>,
        /// The loop body.
        body: Block,
        /// Line of the `for`.
        line: u32,
    },
    /// `while cond { … }` / `while let … { … }` / `loop { … }`.
    While {
        /// Names bound by a `while let` pattern.
        bound: Vec<String>,
        /// The condition (a `true` literal for `loop`).
        cond: Box<Expr>,
        /// The loop body.
        body: Block,
    },
    /// `&expr` / `&mut expr` / `*expr` / `!expr` / `-expr`.
    Unary {
        /// The operand.
        inner: Box<Expr>,
    },
    /// A composite whose data flow is the union of its parts: binary
    /// operator chains, tuples, array literals, index expressions,
    /// range expressions.
    Group {
        /// The constituent expressions.
        parts: Vec<Expr>,
    },
    /// `target = value` (also `+=` and friends).
    Assign {
        /// The assignment target.
        target: Box<Expr>,
        /// The assigned value.
        value: Box<Expr>,
        /// Line of the operator.
        line: u32,
    },
    /// `return expr?` / `break expr?`.
    Return {
        /// The returned value, when present.
        value: Option<Box<Expr>>,
    },
    /// Something the parser could not model; consumed to a recovery
    /// point so surrounding analysis continues.
    Opaque {
        /// Line of the first unparsed token.
        line: u32,
        /// Column of the first unparsed token.
        col: u32,
    },
}

/// One `match` arm.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchArm {
    /// Names bound by the arm's pattern.
    pub bound: Vec<String>,
    /// The arm guard (`if …`), when present.
    pub guard: Option<Expr>,
    /// The arm body.
    pub body: Expr,
}

impl Expr {
    /// The source line of the expression's head token (best effort).
    pub fn line(&self) -> u32 {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Field { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Closure { line, .. }
            | Expr::Struct { line, .. }
            | Expr::For { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Opaque { line, .. } => *line,
            Expr::Block(b) => b.line,
            Expr::If { cond, .. }
            | Expr::Match {
                scrutinee: cond, ..
            } => cond.line(),
            Expr::While { cond, .. } => cond.line(),
            Expr::Unary { inner } => inner.line(),
            Expr::Index { base, .. } => base.line(),
            Expr::Group { parts } => parts.first().map_or(0, Expr::line),
            Expr::Return { value } => value.as_ref().map_or(0, |v| v.line()),
        }
    }
}

/// One statement of a block.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let pat(: ty)? (= init)? (else { … })?;`
    Let {
        /// Names bound by the pattern (the primary binding first).
        bound: Vec<String>,
        /// The annotated type, when written.
        ty: Option<Ty>,
        /// The initializer, when present.
        init: Option<Expr>,
        /// Line of the `let`.
        line: u32,
    },
    /// An expression statement terminated by `;`.
    Semi(Expr),
    /// A trailing expression (the block's value).
    Expr(Expr),
    /// A nested item (fn, struct, …).
    Item(Item),
}

/// A `{ … }` block.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Line of the opening brace.
    pub line: u32,
}

/// One function definition (free or inside an `impl`).
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// `(name, type)` per parameter. A `self` receiver appears as
    /// `("self", None)` — [`crate::symbols`] fills in the impl type.
    pub params: Vec<(String, Option<Ty>)>,
    /// The return type, when written.
    pub ret: Option<Ty>,
    /// The body; `None` for trait-method declarations and degraded fns.
    pub body: Option<Block>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Whether the body failed to parse (analysis skips it; the file
    /// still counts as parsed).
    pub degraded: bool,
}

/// One top-level (or module-nested) item.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A function definition.
    Fn(FnDef),
    /// `impl Type { … }` / `impl Trait for Type { … }`.
    Impl {
        /// Last path segment of the implemented type.
        ty: String,
        /// The methods.
        fns: Vec<FnDef>,
    },
    /// A struct with named fields.
    Struct {
        /// The struct name.
        name: String,
        /// `(field, type)` pairs.
        fields: Vec<(String, Ty)>,
    },
    /// An inline module.
    Mod {
        /// The module name.
        name: String,
        /// Whether the module (or an ancestor) is `#[cfg(test)]`.
        cfg_test: bool,
        /// The module's items.
        items: Vec<Item>,
    },
    /// Anything else (use, const, enum, trait, type alias, …).
    Other,
}

/// The parse result for one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// The items, in source order.
    pub items: Vec<Item>,
    /// Number of constructs that degraded to opaque/token mode.
    pub degraded: usize,
}

/// Parse one file's code tokens (comments already filtered out).
/// Never panics; unparseable constructs degrade and are counted.
pub fn parse_file(code: &[Token]) -> ParsedFile {
    let mut p = Parser {
        code,
        pos: 0,
        degraded: 0,
        fuel: code.len().saturating_mul(8) + 1024,
    };
    let items = p.parse_items(None);
    ParsedFile {
        items,
        degraded: p.degraded,
    }
}

struct Parser<'a> {
    code: &'a [Token],
    pos: usize,
    degraded: usize,
    /// Hard bound on total parsing work, so a pathological input can
    /// never loop: every consumed unit of fuel advances or aborts.
    fuel: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.code.get(self.pos)
    }

    fn peek_at(&self, ahead: usize) -> Option<&'a Token> {
        self.code.get(self.pos + ahead)
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek().is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek().is_some_and(|t| t.is_ident(s))
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, s: &str) -> bool {
        if self.at_ident(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Burn one unit of fuel; when exhausted, jump to the end of input
    /// so every loop terminates.
    fn spend_fuel(&mut self) -> bool {
        if self.fuel == 0 {
            self.pos = self.code.len();
            return false;
        }
        self.fuel -= 1;
        true
    }

    fn span(&self) -> (u32, u32) {
        self.peek().map_or((0, 0), |t| (t.line, t.col))
    }

    /// Skip a balanced delimiter group assuming the cursor is on the
    /// opening token. Returns false (cursor at end) when unbalanced.
    fn skip_balanced(&mut self, open: char, close: char) -> bool {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            if !self.spend_fuel() {
                return false;
            }
            if tok.is_punct(open) {
                depth += 1;
            } else if tok.is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return true;
                }
            }
            self.pos += 1;
        }
        false
    }

    /// Skip `<…>` generics, counting only angle depth (the lexer emits
    /// `>` one character at a time, so `>>` closes two levels).
    fn skip_generics(&mut self) -> bool {
        let mut depth = 0i32;
        while let Some(tok) = self.peek() {
            if !self.spend_fuel() {
                return false;
            }
            match tok.punct() {
                Some('<') => depth += 1,
                Some('>') => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return true;
                    }
                }
                Some('(') => {
                    if !self.skip_balanced('(', ')') {
                        return false;
                    }
                    continue;
                }
                Some('[') => {
                    if !self.skip_balanced('[', ']') {
                        return false;
                    }
                    continue;
                }
                Some(';') | Some('{') | Some('}') => return false,
                _ => {}
            }
            self.pos += 1;
        }
        false
    }

    /// Skip one or more `#[…]` / `#![…]` attributes; returns whether any
    /// of them was `#[cfg(test)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut cfg_test = false;
        while self.at_punct('#') {
            let start = self.pos;
            self.pos += 1;
            self.eat_punct('!');
            if !self.at_punct('[') {
                self.pos = start;
                break;
            }
            let attr_start = self.pos;
            if !self.skip_balanced('[', ']') {
                break;
            }
            let attr = &self.code[attr_start..self.pos];
            if attr.iter().any(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test")) {
                cfg_test = true;
            }
        }
        cfg_test
    }

    /// Skip `pub`, `pub(crate)`, `pub(in …)`.
    fn skip_visibility(&mut self) {
        if self.eat_ident("pub") && self.at_punct('(') {
            self.skip_balanced('(', ')');
        }
    }

    // ----- items ---------------------------------------------------------

    /// Parse items until end of input (or the closing brace of the
    /// enclosing module when `closing` is set).
    fn parse_items(&mut self, closing: Option<char>) -> Vec<Item> {
        let mut items = Vec::new();
        while let Some(tok) = self.peek() {
            if !self.spend_fuel() {
                break;
            }
            if let Some(c) = closing {
                if tok.is_punct(c) {
                    break;
                }
            }
            match self.parse_item() {
                Some(item) => items.push(item),
                None => {
                    // Unknown leading token: skip it and continue.
                    self.pos += 1;
                }
            }
        }
        items
    }

    /// Parse one item; `None` when the cursor is not on anything
    /// item-shaped (caller advances).
    fn parse_item(&mut self) -> Option<Item> {
        let cfg_test = self.skip_attrs();
        self.skip_visibility();
        let tok = self.peek()?;
        if tok.kind != TokenKind::Ident {
            return None;
        }
        match tok.text.as_str() {
            "fn" => Some(Item::Fn(self.parse_fn())),
            "unsafe" | "async" | "const" if self.peek_at(1).is_some_and(|t| t.is_ident("fn")) => {
                self.pos += 1;
                Some(Item::Fn(self.parse_fn()))
            }
            "impl" => Some(self.parse_impl()),
            "struct" => Some(self.parse_struct()),
            "mod" => Some(self.parse_mod(cfg_test)),
            "use" | "extern" => {
                self.skip_to_semi_or_block();
                Some(Item::Other)
            }
            "const" | "static" | "type" => {
                self.skip_to_semi_or_block();
                Some(Item::Other)
            }
            "enum" | "trait" | "union" => {
                // Skip the header then the brace body.
                self.pos += 1;
                while let Some(t) = self.peek() {
                    if !self.spend_fuel() {
                        break;
                    }
                    match t.punct() {
                        Some('{') => {
                            self.skip_balanced('{', '}');
                            break;
                        }
                        Some(';') => {
                            self.pos += 1;
                            break;
                        }
                        Some('<') => {
                            if !self.skip_generics() {
                                break;
                            }
                            continue;
                        }
                        _ => self.pos += 1,
                    }
                }
                Some(Item::Other)
            }
            "macro_rules" => {
                self.skip_to_semi_or_block();
                Some(Item::Other)
            }
            _ => None,
        }
    }

    /// Skip forward past the next top-level `;` or balanced `{…}`.
    fn skip_to_semi_or_block(&mut self) {
        while let Some(tok) = self.peek() {
            if !self.spend_fuel() {
                return;
            }
            match tok.punct() {
                Some(';') => {
                    self.pos += 1;
                    return;
                }
                Some('{') => {
                    self.skip_balanced('{', '}');
                    return;
                }
                Some('}') => return,
                Some('(') => {
                    self.skip_balanced('(', ')');
                }
                Some('[') => {
                    self.skip_balanced('[', ']');
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Parse `fn name(params) -> Ret { body }`; cursor on `fn`.
    fn parse_fn(&mut self) -> FnDef {
        let line = self.peek().map_or(0, |t| t.line);
        self.eat_ident("fn");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.pos += 1;
                n
            }
            _ => String::new(),
        };
        if self.at_punct('<') {
            self.skip_generics();
        }
        let mut def = FnDef {
            name,
            params: Vec::new(),
            ret: None,
            body: None,
            line,
            degraded: false,
        };
        if self.at_punct('(') {
            def.params = self.parse_params();
        } else {
            def.degraded = true;
            self.degraded += 1;
        }
        // `-> Ret`
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.pos += 2;
            def.ret = self.parse_type();
        }
        // where-clause: skip to the body or `;`.
        if self.at_ident("where") {
            while let Some(tok) = self.peek() {
                if !self.spend_fuel() {
                    break;
                }
                match tok.punct() {
                    Some('{') | Some(';') => break,
                    Some('<') => {
                        if !self.skip_generics() {
                            break;
                        }
                    }
                    Some('(') => {
                        if !self.skip_balanced('(', ')') {
                            break;
                        }
                    }
                    _ => self.pos += 1,
                }
            }
        }
        if self.eat_punct(';') {
            return def; // declaration only (trait method)
        }
        if self.at_punct('{') {
            let body_start = self.pos;
            let body = self.parse_block();
            match body {
                Some(b) => def.body = Some(b),
                None => {
                    def.degraded = true;
                    self.degraded += 1;
                    self.pos = body_start;
                    self.skip_balanced('{', '}');
                }
            }
        } else {
            def.degraded = true;
            self.degraded += 1;
        }
        def
    }

    /// Parse a parenthesized parameter list; cursor on `(`.
    fn parse_params(&mut self) -> Vec<(String, Option<Ty>)> {
        let close = match close_index(self.code, self.pos, '(', ')') {
            Some(c) => c,
            None => {
                self.pos = self.code.len();
                return Vec::new();
            }
        };
        self.pos += 1; // consume `(`
        let mut params = Vec::new();
        while self.pos < close {
            if !self.spend_fuel() {
                break;
            }
            // One parameter: pattern [: type] up to a top-level comma.
            let arg_end = top_level_comma(self.code, self.pos, close).unwrap_or(close);
            let slice_start = self.pos;
            // `self` receiver in any of its forms.
            let recv = self.code[slice_start..arg_end]
                .iter()
                .take(3)
                .find(|t| t.is_ident("self"));
            if recv.is_some()
                && !self.code[slice_start..arg_end]
                    .iter()
                    .any(|t| t.is_punct(':'))
            {
                params.push(("self".to_string(), None));
            } else {
                // name: Ty  (skip `mut`, `ref`, `_`-prefixed bindings kept)
                let mut k = slice_start;
                while k < arg_end
                    && (self.code[k].is_ident("mut")
                        || self.code[k].is_ident("ref")
                        || self.code[k].is_punct('&'))
                {
                    k += 1;
                }
                let name = self.code.get(k).filter(|t| t.kind == TokenKind::Ident);
                let colon = (k..arg_end).find(|&i| {
                    self.code[i].is_punct(':')
                        && !self.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
                        && !self
                            .code
                            .get(i.wrapping_sub(1))
                            .is_some_and(|t| t.is_punct(':'))
                });
                if let (Some(name), Some(colon)) = (name, colon) {
                    self.pos = colon + 1;
                    let ty = self.parse_type_until(arg_end);
                    params.push((name.text.clone(), ty));
                }
            }
            self.pos = arg_end;
            if self.pos < close {
                self.pos += 1; // the comma
            }
        }
        self.pos = close + 1;
        params
    }

    // ----- types ---------------------------------------------------------

    /// Parse a type starting at the cursor, stopping at natural type
    /// boundaries. `None` when nothing type-shaped is present.
    fn parse_type(&mut self) -> Option<Ty> {
        self.parse_type_until(self.code.len())
    }

    fn parse_type_until(&mut self, limit: usize) -> Option<Ty> {
        // Strip leading modifiers.
        loop {
            if self.pos >= limit {
                return None;
            }
            let tok = self.peek()?;
            if tok.is_punct('&')
                || tok.kind == TokenKind::Lifetime
                || tok.is_ident("mut")
                || tok.is_ident("dyn")
                || tok.is_ident("impl")
            {
                self.pos += 1;
                continue;
            }
            break;
        }
        let tok = self.peek()?;
        // Tuple type.
        if tok.is_punct('(') {
            let close = close_index(self.code, self.pos, '(', ')')?;
            let close = close.min(limit.max(self.pos));
            self.pos += 1;
            let mut args = Vec::new();
            while self.pos < close {
                if !self.spend_fuel() {
                    break;
                }
                let elem_end = top_level_comma(self.code, self.pos, close).unwrap_or(close);
                if let Some(t) = self.parse_type_until(elem_end) {
                    args.push(t);
                }
                self.pos = elem_end.min(close);
                if self.pos < close {
                    self.pos += 1;
                }
            }
            self.pos = close + 1;
            return Some(Ty {
                name: "(tuple)".to_string(),
                args,
            });
        }
        // Slice/array type.
        if tok.is_punct('[') {
            let close = close_index(self.code, self.pos, '[', ']')?;
            self.pos += 1;
            let inner = self.parse_type_until(close);
            self.pos = close + 1;
            return Some(Ty {
                name: "[slice]".to_string(),
                args: inner.into_iter().collect(),
            });
        }
        if tok.kind != TokenKind::Ident {
            return None;
        }
        // Path: a::b::C<…> — keep the last segment.
        let mut name = String::new();
        while self.pos < limit {
            if !self.spend_fuel() {
                break;
            }
            let Some(tok) = self.peek() else { break };
            if tok.kind == TokenKind::Ident {
                name = tok.text.clone();
                self.pos += 1;
                // `::` continues the path.
                if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                    self.pos += 2;
                    continue;
                }
                break;
            }
            break;
        }
        if name.is_empty() {
            return None;
        }
        let mut ty = Ty::simple(name);
        // Generic arguments.
        if self.pos < limit && self.at_punct('<') {
            let open = self.pos;
            let close = angle_close_index(self.code, open);
            if let Some(close) = close {
                self.pos = open + 1;
                while self.pos < close {
                    if !self.spend_fuel() {
                        break;
                    }
                    let arg_end =
                        top_level_comma_angles(self.code, self.pos, close).unwrap_or(close);
                    if let Some(t) = self.parse_type_until(arg_end) {
                        ty.args.push(t);
                    }
                    self.pos = arg_end.min(close);
                    if self.pos < close {
                        self.pos += 1;
                    }
                }
                self.pos = close + 1;
            }
        }
        Some(ty)
    }

    /// Parse `impl [Trait for] Type { fns… }`; cursor on `impl`.
    fn parse_impl(&mut self) -> Item {
        self.eat_ident("impl");
        if self.at_punct('<') {
            self.skip_generics();
        }
        let first = self.parse_type();
        // `impl Trait for Type`.
        let ty = if self.eat_ident("for") {
            self.parse_type()
        } else {
            first
        };
        // where clause / leftover path noise up to the body.
        while let Some(tok) = self.peek() {
            if !self.spend_fuel() {
                break;
            }
            match tok.punct() {
                Some('{') => break,
                Some(';') => {
                    self.pos += 1;
                    return Item::Other;
                }
                Some('<') => {
                    if !self.skip_generics() {
                        return Item::Other;
                    }
                }
                Some('(') => {
                    if !self.skip_balanced('(', ')') {
                        return Item::Other;
                    }
                }
                _ => self.pos += 1,
            }
        }
        let ty_name = ty.map_or_else(String::new, |t| t.name);
        let Some(close) = close_index(self.code, self.pos, '{', '}') else {
            self.pos = self.code.len();
            return Item::Other;
        };
        self.pos += 1;
        let mut fns = Vec::new();
        while self.pos < close {
            if !self.spend_fuel() {
                break;
            }
            self.skip_attrs();
            self.skip_visibility();
            let at_fn = self.at_ident("fn")
                || ((self.at_ident("unsafe") || self.at_ident("async") || self.at_ident("const"))
                    && self.peek_at(1).is_some_and(|t| t.is_ident("fn")));
            if at_fn {
                if !self.at_ident("fn") {
                    self.pos += 1;
                }
                fns.push(self.parse_fn());
            } else if self.pos < close {
                // const/type items inside the impl: skip.
                self.skip_to_semi_or_block();
                if self.pos >= close {
                    break;
                }
            }
        }
        self.pos = close + 1;
        Item::Impl { ty: ty_name, fns }
    }

    /// Parse `struct Name { field: Ty, … }` (unit/tuple structs become
    /// fieldless); cursor on `struct`.
    fn parse_struct(&mut self) -> Item {
        self.eat_ident("struct");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.pos += 1;
                n
            }
            _ => String::new(),
        };
        if self.at_punct('<') {
            self.skip_generics();
        }
        if self.at_ident("where") {
            while let Some(tok) = self.peek() {
                if !self.spend_fuel() {
                    break;
                }
                match tok.punct() {
                    Some('{') | Some(';') => break,
                    _ => self.pos += 1,
                }
            }
        }
        // Tuple struct or unit struct.
        if self.at_punct('(') {
            self.skip_balanced('(', ')');
            self.eat_punct(';');
            return Item::Struct {
                name,
                fields: Vec::new(),
            };
        }
        if self.eat_punct(';') {
            return Item::Struct {
                name,
                fields: Vec::new(),
            };
        }
        let Some(close) = close_index(self.code, self.pos, '{', '}') else {
            self.pos = self.code.len();
            return Item::Struct {
                name,
                fields: Vec::new(),
            };
        };
        self.pos += 1;
        let mut fields = Vec::new();
        while self.pos < close {
            if !self.spend_fuel() {
                break;
            }
            self.skip_attrs();
            self.skip_visibility();
            let field_end = top_level_comma(self.code, self.pos, close).unwrap_or(close);
            let name_tok = self.peek().filter(|t| t.kind == TokenKind::Ident).cloned();
            let colon = (self.pos..field_end).find(|&i| {
                self.code[i].is_punct(':') && !self.code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            });
            if let (Some(name_tok), Some(colon)) = (name_tok, colon) {
                self.pos = colon + 1;
                if let Some(ty) = self.parse_type_until(field_end) {
                    fields.push((name_tok.text, ty));
                }
            }
            self.pos = field_end.min(close);
            if self.pos < close {
                self.pos += 1;
            }
        }
        self.pos = close + 1;
        Item::Struct { name, fields }
    }

    /// Parse `mod name { items… }` / `mod name;`; cursor on `mod`.
    fn parse_mod(&mut self, cfg_test: bool) -> Item {
        self.eat_ident("mod");
        let name = match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                let n = t.text.clone();
                self.pos += 1;
                n
            }
            _ => String::new(),
        };
        if self.eat_punct(';') {
            return Item::Other;
        }
        if !self.eat_punct('{') {
            return Item::Other;
        }
        let items = self.parse_items(Some('}'));
        self.eat_punct('}');
        Item::Mod {
            name,
            cfg_test,
            items,
        }
    }

    // ----- statements and expressions ------------------------------------

    /// Parse a `{ … }` block; cursor on `{`. `None` on malformed input
    /// (cursor position is then unspecified — callers reset it).
    fn parse_block(&mut self) -> Option<Block> {
        let line = self.peek().map_or(0, |t| t.line);
        let close = close_index(self.code, self.pos, '{', '}')?;
        self.pos += 1;
        let mut stmts = Vec::new();
        while self.pos < close {
            if !self.spend_fuel() {
                break;
            }
            self.skip_attrs();
            if self.pos >= close {
                break;
            }
            if self.eat_punct(';') {
                continue;
            }
            // Nested items keep the symbol model complete.
            let item_start = self.pos;
            if self.looks_like_item() {
                if let Some(item) = self.parse_item() {
                    stmts.push(Stmt::Item(item));
                    continue;
                }
                self.pos = item_start;
            }
            if self.at_ident("let") {
                stmts.push(self.parse_let(close));
                continue;
            }
            let expr = self.parse_expr_recovering(close);
            if self.pos < close && self.eat_punct(';') {
                stmts.push(Stmt::Semi(expr));
            } else if self.pos >= close {
                stmts.push(Stmt::Expr(expr));
            } else {
                // Block-ended expression (if/match/loop used as a
                // statement) — no semicolon required.
                stmts.push(Stmt::Semi(expr));
            }
        }
        self.pos = close + 1;
        Some(Block { stmts, line })
    }

    fn looks_like_item(&self) -> bool {
        let Some(tok) = self.peek() else { return false };
        if tok.kind != TokenKind::Ident {
            // Not even `#[…]` attributes: statement attributes are
            // handled by skip_attrs before this check runs.
            return false;
        }
        matches!(
            tok.text.as_str(),
            "fn" | "struct" | "impl" | "mod" | "use" | "enum" | "trait" | "macro_rules"
        ) || (tok.is_ident("pub"))
    }

    /// Parse `let pat (: ty)? (= expr)? (else { … })? ;` within `limit`.
    fn parse_let(&mut self, limit: usize) -> Stmt {
        let line = self.peek().map_or(0, |t| t.line);
        self.eat_ident("let");
        // Pattern tokens up to a top-level `:` (type), `=` (init) or `;`.
        let pat_start = self.pos;
        let mut depth = 0i32;
        let mut colon: Option<usize> = None;
        let mut eq: Option<usize> = None;
        let mut k = self.pos;
        while k < limit {
            let t = &self.code[k];
            match t.punct() {
                Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
                Some(')') | Some(']') | Some('}') | Some('>') => depth -= 1,
                Some(':')
                    if depth == 0
                        && colon.is_none()
                        && !self.code.get(k + 1).is_some_and(|t| t.is_punct(':'))
                        && !self
                            .code
                            .get(k.wrapping_sub(1))
                            .is_some_and(|t| t.is_punct(':')) =>
                {
                    colon = Some(k);
                }
                Some('=')
                    if depth == 0 && !self.code.get(k + 1).is_some_and(|t| t.is_punct('=')) =>
                {
                    eq = Some(k);
                    break;
                }
                Some(';') if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let pat_end = colon.or(eq).unwrap_or(k);
        let bound = pattern_bindings(&self.code[pat_start..pat_end]);
        let mut ty = None;
        if let Some(c) = colon.filter(|c| eq.is_none_or(|e| *c < e)) {
            self.pos = c + 1;
            ty = self.parse_type_until(eq.unwrap_or(k));
        }
        let mut init = None;
        if let Some(e) = eq {
            self.pos = e + 1;
            init = Some(self.parse_expr_recovering(limit));
        } else {
            self.pos = k;
        }
        // `let … else { … }`.
        if self.at_ident("else") {
            self.pos += 1;
            if self.at_punct('{') {
                let start = self.pos;
                if self.parse_block().is_none() {
                    self.pos = start;
                    self.skip_balanced('{', '}');
                }
            }
        }
        self.eat_punct(';');
        Stmt::Let {
            bound,
            ty,
            init,
            line,
        }
    }

    /// Parse an expression; on failure produce [`Expr::Opaque`] and skip
    /// to the next top-level `;` (or `limit`).
    fn parse_expr_recovering(&mut self, limit: usize) -> Expr {
        let (line, col) = self.span();
        let start = self.pos;
        match self.parse_expr(limit, true) {
            Some(e) => e,
            None => {
                self.degraded += 1;
                self.pos = start.max(self.pos);
                // Recover: skip to `;` at depth 0 or to limit.
                let mut depth = 0i32;
                while self.pos < limit {
                    if !self.spend_fuel() {
                        break;
                    }
                    let Some(t) = self.peek() else { break };
                    match t.punct() {
                        Some('(') | Some('[') | Some('{') => depth += 1,
                        Some(')') | Some(']') | Some('}') => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        Some(';') if depth == 0 => break,
                        _ => {}
                    }
                    self.pos += 1;
                }
                Expr::Opaque { line, col }
            }
        }
    }

    /// Parse one expression (binary-operator level). `structs_ok` is
    /// false in `if`/`while`/`match`/`for` head position where `X {`
    /// starts the block, not a struct literal.
    fn parse_expr(&mut self, limit: usize, structs_ok: bool) -> Option<Expr> {
        if !self.spend_fuel() {
            return None;
        }
        let first = self.parse_prefix(limit, structs_ok)?;
        let mut parts = vec![first];
        // Fold binary operators / ranges / casts into a Group.
        loop {
            if self.pos >= limit || !self.spend_fuel() {
                break;
            }
            let Some(tok) = self.peek() else { break };
            // Assignment: `=`, `+=`, … (lowest precedence, right-assoc).
            let is_plain_eq = tok.is_punct('=')
                && !self.peek_at(1).is_some_and(|t| t.is_punct('='))
                && !matches!(
                    parts.last(),
                    Some(Expr::Lit { .. }) // `1 = x` is nonsense; be safe
                );
            let is_compound_eq = matches!(
                tok.punct(),
                Some('+')
                    | Some('-')
                    | Some('*')
                    | Some('/')
                    | Some('%')
                    | Some('^')
                    | Some('&')
                    | Some('|')
            ) && self.peek_at(1).is_some_and(|t| t.is_punct('='))
                && !self.peek_at(2).is_some_and(|t| t.is_punct('='));
            if is_plain_eq || is_compound_eq {
                let line = tok.line;
                self.pos += if is_plain_eq { 1 } else { 2 };
                let value = self.parse_expr(limit, structs_ok)?;
                let target = group_or_single(std::mem::take(&mut parts));
                return Some(Expr::Assign {
                    target: Box::new(target),
                    value: Box::new(value),
                    line,
                });
            }
            // `as Type` cast.
            if tok.is_ident("as") {
                self.pos += 1;
                let _ = self.parse_type_until(limit);
                continue;
            }
            let op_len = binary_op_len(self.code, self.pos);
            if op_len == 0 {
                break;
            }
            self.pos += op_len;
            // Range with open end (`start..`): no right operand.
            if self.pos >= limit
                || self.peek().is_none_or(|t| {
                    matches!(
                        t.punct(),
                        Some(')') | Some(']') | Some('}') | Some(';') | Some(',')
                    )
                })
            {
                break;
            }
            let rhs = self.parse_prefix(limit, structs_ok)?;
            parts.push(rhs);
        }
        Some(group_or_single(parts))
    }

    /// Prefix operators, closures, and control-flow expressions.
    fn parse_prefix(&mut self, limit: usize, structs_ok: bool) -> Option<Expr> {
        if self.pos >= limit || !self.spend_fuel() {
            return None;
        }
        let (line, col) = self.span();
        let tok = self.peek()?;
        // Prefix operators.
        if tok.is_punct('&') || tok.is_punct('*') || tok.is_punct('!') || tok.is_punct('-') {
            self.pos += 1;
            self.eat_ident("mut");
            let inner = self.parse_prefix(limit, structs_ok)?;
            return Some(Expr::Unary {
                inner: Box::new(inner),
            });
        }
        // Closures.
        if tok.is_ident("move") && self.peek_at(1).is_some_and(|t| t.is_punct('|')) {
            self.pos += 1;
            return self.parse_closure(limit);
        }
        if tok.is_punct('|') {
            return self.parse_closure(limit);
        }
        if tok.kind == TokenKind::Ident {
            match tok.text.as_str() {
                "if" => return self.parse_if(limit),
                "match" => return self.parse_match(limit),
                "for" => return self.parse_for(limit),
                "while" => return self.parse_while(limit),
                "loop" => {
                    self.pos += 1;
                    let body = self.parse_block()?;
                    return Some(Expr::While {
                        bound: Vec::new(),
                        cond: Box::new(Expr::Lit {
                            kind: TokenKind::Ident,
                            text: "true".to_string(),
                            line,
                            col,
                        }),
                        body,
                    });
                }
                "return" | "break" => {
                    self.pos += 1;
                    let stops = self.peek().is_none_or(|t| {
                        matches!(
                            t.punct(),
                            Some(';') | Some(')') | Some(']') | Some('}') | Some(',')
                        )
                    });
                    let value = if stops || self.pos >= limit {
                        None
                    } else {
                        self.parse_expr(limit, structs_ok).map(Box::new)
                    };
                    return Some(Expr::Return { value });
                }
                "continue" => {
                    self.pos += 1;
                    return Some(Expr::Return { value: None });
                }
                "unsafe" if self.peek_at(1).is_some_and(|t| t.is_punct('{')) => {
                    self.pos += 1;
                    let block = self.parse_block()?;
                    return Some(Expr::Block(block));
                }
                _ => {}
            }
        }
        self.parse_postfix(limit, structs_ok)
    }

    /// Parse `|params| body`.
    fn parse_closure(&mut self, limit: usize) -> Option<Expr> {
        let (line, col) = self.span();
        // `||` — empty parameter list (two `|` puncts).
        let mut params = Vec::new();
        self.eat_punct('|');
        if !self.eat_punct('|') {
            // Parameters until the closing `|`.
            let mut depth = 0i32;
            let mut end = self.pos;
            while end < limit {
                let t = &self.code[end];
                match t.punct() {
                    Some('(') | Some('[') | Some('<') => depth += 1,
                    Some(')') | Some(']') | Some('>') => depth -= 1,
                    Some('|') if depth == 0 => break,
                    _ => {}
                }
                end += 1;
            }
            params = pattern_bindings(&self.code[self.pos..end]);
            self.pos = end;
            self.eat_punct('|');
        }
        // Optional `-> Ty` before a braced body.
        if self.at_punct('-') && self.peek_at(1).is_some_and(|t| t.is_punct('>')) {
            self.pos += 2;
            let _ = self.parse_type();
        }
        let body = self.parse_expr(limit, true)?;
        Some(Expr::Closure {
            params,
            body: Box::new(body),
            line,
            col,
        })
    }

    fn parse_if(&mut self, limit: usize) -> Option<Expr> {
        self.eat_ident("if");
        let mut bound = Vec::new();
        if self.eat_ident("let") {
            // Pattern up to the top-level `=`.
            let start = self.pos;
            let mut depth = 0i32;
            while self.pos < limit {
                if !self.spend_fuel() {
                    return None;
                }
                let t = self.peek()?;
                match t.punct() {
                    Some('(') | Some('[') | Some('<') => depth += 1,
                    Some(')') | Some(']') | Some('>') => depth -= 1,
                    Some('=')
                        if depth == 0 && !self.peek_at(1).is_some_and(|t| t.is_punct('=')) =>
                    {
                        break;
                    }
                    Some('{') if depth == 0 => return None,
                    _ => {}
                }
                self.pos += 1;
            }
            bound = pattern_bindings(&self.code[start..self.pos]);
            self.eat_punct('=');
        }
        let cond = self.parse_expr(limit, false)?;
        let then = self.parse_block()?;
        let mut els = None;
        if self.eat_ident("else") {
            if self.at_ident("if") {
                els = Some(Box::new(self.parse_if(limit)?));
            } else if self.at_punct('{') {
                els = Some(Box::new(Expr::Block(self.parse_block()?)));
            }
        }
        Some(Expr::If {
            bound,
            cond: Box::new(cond),
            then,
            els,
        })
    }

    fn parse_match(&mut self, limit: usize) -> Option<Expr> {
        self.eat_ident("match");
        let scrutinee = self.parse_expr(limit, false)?;
        let close = close_index(self.code, self.pos, '{', '}')?;
        self.pos += 1;
        let mut arms = Vec::new();
        while self.pos < close {
            if !self.spend_fuel() {
                break;
            }
            self.skip_attrs();
            if self.pos >= close {
                break;
            }
            // Pattern tokens up to the top-level `=>`; an optional
            // `if guard` splits off the tail.
            let pat_start = self.pos;
            let mut depth = 0i32;
            let mut arrow = None;
            let mut guard_at = None;
            let mut k = self.pos;
            while k < close {
                let t = &self.code[k];
                match t.punct() {
                    Some('(') | Some('[') | Some('{') => depth += 1,
                    Some(')') | Some(']') | Some('}') => depth -= 1,
                    Some('=')
                        if depth == 0 && self.code.get(k + 1).is_some_and(|t| t.is_punct('>')) =>
                    {
                        arrow = Some(k);
                        break;
                    }
                    _ => {
                        if depth == 0 && t.is_ident("if") && guard_at.is_none() && k > pat_start {
                            guard_at = Some(k);
                        }
                    }
                }
                k += 1;
            }
            let Some(arrow) = arrow else { break };
            let pat_end = guard_at.unwrap_or(arrow);
            let bound = pattern_bindings(&self.code[pat_start..pat_end]);
            let mut guard = None;
            if let Some(g) = guard_at {
                self.pos = g + 1;
                guard = self.parse_expr(arrow, true);
            }
            self.pos = arrow + 2;
            let body = if self.at_punct('{') {
                match self.parse_block() {
                    Some(b) => Expr::Block(b),
                    None => {
                        let (line, col) = self.span();
                        self.degraded += 1;
                        self.pos = close;
                        Expr::Opaque { line, col }
                    }
                }
            } else {
                // Up to the next top-level comma.
                let body_end = top_level_comma(self.code, self.pos, close).unwrap_or(close);
                let e = self.parse_expr_recovering(body_end);
                self.pos = self.pos.max(body_end.min(close));
                e
            };
            arms.push(MatchArm { bound, guard, body });
            if self.pos < close && self.at_punct(',') {
                self.pos += 1;
            }
        }
        self.pos = close + 1;
        Some(Expr::Match {
            scrutinee: Box::new(scrutinee),
            arms,
        })
    }

    fn parse_for(&mut self, limit: usize) -> Option<Expr> {
        let line = self.peek().map_or(0, |t| t.line);
        self.eat_ident("for");
        let start = self.pos;
        // Pattern up to the top-level `in`.
        let mut depth = 0i32;
        while self.pos < limit {
            if !self.spend_fuel() {
                return None;
            }
            let t = self.peek()?;
            match t.punct() {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => return None,
                _ => {
                    if depth == 0 && t.is_ident("in") {
                        break;
                    }
                }
            }
            self.pos += 1;
        }
        let bound = pattern_bindings(&self.code[start..self.pos]);
        if !self.eat_ident("in") {
            return None;
        }
        let iter = self.parse_expr(limit, false)?;
        let body = self.parse_block()?;
        Some(Expr::For {
            bound,
            iter: Box::new(iter),
            body,
            line,
        })
    }

    fn parse_while(&mut self, limit: usize) -> Option<Expr> {
        self.eat_ident("while");
        let mut bound = Vec::new();
        if self.eat_ident("let") {
            let start = self.pos;
            let mut depth = 0i32;
            while self.pos < limit {
                if !self.spend_fuel() {
                    return None;
                }
                let t = self.peek()?;
                match t.punct() {
                    Some('(') | Some('[') | Some('<') => depth += 1,
                    Some(')') | Some(']') | Some('>') => depth -= 1,
                    Some('=')
                        if depth == 0 && !self.peek_at(1).is_some_and(|t| t.is_punct('=')) =>
                    {
                        break;
                    }
                    Some('{') if depth == 0 => return None,
                    _ => {}
                }
                self.pos += 1;
            }
            bound = pattern_bindings(&self.code[start..self.pos]);
            self.eat_punct('=');
        }
        let cond = self.parse_expr(limit, false)?;
        let body = self.parse_block()?;
        Some(Expr::While {
            bound,
            cond: Box::new(cond),
            body,
        })
    }

    /// Primary expression plus postfix chain (`.field`, `.method(…)`,
    /// calls, indexing, `?`).
    fn parse_postfix(&mut self, limit: usize, structs_ok: bool) -> Option<Expr> {
        let mut expr = self.parse_primary(limit, structs_ok)?;
        loop {
            if self.pos >= limit || !self.spend_fuel() {
                break;
            }
            let Some(tok) = self.peek() else { break };
            match tok.punct() {
                Some('?') => {
                    self.pos += 1;
                }
                Some('.') => {
                    let Some(next) = self.peek_at(1) else { break };
                    // `..` range — not a field access.
                    if next.is_punct('.') {
                        break;
                    }
                    let (line, col) = (next.line, next.col);
                    if next.kind == TokenKind::Number {
                        self.pos += 2;
                        expr = Expr::Field {
                            base: Box::new(expr),
                            name: next.text.clone(),
                            line,
                            col,
                        };
                        continue;
                    }
                    if next.kind != TokenKind::Ident {
                        break;
                    }
                    let name = next.text.clone();
                    self.pos += 2;
                    // Turbofish.
                    let mut turbofish = Vec::new();
                    if self.at_punct(':')
                        && self.peek_at(1).is_some_and(|t| t.is_punct(':'))
                        && self.peek_at(2).is_some_and(|t| t.is_punct('<'))
                    {
                        self.pos += 2;
                        let open = self.pos;
                        if let Some(close) = angle_close_index(self.code, open) {
                            self.pos = open + 1;
                            while self.pos < close {
                                if !self.spend_fuel() {
                                    break;
                                }
                                let arg_end = top_level_comma_angles(self.code, self.pos, close)
                                    .unwrap_or(close);
                                if let Some(t) = self.parse_type_until(arg_end) {
                                    turbofish.push(t);
                                }
                                self.pos = arg_end.min(close);
                                if self.pos < close {
                                    self.pos += 1;
                                }
                            }
                            self.pos = close + 1;
                        }
                    }
                    if self.at_punct('(') {
                        let args = self.parse_call_args(limit)?;
                        expr = Expr::MethodCall {
                            recv: Box::new(expr),
                            method: name,
                            turbofish,
                            args,
                            line,
                            col,
                        };
                    } else {
                        expr = Expr::Field {
                            base: Box::new(expr),
                            name,
                            line,
                            col,
                        };
                    }
                }
                Some('(') => {
                    let (line, col) = match &expr {
                        Expr::Path { line, col, .. } => (*line, *col),
                        _ => self.span(),
                    };
                    let args = self.parse_call_args(limit)?;
                    expr = Expr::Call {
                        callee: Box::new(expr),
                        args,
                        line,
                        col,
                    };
                }
                Some('[') => {
                    let close = close_index(self.code, self.pos, '[', ']')?;
                    self.pos += 1;
                    let idx = self.parse_expr_recovering(close);
                    self.pos = close + 1;
                    expr = Expr::Index {
                        base: Box::new(expr),
                        index: Box::new(idx),
                    };
                }
                _ => break,
            }
        }
        Some(expr)
    }

    /// Parse `(arg, …)`; cursor on `(`.
    fn parse_call_args(&mut self, _limit: usize) -> Option<Vec<Expr>> {
        let close = close_index(self.code, self.pos, '(', ')')?;
        self.pos += 1;
        let mut args = Vec::new();
        while self.pos < close {
            if !self.spend_fuel() {
                break;
            }
            let arg_end = top_level_comma(self.code, self.pos, close).unwrap_or(close);
            if arg_end > self.pos {
                args.push(self.parse_expr_recovering(arg_end));
            }
            self.pos = self.pos.max(arg_end.min(close));
            if self.pos < close {
                self.pos += 1;
            }
        }
        self.pos = close + 1;
        Some(args)
    }

    /// Literals, paths, macro calls, struct literals, parens, arrays,
    /// blocks.
    fn parse_primary(&mut self, limit: usize, structs_ok: bool) -> Option<Expr> {
        if self.pos >= limit {
            return None;
        }
        let tok = self.peek()?;
        let (line, col) = (tok.line, tok.col);
        match tok.kind {
            TokenKind::Str | TokenKind::Number | TokenKind::Char | TokenKind::Lifetime => {
                let kind = tok.kind;
                let text = tok.text.clone();
                self.pos += 1;
                // Lifetimes appear as loop labels: `'outer: loop { … }`.
                if kind == TokenKind::Lifetime && self.eat_punct(':') {
                    return self.parse_prefix(limit, structs_ok);
                }
                Some(Expr::Lit {
                    kind,
                    text,
                    line,
                    col,
                })
            }
            TokenKind::Punct => match tok.punct()? {
                '(' => {
                    let close = close_index(self.code, self.pos, '(', ')')?;
                    self.pos += 1;
                    let mut parts = Vec::new();
                    while self.pos < close {
                        if !self.spend_fuel() {
                            break;
                        }
                        let elem_end = top_level_comma(self.code, self.pos, close).unwrap_or(close);
                        if elem_end > self.pos {
                            parts.push(self.parse_expr_recovering(elem_end));
                        }
                        self.pos = self.pos.max(elem_end.min(close));
                        if self.pos < close {
                            self.pos += 1;
                        }
                    }
                    self.pos = close + 1;
                    Some(group_or_single(parts))
                }
                '[' => {
                    let close = close_index(self.code, self.pos, '[', ']')?;
                    self.pos += 1;
                    let mut parts = Vec::new();
                    while self.pos < close {
                        if !self.spend_fuel() {
                            break;
                        }
                        // `[expr; len]` or `[a, b, c]` — split on either.
                        let elem_end = (self.pos..close)
                            .find(|&i| self.code[i].is_punct(',') || self.code[i].is_punct(';'))
                            .filter(|&i| depth_at(self.code, self.pos, i) == 0)
                            .unwrap_or(close);
                        if elem_end > self.pos {
                            parts.push(self.parse_expr_recovering(elem_end));
                        }
                        self.pos = self.pos.max(elem_end.min(close));
                        if self.pos < close {
                            self.pos += 1;
                        }
                    }
                    self.pos = close + 1;
                    Some(Expr::Group { parts })
                }
                '{' => {
                    let start = self.pos;
                    match self.parse_block() {
                        Some(b) => Some(Expr::Block(b)),
                        None => {
                            self.pos = start;
                            self.skip_balanced('{', '}');
                            self.degraded += 1;
                            Some(Expr::Opaque { line, col })
                        }
                    }
                }
                '.' if self.peek_at(1).is_some_and(|t| t.is_punct('.')) => {
                    // Leading range `..end` / `..`.
                    self.pos += 2;
                    self.eat_punct('=');
                    let end = self.parse_prefix(limit, structs_ok);
                    Some(Expr::Group {
                        parts: end.into_iter().collect(),
                    })
                }
                _ => None,
            },
            TokenKind::Ident => {
                if tok.text == "true" || tok.text == "false" {
                    let text = tok.text.clone();
                    self.pos += 1;
                    return Some(Expr::Lit {
                        kind: TokenKind::Ident,
                        text,
                        line,
                        col,
                    });
                }
                // Path (with `::` segments and optional turbofish).
                let mut segs = vec![tok.text.clone()];
                self.pos += 1;
                loop {
                    if !self.spend_fuel() {
                        break;
                    }
                    if self.at_punct(':') && self.peek_at(1).is_some_and(|t| t.is_punct(':')) {
                        // `::<…>` turbofish or `::segment`.
                        if self.peek_at(2).is_some_and(|t| t.is_punct('<')) {
                            self.pos += 2;
                            let open = self.pos;
                            if let Some(close) = angle_close_index(self.code, open) {
                                self.pos = close + 1;
                            } else {
                                break;
                            }
                            continue;
                        }
                        if self.peek_at(2).is_some_and(|t| t.kind == TokenKind::Ident) {
                            segs.push(self.code[self.pos + 2].text.clone());
                            self.pos += 3;
                            continue;
                        }
                        break;
                    }
                    break;
                }
                // Macro call.
                if self.at_punct('!') {
                    let next = self.peek_at(1);
                    if let Some(open) = next.and_then(Token::punct) {
                        if open == '(' || open == '[' || open == '{' {
                            let close_ch = match open {
                                '(' => ')',
                                '[' => ']',
                                _ => '}',
                            };
                            self.pos += 1; // `!`
                            let close = close_index(self.code, self.pos, open, close_ch)?;
                            self.pos += 1;
                            let mut args = Vec::new();
                            while self.pos < close {
                                if !self.spend_fuel() {
                                    break;
                                }
                                let arg_end =
                                    top_level_comma(self.code, self.pos, close).unwrap_or(close);
                                if arg_end > self.pos {
                                    args.push(self.parse_expr_recovering(arg_end));
                                }
                                self.pos = self.pos.max(arg_end.min(close));
                                if self.pos < close {
                                    self.pos += 1;
                                }
                            }
                            self.pos = close + 1;
                            return Some(Expr::Macro {
                                name: segs.pop().unwrap_or_default(),
                                args,
                                line,
                                col,
                            });
                        }
                    }
                }
                // Struct literal: `Path {` where the last segment is a
                // type-looking name.
                if structs_ok
                    && self.at_punct('{')
                    && segs
                        .last()
                        .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
                {
                    let close = close_index(self.code, self.pos, '{', '}')?;
                    self.pos += 1;
                    let mut fields = Vec::new();
                    while self.pos < close {
                        if !self.spend_fuel() {
                            break;
                        }
                        let field_end =
                            top_level_comma(self.code, self.pos, close).unwrap_or(close);
                        // `..base` spread.
                        if self.at_punct('.') && self.peek_at(1).is_some_and(|t| t.is_punct('.')) {
                            self.pos += 2;
                            let spread = self.parse_expr_recovering(field_end);
                            fields.push(("..".to_string(), spread));
                        } else if let Some(name_tok) =
                            self.peek().filter(|t| t.kind == TokenKind::Ident)
                        {
                            let fname = name_tok.text.clone();
                            let (fline, fcol) = (name_tok.line, name_tok.col);
                            self.pos += 1;
                            if self.at_punct(':')
                                && !self.peek_at(1).is_some_and(|t| t.is_punct(':'))
                            {
                                self.pos += 1;
                                let value = self.parse_expr_recovering(field_end);
                                fields.push((fname, value));
                            } else {
                                // Shorthand `Foo { x }`.
                                fields.push((
                                    fname.clone(),
                                    Expr::Path {
                                        segs: vec![fname],
                                        line: fline,
                                        col: fcol,
                                    },
                                ));
                            }
                        }
                        self.pos = self.pos.max(field_end.min(close));
                        if self.pos < close {
                            self.pos += 1;
                        }
                    }
                    self.pos = close + 1;
                    return Some(Expr::Struct {
                        ty: segs.pop().unwrap_or_default(),
                        fields,
                        line,
                        col,
                    });
                }
                Some(Expr::Path { segs, line, col })
            }
            _ => None,
        }
    }
}

/// Length in tokens of a binary operator at `pos` (0 when not one).
/// Collapse a one-element operand list to its element, else group it.
fn group_or_single(mut parts: Vec<Expr>) -> Expr {
    match parts.pop() {
        Some(only) if parts.is_empty() => only,
        Some(last) => {
            parts.push(last);
            Expr::Group { parts }
        }
        None => Expr::Group { parts },
    }
}

fn binary_op_len(code: &[Token], pos: usize) -> usize {
    let Some(tok) = code.get(pos) else { return 0 };
    let Some(c) = tok.punct() else {
        // `in` inside for-heads is handled by the caller; no ident ops.
        return 0;
    };
    let next = code.get(pos + 1).and_then(Token::punct);
    match c {
        '+' | '*' | '/' | '%' | '^' => 1,
        '-' => 1,
        '&' => {
            if next == Some('&') {
                2
            } else {
                1
            }
        }
        '|' => {
            if next == Some('|') {
                2
            } else {
                1
            }
        }
        '=' | '!' if next == Some('=') => 2,
        '<' | '>' => {
            if next == Some('=') {
                2
            } else {
                1
            }
        }
        '.' if next == Some('.') => {
            if code.get(pos + 2).is_some_and(|t| t.is_punct('=')) {
                3
            } else {
                2
            }
        }
        _ => 0,
    }
}

/// Bracket depth of `end` relative to `start` (over `(`/`[`/`{`).
fn depth_at(code: &[Token], start: usize, end: usize) -> i32 {
    let mut depth = 0i32;
    for tok in &code[start..end] {
        match tok.punct() {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            _ => {}
        }
    }
    depth
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn close_index(code: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    if !code.get(open_idx)?.is_punct(open) {
        return None;
    }
    let mut depth = 0i32;
    for (k, tok) in code.iter().enumerate().skip(open_idx) {
        if tok.is_punct(open) {
            depth += 1;
        } else if tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Index of the `>` closing the `<` at `open_idx` (angle depth only,
/// skipping parens/brackets).
fn angle_close_index(code: &[Token], open_idx: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open_idx;
    while k < code.len() {
        match code[k].punct() {
            Some('<') => depth += 1,
            Some('>') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            Some('(') => k = close_index(code, k, '(', ')')?,
            Some('[') => k = close_index(code, k, '[', ']')?,
            Some(';') | Some('{') | Some('}') => return None,
            _ => {}
        }
        k += 1;
    }
    None
}

/// First top-level `,` in `code[from..to]`.
fn top_level_comma(code: &[Token], from: usize, to: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut angle = 0i32;
    for (k, tok) in code.iter().enumerate().take(to.min(code.len())).skip(from) {
        match tok.punct() {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => depth -= 1,
            Some('<') => angle += 1,
            Some('>') => angle = (angle - 1).max(0),
            Some(',') if depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// First top-level `,` where `<…>` nesting also counts (for generic
/// argument lists).
fn top_level_comma_angles(code: &[Token], from: usize, to: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, tok) in code.iter().enumerate().take(to.min(code.len())).skip(from) {
        match tok.punct() {
            Some('(') | Some('[') | Some('{') | Some('<') => depth += 1,
            Some(')') | Some(']') | Some('}') | Some('>') => depth -= 1,
            Some(',') if depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// The identifiers a pattern binds: `Some((a, b))` → `[a, b]`,
/// `Foo { x, y: z }` → `[x, z]`, `mut state` → `[state]`.
///
/// Heuristic: an identifier binds unless it is a path/constructor head
/// (followed by `::`, `(` or `{`), a struct-pattern field name
/// (followed by `:`), a keyword, `_`, or starts with an uppercase
/// letter (enum variants like `None`).
pub fn pattern_bindings(pat: &[Token]) -> Vec<String> {
    const SKIP: [&str; 6] = ["mut", "ref", "box", "_", "if", "in"];
    let mut out = Vec::new();
    for (k, tok) in pat.iter().enumerate() {
        if tok.kind != TokenKind::Ident {
            continue;
        }
        let text = tok.text.as_str();
        if SKIP.contains(&text) {
            continue;
        }
        if text.chars().next().is_some_and(char::is_uppercase) {
            continue;
        }
        let next = pat.get(k + 1);
        if next.is_some_and(|t| t.is_punct('(') || t.is_punct('{')) {
            continue;
        }
        if next.is_some_and(|t| t.is_punct(':')) {
            // `field: binding` — the field name does not bind; `::` is a
            // path.
            continue;
        }
        // `a @ pattern` — `a` binds; fine as-is.
        if !out.contains(&tok.text) {
            out.push(tok.text.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        let toks: Vec<Token> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        parse_file(&toks)
    }

    fn first_fn(file: &ParsedFile) -> &FnDef {
        for item in &file.items {
            match item {
                Item::Fn(f) => return f,
                Item::Impl { fns, .. } if !fns.is_empty() => return &fns[0],
                _ => {}
            }
        }
        panic!("no fn parsed");
    }

    #[test]
    fn fn_signature_params_and_ret() {
        let file = parse("fn f(doc: &CollectedDoc, n: usize) -> Vec<String> { Vec::new() }");
        let f = first_fn(&file);
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].0, "doc");
        assert_eq!(f.params[0].1.as_ref().unwrap().name, "CollectedDoc");
        assert_eq!(f.ret.as_ref().unwrap().name, "Vec");
        assert_eq!(f.ret.as_ref().unwrap().args[0].name, "String");
        assert_eq!(file.degraded, 0);
    }

    #[test]
    fn impl_methods_and_self() {
        let file = parse("impl Tenant { pub fn spec(&self) -> &TenantSpec { &self.spec } }");
        let Item::Impl { ty, fns } = &file.items[0] else {
            panic!("impl expected: {:?}", file.items);
        };
        assert_eq!(ty, "Tenant");
        assert_eq!(fns[0].name, "spec");
        assert_eq!(fns[0].params[0].0, "self");
    }

    #[test]
    fn annotated_let_still_binds_the_name() {
        // Regression: the `: Vec<String>` annotation must not swallow the
        // binding (the pattern slice used to extend past the colon, making
        // `rows` look like a struct-field name).
        let file = parse("fn f() { let rows: Vec<String> = make(); rows }");
        let f = first_fn(&file);
        let Stmt::Let {
            bound, ty, init, ..
        } = &f.body.as_ref().unwrap().stmts[0]
        else {
            panic!("let expected");
        };
        assert_eq!(bound, &["rows".to_string()]);
        assert_eq!(ty.as_ref().unwrap().name, "Vec");
        assert!(init.is_some());
    }

    #[test]
    fn struct_fields_with_types() {
        let file = parse(
            "pub struct Backlog { queue: Mutex<VecDeque<TcpStream>>, ready: Condvar, stop: AtomicBool }",
        );
        let Item::Struct { name, fields } = &file.items[0] else {
            panic!("struct expected");
        };
        assert_eq!(name, "Backlog");
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].0, "queue");
        assert_eq!(fields[0].1.name, "Mutex");
        assert_eq!(fields[0].1.peeled().name, "VecDeque");
    }

    #[test]
    fn let_call_field_method_chain() {
        let file = parse("fn f(d: &Doc) { let b = d.body.clone(); emit(b); }");
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Let { bound, init, .. } = &body.stmts[0] else {
            panic!("let expected: {:?}", body.stmts[0]);
        };
        assert_eq!(bound, &vec!["b".to_string()]);
        let Some(Expr::MethodCall { recv, method, .. }) = init.as_ref() else {
            panic!("method call expected: {init:?}");
        };
        assert_eq!(method, "clone");
        let Expr::Field { base, name, .. } = recv.as_ref() else {
            panic!("field expected");
        };
        assert_eq!(name, "body");
        assert!(matches!(base.as_ref(), Expr::Path { segs, .. } if segs == &["d"]));
        let Stmt::Semi(Expr::Call { callee, args, .. }) = &body.stmts[1] else {
            panic!("call expected: {:?}", body.stmts[1]);
        };
        assert!(matches!(callee.as_ref(), Expr::Path { segs, .. } if segs == &["emit"]));
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn macro_args_parse() {
        let file = parse("fn f(x: u32) { eprintln!(\"x = {}\", x); }");
        let f = first_fn(&file);
        let Stmt::Semi(Expr::Macro { name, args, .. }) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("macro expected");
        };
        assert_eq!(name, "eprintln");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn closures_and_iterators() {
        let file = parse(
            "fn f(v: Vec<Doc>) { let b: Vec<_> = v.iter().map(|d| d.body.clone()).collect(); }",
        );
        let f = first_fn(&file);
        let Stmt::Let { init, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("let expected");
        };
        // collect( map( iter(v), closure ) )
        let Some(Expr::MethodCall { method, recv, .. }) = init.as_ref() else {
            panic!("collect expected");
        };
        assert_eq!(method, "collect");
        let Expr::MethodCall { method, args, .. } = recv.as_ref() else {
            panic!("map expected");
        };
        assert_eq!(method, "map");
        let Expr::Closure { params, .. } = &args[0] else {
            panic!("closure expected: {:?}", args[0]);
        };
        assert_eq!(params, &vec!["d".to_string()]);
    }

    #[test]
    fn if_let_match_for_bind_names() {
        let src = r#"
fn f(opt: Option<String>, map: M) {
    if let Some(x) = opt { use_it(x); }
    match fetch() {
        Ok(v) => sink(v),
        Err(e) if e.fatal() => {},
        _ => {}
    }
    for (k, v) in map.iter() { sink(v); }
}
"#;
        let file = parse(src);
        let f = first_fn(&file);
        let body = f.body.as_ref().unwrap();
        let Stmt::Semi(Expr::If { bound, .. }) = &body.stmts[0] else {
            panic!("if let expected: {:?}", body.stmts[0]);
        };
        assert_eq!(bound, &vec!["x".to_string()]);
        let Stmt::Semi(Expr::Match { arms, .. }) = &body.stmts[1] else {
            panic!("match expected");
        };
        assert_eq!(arms.len(), 3);
        assert_eq!(arms[0].bound, vec!["v".to_string()]);
        assert_eq!(arms[1].bound, vec!["e".to_string()]);
        assert!(arms[1].guard.is_some());
        let (Stmt::Semi(Expr::For { bound, .. }) | Stmt::Expr(Expr::For { bound, .. })) =
            &body.stmts[2]
        else {
            panic!("for expected: {:?}", body.stmts[2]);
        };
        assert_eq!(bound, &vec!["k".to_string(), "v".to_string()]);
    }

    #[test]
    fn struct_literals_and_shorthand() {
        let file =
            parse("fn f(doc: D) -> Trace { Trace { trace_id, doc_id: doc.id, hops: vec![hop] } }");
        let f = first_fn(&file);
        let Stmt::Expr(Expr::Struct { ty, fields, .. }) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!(
                "struct literal expected: {:?}",
                f.body.as_ref().unwrap().stmts[0]
            );
        };
        assert_eq!(ty, "Trace");
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].0, "trace_id");
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let file = parse("#[cfg(test)]\nmod tests { fn helper() {} }");
        let Item::Mod {
            cfg_test, items, ..
        } = &file.items[0]
        else {
            panic!("mod expected: {:?}", file.items);
        };
        assert!(cfg_test);
        assert!(matches!(items[0], Item::Fn(_)));
    }

    #[test]
    fn degraded_constructs_are_counted_not_fatal() {
        // A macro-heavy item the parser does not model: it must keep
        // going and parse the following fn.
        let src = "macro_rules! m { ($x:expr) => { $x }; }\nfn ok() { let a = 1; }";
        let file = parse(src);
        assert!(file
            .items
            .iter()
            .any(|i| matches!(i, Item::Fn(f) if f.name == "ok")));
    }

    #[test]
    fn pattern_binding_extraction() {
        let toks: Vec<Token> = lex("Foo { x, y: z, .. }")
            .into_iter()
            .filter(|t| !t.is_comment())
            .collect();
        assert_eq!(
            pattern_bindings(&toks),
            vec!["x".to_string(), "z".to_string()]
        );
        let toks: Vec<Token> = lex("Some((mut a, b))")
            .into_iter()
            .filter(|t| !t.is_comment())
            .collect();
        assert_eq!(
            pattern_bindings(&toks),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "fn f( { }",
            "impl { fn }",
            "fn f() { let = ; }",
            "fn f() { x. }",
            "struct S { x: }",
            "fn f() { match x { } }",
            "fn f() { |a, b }",
            "fn f() { a < b > c << d }",
            "}} fn g() {}",
            "fn f() { for in x {} }",
        ] {
            let _ = parse(src);
        }
    }

    #[test]
    fn turbofish_collect_records_types() {
        let file = parse("fn f(m: M) { let v = m.iter().collect::<BTreeMap<u64, String>>(); }");
        let f = first_fn(&file);
        let Stmt::Let { init, .. } = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("let");
        };
        let Some(Expr::MethodCall {
            method, turbofish, ..
        }) = init.as_ref()
        else {
            panic!("collect expected");
        };
        assert_eq!(method, "collect");
        assert_eq!(turbofish[0].name, "BTreeMap");
    }
}
