//! `pii-taint`: interprocedural taint analysis from PII sources to
//! log/wire sinks, with `dox_obs::redact()` as the sole sanitizer.
//!
//! This replaces the old `pii-sink` identifier-fragment heuristic: a
//! value is dangerous because of where it *came from* (a document body,
//! an extracted handle, synthetic ground truth), not because of what a
//! variable happens to be named — renaming `body` to `payload` no
//! longer hides a leak.
//!
//! The analysis abstracts every value to a taint mask: one bit per
//! function parameter plus a `SOURCE` bit for values derived from a
//! configured PII source field. Per-function summaries (`returns` mask,
//! parameters-that-reach-a-sink set) are iterated to a fixpoint over
//! the workspace call graph, so a leak that crosses three functions in
//! two crates is still reported — at the exact sink (or call) site.
//!
//! * **Sources** — typed struct-field reads (`SynthDoc.body`,
//!   `OsnRef.handle`, `ExtractedFields.ssns`, …) when the receiver type
//!   resolves; a bare field-name fallback (`.body`, `.handle`, …) when
//!   it does not. Config: `[pii-taint] source_fields` (entries with a
//!   dot are typed, without are bare).
//! * **Sinks** — the print/log macros (`println!`, `eprintln!`, …),
//!   `write!`/`writeln!` to a non-buffer writer, the `.emit(…)` event
//!   method, `Tracer::hop` notes, and the HTTP response constructors
//!   (`Response::ok/json/error`). Config: `sink_fns`, `sink_methods`.
//! * **Sanitizer** — a `redact(…)` call erases taint (its display form
//!   is a length+fingerprint, never content). Nothing else does.
//!
//! Functions whose bodies failed to parse are skipped (never guessed
//! at); crates in `allow_crates` (the synthetic-PII generator) are
//! exempt.

use crate::callgraph::{FnId, Workspace};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::{Block, Expr, Stmt, Ty};
use crate::rules::{inline_format_args, Suppressions};
use crate::symbols::TypeEnv;
use std::collections::{BTreeMap, BTreeSet};

/// The rule name.
pub const RULE: &str = "pii-taint";

/// Taint-mask bit for "derived from a PII source".
const SOURCE: u64 = 1 << 63;

/// Print-style macros that are always sinks.
const SINK_MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

/// Macros that only combine values (taint flows through).
const FORMAT_MACROS: [&str; 3] = ["format", "format_args", "vec"];

/// Methods that resolve nowhere but clearly propagate their receiver.
/// (Unknown methods propagate too; this list exists only for clarity.)
const _PROPAGATE_METHODS: [&str; 4] = ["clone", "to_string", "as_str", "trim"];

/// Resolved source/sink configuration.
struct Spec {
    /// Struct name → source field names.
    typed: BTreeMap<String, BTreeSet<String>>,
    /// Field names treated as sources when the receiver type is unknown.
    bare: BTreeSet<String>,
    /// Free/associated functions whose return value is a source.
    source_fns: BTreeSet<String>,
    /// `Type::fn` call sinks.
    sink_fns: BTreeSet<(String, String)>,
    /// Method-call sinks (any receiver).
    sink_methods: BTreeSet<String>,
    /// Crates exempt from the rule.
    allow_crates: Vec<String>,
}

impl Spec {
    fn from_config(cfg: &Config) -> Self {
        let mut typed: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut bare = BTreeSet::new();
        for entry in &cfg.taint_source_fields {
            match entry.split_once('.') {
                Some((ty, field)) if !ty.is_empty() => {
                    typed
                        .entry(ty.to_string())
                        .or_default()
                        .insert(field.to_string());
                }
                Some((_, field)) => {
                    bare.insert(field.to_string());
                }
                None => {
                    bare.insert(entry.clone());
                }
            }
        }
        let sink_fns = cfg
            .taint_sink_fns
            .iter()
            .filter_map(|s| {
                s.split_once("::")
                    .map(|(t, f)| (t.to_string(), f.to_string()))
            })
            .collect();
        Spec {
            typed,
            bare,
            source_fns: cfg.taint_source_fns.iter().cloned().collect(),
            sink_fns,
            sink_methods: cfg.taint_sink_methods.iter().cloned().collect(),
            allow_crates: cfg.taint_allow_crates.clone(),
        }
    }

    fn is_source_field(&self, recv_ty: Option<&Ty>, field: &str) -> bool {
        match recv_ty {
            Some(ty) => self
                .typed
                .get(&ty.peeled().name)
                .is_some_and(|fields| fields.contains(field)),
            None => self.bare.contains(field),
        }
    }
}

/// Per-function dataflow summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Summary {
    /// Taint mask of the return value: `SOURCE` and/or parameter bits.
    returns: u64,
    /// Bit i set: an argument passed as parameter i reaches a sink
    /// inside this function (or a callee).
    param_sink: u64,
}

/// Run the rule over the whole workspace.
pub fn check(ws: &Workspace, cfg: &Config, sup: &Suppressions<'_>, out: &mut Vec<Diagnostic>) {
    let spec = Spec::from_config(cfg);
    let mut summaries = vec![Summary::default(); ws.fns.len()];
    // Fixpoint: masks only grow, so this converges; 20 rounds bounds
    // pathological call chains.
    for _ in 0..20 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            let id = FnId(id);
            if exempt(ws, &spec, id) {
                continue;
            }
            let mut cx = FnCx::new(ws, &spec, &summaries, id, None);
            let summary = cx.run();
            if summary != summaries[id.0] {
                summaries[id.0] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Final pass: emit findings now that callee summaries are stable.
    for id in 0..ws.fns.len() {
        let id = FnId(id);
        if exempt(ws, &spec, id) {
            continue;
        }
        let mut findings = Vec::new();
        let mut cx = FnCx::new(ws, &spec, &summaries, id, Some(&mut findings));
        cx.run();
        let rel = &ws.file_of(id).rel;
        for (line, col, message) in findings {
            if !sup.allowed(rel, line, RULE) {
                out.push(Diagnostic::new(rel, line, col, RULE, message));
            }
        }
    }
}

fn exempt(ws: &Workspace, spec: &Spec, id: FnId) -> bool {
    let file = ws.file_of(id);
    match &file.crate_name {
        Some(name) => spec.allow_crates.contains(name),
        None => false,
    }
}

/// The per-function analysis context.
struct FnCx<'a, 'f> {
    ws: &'a Workspace,
    spec: &'a Spec,
    summaries: &'a [Summary],
    id: FnId,
    env: TypeEnv<'a>,
    taint: BTreeMap<String, u64>,
    summary: Summary,
    /// `Some` in the reporting pass: `(line, col, message)` per finding.
    findings: Option<&'f mut Vec<(u32, u32, String)>>,
}

impl<'a, 'f> FnCx<'a, 'f> {
    fn new(
        ws: &'a Workspace,
        spec: &'a Spec,
        summaries: &'a [Summary],
        id: FnId,
        findings: Option<&'f mut Vec<(u32, u32, String)>>,
    ) -> Self {
        let mut taint = BTreeMap::new();
        let def = &ws.entry(id).info.def;
        for (i, (name, _)) in def.params.iter().enumerate().take(62) {
            taint.insert(name.clone(), 1u64 << i);
        }
        Self {
            ws,
            spec,
            summaries,
            id,
            env: ws.env_for(id),
            taint,
            summary: Summary::default(),
            findings,
        }
    }

    fn run(&mut self) -> Summary {
        let info = &self.ws.entry(self.id).info;
        if info.def.degraded {
            return Summary::default();
        }
        let Some(body) = &info.def.body else {
            return Summary::default();
        };
        let tail = self.walk_block(body);
        self.summary.returns |= tail;
        self.summary
    }

    fn report(&mut self, line: u32, col: u32, message: String) {
        if let Some(findings) = self.findings.as_deref_mut() {
            if !findings.iter().any(|(l, c, _)| *l == line && *c == col) {
                findings.push((line, col, message));
            }
        }
    }

    /// Walk a block; returns the taint of its tail expression.
    fn walk_block(&mut self, block: &Block) -> u64 {
        let mut tail = 0;
        for stmt in &block.stmts {
            tail = 0;
            match stmt {
                Stmt::Let {
                    bound, ty, init, ..
                } => {
                    let mask = init.as_ref().map_or(0, |e| self.eval(e));
                    let inferred = ty
                        .clone()
                        .or_else(|| init.as_ref().and_then(|e| self.env.type_of(e)));
                    for name in bound {
                        self.taint.insert(name.clone(), mask);
                        if let Some(t) = &inferred {
                            self.env.bind(name, t.clone());
                        }
                    }
                }
                Stmt::Semi(e) => {
                    self.eval(e);
                }
                Stmt::Expr(e) => {
                    tail = self.eval(e);
                }
                Stmt::Item(_) => {}
            }
        }
        tail
    }

    /// Evaluate an expression to its taint mask, reporting sink hits.
    fn eval(&mut self, expr: &Expr) -> u64 {
        match expr {
            Expr::Lit { .. } | Expr::Opaque { .. } => 0,
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.taint.get(&segs[0]).copied().unwrap_or(0)
                } else {
                    0
                }
            }
            Expr::Field { base, name, .. } => {
                // Typed matching only counts when the struct is actually in
                // the workspace model; a resolvable-but-unknown type (e.g. a
                // std type) still gets the conservative bare-name fallback.
                let base_ty = self
                    .env
                    .type_of(base)
                    .filter(|t| self.ws.table.contains_key(&t.peeled().name));
                let mut mask = self.eval(base);
                if self.spec.is_source_field(base_ty.as_ref(), name) {
                    mask |= SOURCE;
                }
                mask
            }
            Expr::Unary { inner } => self.eval(inner),
            Expr::Index { base, index } => self.eval(base) | self.eval(index),
            Expr::Group { parts } => parts.iter().map(|p| self.eval(p)).fold(0, |a, b| a | b),
            Expr::Struct { fields, .. } => fields
                .iter()
                .map(|(_, v)| self.eval(v))
                .fold(0, |a, b| a | b),
            Expr::Block(b) => self.walk_block(b),
            Expr::Return { value } => {
                let mask = value.as_ref().map_or(0, |v| self.eval(v));
                self.summary.returns |= mask;
                0
            }
            Expr::Assign { target, value, .. } => {
                let mask = self.eval(value);
                if let Expr::Path { segs, .. } = target.as_ref() {
                    if segs.len() == 1 {
                        self.taint.insert(segs[0].clone(), mask);
                        if let Some(ty) = self.env.type_of(value) {
                            self.env.bind(&segs[0], ty);
                        }
                        return 0;
                    }
                }
                self.eval(target);
                0
            }
            Expr::If {
                bound,
                cond,
                then,
                els,
            } => {
                let cond_mask = self.eval(cond);
                for name in bound {
                    self.taint.insert(name.clone(), cond_mask);
                }
                let mut mask = self.walk_block(then);
                if let Some(e) = els {
                    mask |= self.eval(e);
                }
                mask
            }
            Expr::Match { scrutinee, arms } => {
                let scrut_mask = self.eval(scrutinee);
                let scrut_ty = self.env.type_of(scrutinee);
                let mut mask = 0;
                for arm in arms {
                    for name in &arm.bound {
                        self.taint.insert(name.clone(), scrut_mask);
                        if let Some(ty) = &scrut_ty {
                            // Payload of a matched value: approximate
                            // with the scrutinee's (peeled) type args.
                            if let Some(inner) = ty.args.first() {
                                self.env.bind(name, inner.clone());
                            }
                        }
                    }
                    if let Some(g) = &arm.guard {
                        self.eval(g);
                    }
                    mask |= self.eval(&arm.body);
                }
                mask
            }
            Expr::For {
                bound, iter, body, ..
            } => {
                let iter_mask = self.eval(iter);
                let iter_ty = self.env.type_of(iter);
                // `for (i, x) in xs.iter().enumerate()` — the index is a
                // counter, never content: only the payload binding gets
                // the collection's taint.
                let enumerated = matches!(
                    iter.as_ref(),
                    Expr::MethodCall { method, .. } if method == "enumerate"
                ) && bound.len() == 2;
                if enumerated {
                    self.taint.insert(bound[0].clone(), 0);
                    self.taint.insert(bound[1].clone(), iter_mask);
                } else {
                    self.bind_elements(bound, iter_mask, iter_ty.as_ref());
                }
                self.walk_block(body);
                0
            }
            Expr::While { bound, cond, body } => {
                let cond_mask = self.eval(cond);
                for name in bound {
                    self.taint.insert(name.clone(), cond_mask);
                }
                self.walk_block(body);
                0
            }
            Expr::Closure { params, body, .. } => {
                // Bare closure (not an iterator-adapter argument — those
                // are handled at the MethodCall): parameters are
                // untainted, captures keep their masks.
                for name in params {
                    self.taint.insert(name.clone(), 0);
                }
                self.eval(body)
            }
            Expr::Macro {
                name, args, line, ..
            } => self.eval_macro(name, args, *line),
            Expr::Call {
                callee,
                args,
                line,
                col,
            } => self.eval_call(callee, args, *line, *col),
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
                col,
                ..
            } => self.eval_method(recv, method, args, *line, *col),
        }
    }

    /// Bind loop/closure element variables: the collection's taint, and
    /// element types from the collection's generic args when they line
    /// up (`for (k, v) in map` with `Map<K, V>`).
    fn bind_elements(&mut self, bound: &[String], mask: u64, coll_ty: Option<&Ty>) {
        for name in bound {
            self.taint.insert(name.clone(), mask);
        }
        if let Some(ty) = coll_ty {
            let ty = ty.peeled();
            if bound.len() == 1 && ty.args.len() == 1 {
                self.env.bind(&bound[0], ty.args[0].clone());
            } else if bound.len() == 2 && ty.args.len() == 2 {
                self.env.bind(&bound[0], ty.args[0].clone());
                self.env.bind(&bound[1], ty.args[1].clone());
            }
        }
    }

    fn eval_macro(&mut self, name: &str, args: &[Expr], line: u32) -> u64 {
        // Taint of the inline captures in the format-string argument at
        // `fmt_idx` plus every argument from `fmt_idx` on.
        let arg_masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
        let capture_taint = |cx: &Self, fmt_idx: usize| -> Vec<(String, u64)> {
            let mut out = Vec::new();
            if let Some(Expr::Lit {
                kind: TokenKind::Str,
                text,
                ..
            }) = args.get(fmt_idx)
            {
                for cap in inline_format_args(text) {
                    let mask = cx.taint.get(&cap).copied().unwrap_or(0);
                    out.push((cap, mask));
                }
            }
            out
        };
        if SINK_MACROS.contains(&name) {
            let mut masks: Vec<(Option<String>, u64)> =
                arg_masks.iter().map(|m| (None, *m)).collect();
            masks.extend(
                capture_taint(self, 0)
                    .into_iter()
                    .map(|(cap, m)| (Some(cap), m)),
            );
            self.sink_hit(&masks, &format!("`{name}!`"), line);
            return 0;
        }
        if name == "write" || name == "writeln" {
            // Writing into an in-memory buffer is composition, not a
            // sink: the taint transfers to the buffer variable.
            let buffer_var = args.first().and_then(|w| match w {
                Expr::Path { segs, .. } if segs.len() == 1 => {
                    let ty = self.env.lookup(&segs[0]);
                    let name = ty.map(|t| t.name.as_str());
                    matches!(name, Some("String" | "Vec")).then(|| segs[0].clone())
                }
                _ => None,
            });
            let payload: u64 = arg_masks.iter().skip(1).fold(0, |a, b| a | b)
                | capture_taint(self, 1).iter().fold(0, |a, (_, m)| a | m);
            match buffer_var {
                Some(var) => {
                    let entry = self.taint.entry(var).or_insert(0);
                    *entry |= payload;
                }
                None => {
                    let mut masks: Vec<(Option<String>, u64)> =
                        arg_masks.iter().skip(1).map(|m| (None, *m)).collect();
                    masks.extend(
                        capture_taint(self, 1)
                            .into_iter()
                            .map(|(cap, m)| (Some(cap), m)),
                    );
                    self.sink_hit(&masks, &format!("`{name}!` to a writer"), line);
                }
            }
            return 0;
        }
        if FORMAT_MACROS.contains(&name) {
            let captures = capture_taint(self, 0);
            return arg_masks.iter().fold(0, |a, b| a | b)
                | captures.iter().fold(0, |a, (_, m)| a | m);
        }
        // Unknown macro: combine (assert!/debug_assert! messages stay on
        // the conservative side).
        arg_masks.iter().fold(0, |a, b| a | b)
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32, col: u32) -> u64 {
        // The sanitizer: `redact(x)` output carries no content.
        if let Expr::Path { segs, .. } = callee {
            if segs.last().is_some_and(|s| s == "redact") {
                for a in args {
                    self.eval(a);
                }
                return 0;
            }
            // Configured sink fns (`Response::ok(...)`).
            if segs.len() >= 2 {
                let key = (segs[segs.len() - 2].clone(), segs[segs.len() - 1].clone());
                if self.spec.sink_fns.contains(&key) {
                    let masks: Vec<(Option<String>, u64)> =
                        args.iter().map(|a| (None, self.eval(a))).collect();
                    self.sink_hit(&masks, &format!("`{}::{}`", key.0, key.1), line);
                    return 0;
                }
            }
            // Configured source fns.
            if segs
                .last()
                .is_some_and(|s| self.spec.source_fns.contains(s))
            {
                for a in args {
                    self.eval(a);
                }
                return SOURCE;
            }
        }
        let arg_masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
        let candidates = self.ws.resolve_call(callee);
        self.apply_callees(&candidates, &arg_masks, callee_label(callee), line, col)
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        method: &str,
        args: &[Expr],
        line: u32,
        col: u32,
    ) -> u64 {
        let recv_mask = self.eval(recv);
        let recv_ty = self.env.type_of(recv);
        // Closure arguments to iterator adapters see the collection's
        // elements: bind their parameters to the receiver's taint/types.
        let mut arg_masks = Vec::with_capacity(args.len() + 1);
        arg_masks.push(recv_mask);
        for arg in args {
            if let Expr::Closure { params, body, .. } = arg {
                let elem_ty = recv_ty.as_ref().map(|t| t.peeled().clone());
                self.bind_elements(
                    params,
                    recv_mask,
                    elem_ty.as_ref().filter(|t| !t.args.is_empty()),
                );
                // A closure param named like the element still gets the
                // receiver's taint even without type info.
                arg_masks.push(self.eval(body));
            } else {
                arg_masks.push(self.eval(arg));
            }
        }
        // Scalar aggregates carry no content: a length or element count
        // of a tainted collection is safe to log.
        if matches!(method, "len" | "is_empty" | "count") && args.is_empty() {
            return 0;
        }
        // Configured method sinks (`.emit(…)`, `.hop(…)`).
        if self.spec.sink_methods.contains(method) {
            let masks: Vec<(Option<String>, u64)> =
                arg_masks.iter().skip(1).map(|m| (None, *m)).collect();
            self.sink_hit(&masks, &format!("`.{method}(…)`"), line);
            return 0;
        }
        let candidates = self.ws.resolve_method(recv_ty.as_ref(), method);
        if candidates.is_empty() {
            // Unresolved (std or generic) method: taint flows from the
            // receiver and every argument into the result.
            return arg_masks.iter().fold(0, |a, b| a | b);
        }
        self.apply_callees(&candidates, &arg_masks, method, line, col)
    }

    /// Fold callee summaries into the caller: compute the return mask,
    /// propagate param-sink obligations, and report arguments whose
    /// source taint reaches a sink inside the callee.
    fn apply_callees(
        &mut self,
        candidates: &[FnId],
        arg_masks: &[u64],
        label: &str,
        line: u32,
        col: u32,
    ) -> u64 {
        if candidates.is_empty() {
            return arg_masks.iter().fold(0, |a, b| a | b);
        }
        let mut ret = 0;
        for id in candidates {
            let s = self.summaries[id.0];
            if s.returns & SOURCE != 0 {
                ret |= SOURCE;
            }
            for (i, mask) in arg_masks.iter().enumerate().take(62) {
                if s.returns & (1 << i) != 0 {
                    ret |= mask;
                }
                if s.param_sink & (1 << i) != 0 {
                    if *mask & SOURCE != 0 {
                        let callee = &self.ws.entry(*id).info.def.name;
                        self.report(
                            line,
                            col,
                            format!(
                                "PII-tainted argument {i} of `{label}` reaches a log/wire \
                                 sink inside `{callee}` — redact() before the call or \
                                 inside the callee"
                            ),
                        );
                    }
                    self.summary.param_sink |= *mask & !SOURCE;
                }
            }
        }
        ret
    }

    /// A sink consumed `masks` (optionally named inline captures):
    /// report source taint, record parameter obligations.
    fn sink_hit(&mut self, masks: &[(Option<String>, u64)], sink: &str, line: u32) {
        for (cap, mask) in masks {
            if mask & SOURCE != 0 {
                let what = match cap {
                    Some(c) => format!("inline capture `{{{c}}}`"),
                    None => "argument".to_string(),
                };
                self.report(
                    line,
                    1,
                    format!(
                        "PII-tainted {what} reaches {sink} unredacted — wrap the value \
                         in dox_obs::redact() (the only sanctioned sanitizer)"
                    ),
                );
            }
            self.summary.param_sink |= mask & !SOURCE;
        }
    }
}

fn callee_label(callee: &Expr) -> &str {
    match callee {
        Expr::Path { segs, .. } => segs.last().map_or("?", String::as_str),
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::rules::{FileInput, Prepared};
    use crate::symbols::FileModel;

    fn check_sources(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let inputs: Vec<FileInput> = sources
            .iter()
            .map(|(rel, src)| FileInput {
                rel: rel.to_string(),
                class: crate::walker::classify(rel),
                crate_name: crate::walker::crate_name(rel),
                text: src.to_string(),
            })
            .collect();
        let preps: Vec<Prepared> = inputs.iter().map(Prepared::new).collect();
        let models = preps
            .iter()
            .map(|p| FileModel::build(p.input, &parse_file(&p.code)))
            .collect();
        let ws = Workspace::build(models);
        let sup = Suppressions::new(&preps);
        let mut out = Vec::new();
        check(&ws, &Config::default(), &sup, &mut out);
        out
    }

    const DATA_MODEL: &str = "
pub struct SynthDoc { pub id: u64, pub body: String, pub truth: GroundTruth }
pub struct CollectedDoc { pub doc: SynthDoc, pub collected_at: SimTime }
";

    #[test]
    fn direct_field_to_macro_sink() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/engine/src/x.rs",
                "fn log(doc: &CollectedDoc) { eprintln!(\"{}\", doc.doc.body); }",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert_eq!(diags[0].file, "crates/engine/src/x.rs");
    }

    #[test]
    fn rename_does_not_hide_the_leak() {
        // The old pii-sink heuristic matched the *name* `body`; the taint
        // rule follows the value through an innocently-named local.
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/engine/src/x.rs",
                "fn log(doc: &CollectedDoc) { let payload = doc.doc.body.clone(); \
                 println!(\"{payload}\"); }",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn redact_sanitizes() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/engine/src/x.rs",
                "fn log(doc: &CollectedDoc) { eprintln!(\"{}\", redact(&doc.doc.body)); }",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn interprocedural_leak_through_helper() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/engine/src/x.rs",
                "fn describe(d: &CollectedDoc) -> String { format!(\"{}\", d.doc.body) }\n\
                 fn log(doc: &CollectedDoc) { let s = describe(doc); println!(\"{s}\"); }",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].message.contains("println"), "{diags:?}");
    }

    #[test]
    fn param_sink_reported_at_call_site() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/obs/src/x.rs",
                "fn announce(msg: String) { println!(\"{msg}\"); }",
            ),
            (
                "crates/engine/src/y.rs",
                "fn leak(doc: &CollectedDoc) { announce(doc.doc.body.clone()); }",
            ),
        ]);
        // One finding at the call site in engine (the announce body only
        // sees parameter taint, never SOURCE directly).
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "crates/engine/src/y.rs");
        assert!(diags[0].message.contains("announce"), "{diags:?}");
    }

    #[test]
    fn bare_field_fallback_without_type_info() {
        let diags = check_sources(&[(
            "crates/osn/src/x.rs",
            "fn log(r: &Unknown) { eprintln!(\"{}\", r.handle); }",
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn known_type_beats_bare_fallback() {
        // `.handle` on a known non-PII struct is not a source.
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            "pub struct Worker { pub handle: JoinHandle }\n\
             fn log(w: &Worker) { eprintln!(\"{:?}\", w.handle); }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn emit_method_and_response_ctor_are_sinks() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/serve/src/x.rs",
                "fn handle(events: &EventLog, doc: &CollectedDoc) -> Response {\n\
                 events.emit(Level::Info, \"t\", doc.doc.body.clone(), vec![]);\n\
                 Response::ok(doc.doc.body.clone())\n}",
            ),
        ]);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn synth_crate_is_exempt() {
        let diags = check_sources(&[(
            "crates/synth/src/render.rs",
            "pub struct SynthDoc { pub body: String }\n\
             fn debug(d: &SynthDoc) { eprintln!(\"{}\", d.body); }",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn suppression_comment_is_honored() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/engine/src/x.rs",
                "fn log(doc: &CollectedDoc) {\n\
                 // dox-lint:allow(pii-taint) synthetic demo output\n\
                 eprintln!(\"{}\", doc.doc.body);\n}",
            ),
        ]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn write_to_string_buffer_then_sink_is_tracked() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/core/src/x.rs",
                "fn render(doc: &CollectedDoc) {\n\
                 let mut buf = String::new();\n\
                 write!(buf, \"{}\", doc.doc.body);\n\
                 println!(\"{buf}\");\n}",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].line, 4, "{diags:?}");
    }

    #[test]
    fn match_arm_binding_carries_taint() {
        let diags = check_sources(&[
            ("crates/synth/src/corpus.rs", DATA_MODEL),
            (
                "crates/ml/src/x.rs",
                "fn log(doc: &CollectedDoc) {\n\
                 match Some(doc.doc.body.clone()) {\n\
                 Some(text) => println!(\"{text}\"),\n\
                 None => {}\n}\n}",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }
}
