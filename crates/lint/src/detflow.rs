//! `determinism-flow`: unordered-iteration values must not reach
//! serialization.
//!
//! [`ExperimentReport`]s, engine checkpoints and the serve wire format
//! all promise byte-identical output for identical `(config, seed)`.
//! `HashMap`/`HashSet` iteration order is salted per process, so any
//! value *derived from* iterating one is nondeterministic — and a
//! finding the moment it flows into `serde_json::to_string`/`to_vec`
//! or a `.to_value()` conversion.
//!
//! This retires the old `[determinism] ordered_paths` file list, which
//! banned the *container* on hand-maintained paths. The dataflow rule
//! follows the *value* instead: owning a `HashMap` is fine, iterating
//! it into a `Vec` that gets serialized is not, and the analysis
//! crosses function boundaries via the same summary fixpoint the taint
//! rule uses.
//!
//! Ordering sanitizers cut the flow:
//! * collecting into an ordered container (`collect::<BTreeMap<_, _>>()`
//!   turbofish, or a `let` annotated with a `BTree*` type);
//! * an explicit `sort` / `sort_by` / `sort_unstable*` / `sort_by_key`
//!   on the binding;
//! * order-insensitive reductions (`sum`, `product`, `count`, `len`,
//!   `max`, `min`, `max_by_key`, `min_by_key`, `all`, `any`, `fold`
//!   with commutative use is *not* assumed — `fold` stays unordered).
//!
//! Sources are typed-only: the rule fires on `iter()`/`keys()`/… only
//! when the receiver resolves to a `HashMap`/`HashSet` through the
//! symbol model. An unresolvable receiver is *not* assumed unordered —
//! unlike PII taint, the cost of a miss here is a flaky diff, not a
//! leak, so the rule trades recall for a near-zero false-positive rate.
//!
//! [`ExperimentReport`]: ../dox_core/study/struct.ExperimentReport.html

use crate::callgraph::{FnId, Workspace};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::parser::{Block, Expr, Stmt, Ty};
use crate::rules::Suppressions;
use crate::symbols::TypeEnv;
use std::collections::{BTreeMap, BTreeSet};

/// The rule name.
pub const RULE: &str = "determinism-flow";

/// Mask bit for "derived from unordered iteration".
const UNORDERED: u64 = 1 << 63;

/// Iteration methods that surface a container's (unordered) elements.
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_keys",
];

/// Reductions whose result does not depend on iteration order.
const ORDER_FREE: [&str; 10] = [
    "sum",
    "product",
    "count",
    "len",
    "max",
    "min",
    "max_by_key",
    "min_by_key",
    "all",
    "any",
];

/// In-place sorts that establish a deterministic order.
const SORTS: [&str; 6] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
];

/// Methods that push a value into their receiver (taint transfers to
/// the receiver variable).
const RECV_SINKS: [&str; 5] = ["push", "insert", "extend", "append", "push_str"];

/// Per-function dataflow summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Summary {
    returns: u64,
    param_sink: u64,
}

/// Resolved sink configuration.
struct Spec {
    /// `(penultimate, last)` path-segment pairs (`serde_json::to_string`).
    sink_fns: BTreeSet<(String, String)>,
    /// Bare sink function names (single-segment entries).
    sink_fn_names: BTreeSet<String>,
    /// Method sinks (`.to_value()`).
    sink_methods: BTreeSet<String>,
}

impl Spec {
    fn from_config(cfg: &Config) -> Self {
        let mut sink_fns = BTreeSet::new();
        let mut sink_fn_names = BTreeSet::new();
        for entry in &cfg.detflow_sink_fns {
            match entry.rsplit_once("::") {
                Some((module, name)) => {
                    let module = module.rsplit("::").next().unwrap_or(module);
                    sink_fns.insert((module.to_string(), name.to_string()));
                }
                None => {
                    sink_fn_names.insert(entry.clone());
                }
            }
        }
        Spec {
            sink_fns,
            sink_fn_names,
            sink_methods: cfg.detflow_sink_methods.iter().cloned().collect(),
        }
    }
}

/// Whether a type is (a wrapper around) an unordered std container.
fn is_unordered_ty(ty: &Ty) -> bool {
    matches!(ty.peeled().name.as_str(), "HashMap" | "HashSet")
}

/// Whether a type name imposes a deterministic order when collected into.
fn is_ordered_collect(ty: &Ty) -> bool {
    matches!(
        ty.name.as_str(),
        "BTreeMap" | "BTreeSet" | "BinaryHeap" | "BTreeIndex"
    )
}

/// Run the rule over the whole workspace.
pub fn check(ws: &Workspace, cfg: &Config, sup: &Suppressions<'_>, out: &mut Vec<Diagnostic>) {
    let spec = Spec::from_config(cfg);
    let mut summaries = vec![Summary::default(); ws.fns.len()];
    for _ in 0..20 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            let id = FnId(id);
            let mut cx = FlowCx::new(ws, &spec, &summaries, id, None);
            let summary = cx.run();
            if summary != summaries[id.0] {
                summaries[id.0] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for id in 0..ws.fns.len() {
        let id = FnId(id);
        let mut findings = Vec::new();
        let mut cx = FlowCx::new(ws, &spec, &summaries, id, Some(&mut findings));
        cx.run();
        let rel = &ws.file_of(id).rel;
        for (line, col, message) in findings {
            if !sup.allowed(rel, line, RULE) {
                out.push(Diagnostic::new(rel, line, col, RULE, message));
            }
        }
    }
}

/// Per-function analysis context.
struct FlowCx<'a, 'f> {
    ws: &'a Workspace,
    spec: &'a Spec,
    summaries: &'a [Summary],
    id: FnId,
    env: TypeEnv<'a>,
    taint: BTreeMap<String, u64>,
    summary: Summary,
    findings: Option<&'f mut Vec<(u32, u32, String)>>,
}

impl<'a, 'f> FlowCx<'a, 'f> {
    fn new(
        ws: &'a Workspace,
        spec: &'a Spec,
        summaries: &'a [Summary],
        id: FnId,
        findings: Option<&'f mut Vec<(u32, u32, String)>>,
    ) -> Self {
        let mut taint = BTreeMap::new();
        let def = &ws.entry(id).info.def;
        for (i, (name, _)) in def.params.iter().enumerate().take(62) {
            taint.insert(name.clone(), 1u64 << i);
        }
        Self {
            ws,
            spec,
            summaries,
            id,
            env: ws.env_for(id),
            taint,
            summary: Summary::default(),
            findings,
        }
    }

    fn run(&mut self) -> Summary {
        let info = &self.ws.entry(self.id).info;
        if info.def.degraded {
            return Summary::default();
        }
        let Some(body) = &info.def.body else {
            return Summary::default();
        };
        let tail = self.walk_block(body);
        self.summary.returns |= tail;
        self.summary
    }

    fn report(&mut self, line: u32, col: u32, message: String) {
        if let Some(findings) = self.findings.as_deref_mut() {
            if !findings.iter().any(|(l, c, _)| *l == line && *c == col) {
                findings.push((line, col, message));
            }
        }
    }

    fn walk_block(&mut self, block: &Block) -> u64 {
        let mut tail = 0;
        for stmt in &block.stmts {
            tail = 0;
            match stmt {
                Stmt::Let {
                    bound, ty, init, ..
                } => {
                    let mut mask = init.as_ref().map_or(0, |e| self.eval(e));
                    // `let x: BTreeMap<…> = …collect();` — the annotation
                    // is the ordering sanitizer.
                    if ty.as_ref().is_some_and(is_ordered_collect) {
                        mask &= !UNORDERED;
                    }
                    let inferred = ty
                        .clone()
                        .or_else(|| init.as_ref().and_then(|e| self.env.type_of(e)));
                    for name in bound {
                        self.taint.insert(name.clone(), mask);
                        if let Some(t) = &inferred {
                            self.env.bind(name, t.clone());
                        }
                    }
                }
                Stmt::Semi(e) => {
                    self.eval(e);
                }
                Stmt::Expr(e) => {
                    tail = self.eval(e);
                }
                Stmt::Item(_) => {}
            }
        }
        tail
    }

    fn eval(&mut self, expr: &Expr) -> u64 {
        match expr {
            Expr::Lit { .. } | Expr::Opaque { .. } => 0,
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.taint.get(&segs[0]).copied().unwrap_or(0)
                } else {
                    0
                }
            }
            Expr::Field { base, .. } => self.eval(base),
            // Keyed access is order-independent even on a hash container;
            // only propagate masks the operands already carry.
            Expr::Index { base, index } => self.eval(base) | self.eval(index),
            Expr::Unary { inner } => self.eval(inner),
            Expr::Group { parts } => parts.iter().map(|p| self.eval(p)).fold(0, |a, b| a | b),
            Expr::Struct { fields, .. } => fields
                .iter()
                .map(|(_, v)| self.eval(v))
                .fold(0, |a, b| a | b),
            Expr::Block(b) => self.walk_block(b),
            Expr::Return { value } => {
                let mask = value.as_ref().map_or(0, |v| self.eval(v));
                self.summary.returns |= mask;
                0
            }
            Expr::Assign { target, value, .. } => {
                let mask = self.eval(value);
                if let Expr::Path { segs, .. } = target.as_ref() {
                    if segs.len() == 1 {
                        self.taint.insert(segs[0].clone(), mask);
                        if let Some(ty) = self.env.type_of(value) {
                            self.env.bind(&segs[0], ty);
                        }
                        return 0;
                    }
                }
                self.eval(target);
                0
            }
            Expr::If {
                bound,
                cond,
                then,
                els,
            } => {
                let cond_mask = self.eval(cond);
                for name in bound {
                    self.taint.insert(name.clone(), cond_mask);
                }
                let mut mask = self.walk_block(then);
                if let Some(e) = els {
                    mask |= self.eval(e);
                }
                mask
            }
            Expr::Match { scrutinee, arms } => {
                let scrut_mask = self.eval(scrutinee);
                let mut mask = 0;
                for arm in arms {
                    for name in &arm.bound {
                        self.taint.insert(name.clone(), scrut_mask);
                    }
                    if let Some(g) = &arm.guard {
                        self.eval(g);
                    }
                    mask |= self.eval(&arm.body);
                }
                mask
            }
            Expr::For {
                bound, iter, body, ..
            } => {
                let mut iter_mask = self.eval(iter);
                let iter_ty = self.env.type_of(iter);
                // `for k in map` / `for (k, v) in &map`: iterating the
                // container itself is the unordered source.
                if iter_ty.as_ref().is_some_and(is_unordered_ty) {
                    iter_mask |= UNORDERED;
                }
                self.bind_elements(bound, iter_mask, iter_ty.as_ref());
                self.walk_block(body);
                0
            }
            Expr::While { bound, cond, body } => {
                let cond_mask = self.eval(cond);
                for name in bound {
                    self.taint.insert(name.clone(), cond_mask);
                }
                self.walk_block(body);
                0
            }
            Expr::Closure { params, body, .. } => {
                for name in params {
                    self.taint.insert(name.clone(), 0);
                }
                self.eval(body)
            }
            Expr::Macro { name, args, .. } => {
                // `format!`/`vec!`/`write!` compose; none are sinks here
                // (display output is the `pii-taint` rule's concern, wire
                // bytes go through the serde sinks below). Inline format
                // captures (`format!("{k}={v}")`) carry their variables'
                // masks.
                let mut masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
                for arg in args {
                    if let Expr::Lit {
                        kind: crate::lexer::TokenKind::Str,
                        text,
                        ..
                    } = arg
                    {
                        for cap in crate::rules::inline_format_args(text) {
                            masks.push(self.taint.get(&cap).copied().unwrap_or(0));
                        }
                    }
                }
                if (name == "write" || name == "writeln") && args.len() >= 2 {
                    if let Some(Expr::Path { segs, .. }) = args.first() {
                        if segs.len() == 1 {
                            let payload = masks.iter().skip(1).fold(0, |a, b| a | b);
                            *self.taint.entry(segs[0].clone()).or_insert(0) |= payload;
                            return 0;
                        }
                    }
                }
                masks.iter().fold(0, |a, b| a | b)
            }
            Expr::Call {
                callee,
                args,
                line,
                col,
            } => self.eval_call(callee, args, *line, *col),
            Expr::MethodCall {
                recv,
                method,
                turbofish,
                args,
                line,
                col,
            } => self.eval_method(recv, method, turbofish, args, *line, *col),
        }
    }

    fn bind_elements(&mut self, bound: &[String], mask: u64, coll_ty: Option<&Ty>) {
        for name in bound {
            self.taint.insert(name.clone(), mask);
        }
        if let Some(ty) = coll_ty {
            let ty = ty.peeled();
            if bound.len() == 1 && ty.args.len() == 1 {
                self.env.bind(&bound[0], ty.args[0].clone());
            } else if bound.len() == 2 && ty.args.len() == 2 {
                self.env.bind(&bound[0], ty.args[0].clone());
                self.env.bind(&bound[1], ty.args[1].clone());
            }
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32, col: u32) -> u64 {
        let arg_masks: Vec<u64> = args.iter().map(|a| self.eval(a)).collect();
        if let Expr::Path { segs, .. } = callee {
            let is_sink = match segs.len() {
                0 => false,
                1 => self.spec.sink_fn_names.contains(&segs[0]),
                n => {
                    self.spec
                        .sink_fns
                        .contains(&(segs[n - 2].clone(), segs[n - 1].clone()))
                        || self.spec.sink_fn_names.contains(&segs[n - 1])
                }
            };
            if is_sink {
                let label = segs.join("::");
                self.sink_hit(&arg_masks, &label, line, col);
                return 0;
            }
        }
        let candidates = self.ws.resolve_call(callee);
        self.apply_callees(&candidates, &arg_masks, callee_label(callee), line, col)
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        method: &str,
        turbofish: &[Ty],
        args: &[Expr],
        line: u32,
        col: u32,
    ) -> u64 {
        let recv_mask = self.eval(recv);
        let recv_ty = self.env.type_of(recv);
        let mut arg_masks = Vec::with_capacity(args.len() + 1);
        arg_masks.push(recv_mask);
        for arg in args {
            if let Expr::Closure { params, body, .. } = arg {
                let elem_ty = recv_ty.as_ref().map(|t| t.peeled().clone());
                self.bind_elements(
                    params,
                    recv_mask,
                    elem_ty.as_ref().filter(|t| !t.args.is_empty()),
                );
                arg_masks.push(self.eval(body));
            } else {
                arg_masks.push(self.eval(arg));
            }
        }
        // Source: iterating an unordered container.
        if ITER_METHODS.contains(&method) && recv_ty.as_ref().is_some_and(is_unordered_ty) {
            return recv_mask | UNORDERED;
        }
        // Sanitizers.
        if method == "collect" && turbofish.first().is_some_and(is_ordered_collect) {
            return recv_mask & !UNORDERED;
        }
        if SORTS.contains(&method) {
            if let Expr::Path { segs, .. } = recv {
                if segs.len() == 1 {
                    if let Some(mask) = self.taint.get_mut(&segs[0]) {
                        *mask &= !UNORDERED;
                    }
                }
            }
            return 0;
        }
        if ORDER_FREE.contains(&method) {
            return 0;
        }
        // Receiver mutation (`acc.push(item)`): unordered items make the
        // accumulator unordered.
        if RECV_SINKS.contains(&method) {
            let payload = arg_masks.iter().skip(1).fold(0, |a, b| a | b);
            if let Expr::Path { segs, .. } = recv {
                if segs.len() == 1 {
                    *self.taint.entry(segs[0].clone()).or_insert(0) |= payload;
                    return 0;
                }
            }
            return recv_mask | payload;
        }
        // Sink methods (`.to_value()`).
        if self.spec.sink_methods.contains(method) && recv_mask & UNORDERED != 0 {
            self.sink_hit(&[recv_mask], &format!(".{method}()"), line, col);
            return 0;
        }
        let candidates = self.ws.resolve_method(recv_ty.as_ref(), method);
        if candidates.is_empty() {
            return arg_masks.iter().fold(0, |a, b| a | b);
        }
        self.apply_callees(&candidates, &arg_masks, method, line, col)
    }

    fn apply_callees(
        &mut self,
        candidates: &[FnId],
        arg_masks: &[u64],
        label: &str,
        line: u32,
        col: u32,
    ) -> u64 {
        if candidates.is_empty() {
            return arg_masks.iter().fold(0, |a, b| a | b);
        }
        let mut ret = 0;
        for id in candidates {
            let s = self.summaries[id.0];
            if s.returns & UNORDERED != 0 {
                ret |= UNORDERED;
            }
            for (i, mask) in arg_masks.iter().enumerate().take(62) {
                if s.returns & (1 << i) != 0 {
                    ret |= mask;
                }
                if s.param_sink & (1 << i) != 0 {
                    if *mask & UNORDERED != 0 {
                        let callee = &self.ws.entry(*id).info.def.name;
                        self.report(
                            line,
                            col,
                            format!(
                                "unordered-iteration value in argument {i} of `{label}` is \
                                 serialized inside `{callee}` — impose an order (sort, or \
                                 collect into a BTree container) first"
                            ),
                        );
                    }
                    self.summary.param_sink |= *mask & !UNORDERED;
                }
            }
        }
        ret
    }

    fn sink_hit(&mut self, masks: &[u64], sink: &str, line: u32, col: u32) {
        for mask in masks {
            if mask & UNORDERED != 0 {
                self.report(
                    line,
                    col,
                    format!(
                        "value derived from HashMap/HashSet iteration reaches `{sink}` — \
                         serialized output must be deterministic; sort or collect into a \
                         BTree container before serializing"
                    ),
                );
            }
            self.summary.param_sink |= mask & !UNORDERED;
        }
    }
}

fn callee_label(callee: &Expr) -> &str {
    match callee {
        Expr::Path { segs, .. } => segs.last().map_or("?", String::as_str),
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::rules::{FileInput, Prepared};
    use crate::symbols::FileModel;

    fn check_sources(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let inputs: Vec<FileInput> = sources
            .iter()
            .map(|(rel, src)| FileInput {
                rel: rel.to_string(),
                class: crate::walker::classify(rel),
                crate_name: crate::walker::crate_name(rel),
                text: src.to_string(),
            })
            .collect();
        let preps: Vec<Prepared> = inputs.iter().map(Prepared::new).collect();
        let models = preps
            .iter()
            .map(|p| FileModel::build(p.input, &parse_file(&p.code)))
            .collect();
        let ws = Workspace::build(models);
        let sup = Suppressions::new(&preps);
        let mut out = Vec::new();
        check(&ws, &Config::default(), &sup, &mut out);
        out
    }

    const STATE: &str = "pub struct State { counts: HashMap<String, u64> }\n";

    #[test]
    fn iteration_into_serialization_flagged() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let rows: Vec<String> = self.counts.iter().map(|kv| fmt(kv)).collect();\n\
                 serde_json::to_string(&rows).unwrap()\n}}\n}}"
            ),
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, RULE);
        assert!(
            diags[0].message.contains("serde_json::to_string"),
            "{diags:?}"
        );
    }

    #[test]
    fn btree_collect_sanitizes() {
        let turbofish = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let rows = self.counts.iter().collect::<BTreeMap<_, _>>();\n\
                 serde_json::to_string(&rows).unwrap()\n}}\n}}"
            ),
        )]);
        assert!(turbofish.is_empty(), "{turbofish:?}");
        let annotated = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let rows: BTreeMap<String, u64> = self.counts.clone().into_iter().collect();\n\
                 serde_json::to_string(&rows).unwrap()\n}}\n}}"
            ),
        )]);
        assert!(annotated.is_empty(), "{annotated:?}");
    }

    #[test]
    fn sort_sanitizes() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let mut rows: Vec<String> = self.counts.keys().cloned().collect();\n\
                 rows.sort();\n\
                 serde_json::to_string(&rows).unwrap()\n}}\n}}"
            ),
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn order_free_reductions_are_clean() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let total: u64 = self.counts.values().sum();\n\
                 serde_json::to_string(&total).unwrap()\n}}\n}}"
            ),
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn for_loop_accumulation_flagged() {
        let diags = check_sources(&[(
            "crates/core/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let mut rows = Vec::new();\n\
                 for (k, v) in &self.counts {{ rows.push(format!(\"{{k}}={{v}}\")); }}\n\
                 serde_json::to_string(&rows).unwrap()\n}}\n}}"
            ),
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn interprocedural_flow_reported_at_call_site() {
        let diags = check_sources(&[
            ("crates/core/src/model.rs", STATE),
            (
                "crates/core/src/ser.rs",
                "fn encode(rows: Vec<String>) -> String { serde_json::to_string(&rows).unwrap() }",
            ),
            (
                "crates/engine/src/y.rs",
                "fn dump(s: &State) -> String {\n\
                 let rows: Vec<String> = s.counts.keys().cloned().collect();\n\
                 encode(rows)\n}",
            ),
        ]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].file, "crates/engine/src/y.rs");
        assert!(diags[0].message.contains("encode"), "{diags:?}");
    }

    #[test]
    fn untyped_receiver_is_not_assumed_unordered() {
        // `rows.iter()` on an unknown type: no finding (typed-only rule).
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            "fn dump(rows: &Rows) -> String {\n\
             let v: Vec<String> = rows.items.iter().cloned().collect();\n\
             serde_json::to_string(&v).unwrap()\n}",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn to_value_method_is_a_sink() {
        let diags = check_sources(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) {{\n\
                 let rows: Vec<String> = self.counts.keys().cloned().collect();\n\
                 let v = rows.to_value();\n}}\n}}"
            ),
        )]);
        assert_eq!(diags.len(), 1, "{diags:?}");
    }

    #[test]
    fn suppression_is_honored() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{STATE}impl State {{\nfn dump(&self) -> String {{\n\
                 let rows: Vec<String> = self.counts.keys().cloned().collect();\n\
                 // dox-lint:allow(determinism-flow) diagnostic dump, order-insensitive consumer\n\
                 serde_json::to_string(&rows).unwrap()\n}}\n}}"
            ),
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
