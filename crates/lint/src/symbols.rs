//! Per-file symbol model: flattened functions, struct field types, and
//! the type environment the dataflow rules evaluate expressions in.
//!
//! [`FileModel::build`] flattens a [`ParsedFile`] — impl methods get
//! their `self` type, functions nested in `#[cfg(test)]` modules are
//! marked — and records every struct's field types. The models of all
//! files merge into one workspace-wide [`TypeTable`] so a field chain
//! like `collected.doc.body` resolves across crate boundaries
//! (`CollectedDoc.doc → SynthDoc`, `SynthDoc.body → String`).
//!
//! [`TypeEnv`] is the per-function scope the rules thread through a
//! body walk: parameter types seed it, `let` bindings extend it, and
//! [`TypeEnv::type_of`] resolves the type of a value expression as far
//! as the model allows (`None` means "unknown" — rules must degrade to
//! their conservative fallback, never guess).

use crate::parser::{Expr, FnDef, Item, ParsedFile, Ty};
use crate::rules::{FileClass, FileInput};
use std::collections::BTreeMap;

/// One function in the flattened model.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The impl type for methods (`Tenant` for `impl Tenant { fn … }`);
    /// `None` for free functions.
    pub qual: Option<String>,
    /// The parsed definition. For methods, the `self` parameter's type
    /// is filled in with the impl type.
    pub def: FnDef,
    /// Whether the fn lives under a `#[cfg(test)]` module.
    pub cfg_test: bool,
}

/// The symbol model of one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// Workspace-relative path.
    pub rel: String,
    /// Path-derived class.
    pub class: FileClass,
    /// Crate directory name for `crates/<name>/…` paths.
    pub crate_name: Option<String>,
    /// Struct name → (field → type).
    pub structs: BTreeMap<String, BTreeMap<String, Ty>>,
    /// Every function, flattened out of impls and modules.
    pub fns: Vec<FnInfo>,
    /// Constructs that degraded during parsing.
    pub degraded: usize,
}

impl FileModel {
    /// Build the model for one parsed file.
    pub fn build(input: &FileInput, parsed: &ParsedFile) -> Self {
        let mut model = FileModel {
            rel: input.rel.clone(),
            class: input.class,
            crate_name: input.crate_name.clone(),
            degraded: parsed.degraded,
            ..FileModel::default()
        };
        collect_items(
            &parsed.items,
            None,
            input.class == FileClass::Test,
            &mut model,
        );
        model
    }
}

fn collect_items(items: &[Item], qual: Option<&str>, cfg_test: bool, model: &mut FileModel) {
    for item in items {
        match item {
            Item::Fn(def) => {
                model.fns.push(FnInfo {
                    qual: qual.map(str::to_string),
                    def: with_self_type(def.clone(), qual),
                    cfg_test,
                });
                // Nested items inside the body (rare, but fns defined in
                // fns exist in tests).
                if let Some(body) = &def.body {
                    for stmt in &body.stmts {
                        if let crate::parser::Stmt::Item(item) = stmt {
                            collect_items(std::slice::from_ref(item), None, cfg_test, model);
                        }
                    }
                }
            }
            Item::Impl { ty, fns } => {
                for def in fns {
                    model.fns.push(FnInfo {
                        qual: Some(ty.clone()),
                        def: with_self_type(def.clone(), Some(ty)),
                        cfg_test,
                    });
                }
            }
            Item::Struct { name, fields } => {
                let entry = model.structs.entry(name.clone()).or_default();
                for (field, ty) in fields {
                    entry.insert(field.clone(), ty.clone());
                }
            }
            Item::Mod {
                cfg_test: mod_test,
                items,
                ..
            } => {
                collect_items(items, None, cfg_test || *mod_test, model);
            }
            Item::Other => {}
        }
    }
}

/// Fill a method's `self` parameter with the impl type.
fn with_self_type(mut def: FnDef, qual: Option<&str>) -> FnDef {
    if let Some(q) = qual {
        for (name, ty) in &mut def.params {
            if name == "self" && ty.is_none() {
                *ty = Some(Ty::simple(q));
            }
        }
    }
    def
}

/// Workspace-wide struct field types: struct name → field → type.
pub type TypeTable = BTreeMap<String, BTreeMap<String, Ty>>;

/// Merge every file's structs into one table. Duplicate struct names
/// across crates merge their fields (acceptable for analysis: field
/// names rarely collide with different types in this workspace).
pub fn merge_type_table(models: &[FileModel]) -> TypeTable {
    let mut table = TypeTable::new();
    for model in models {
        for (name, fields) in &model.structs {
            let entry = table.entry(name.clone()).or_default();
            for (field, ty) in fields {
                entry.entry(field.clone()).or_insert_with(|| ty.clone());
            }
        }
    }
    table
}

/// A lexical scope mapping variables to types, backed by the workspace
/// [`TypeTable`] for field resolution.
pub struct TypeEnv<'a> {
    table: &'a TypeTable,
    rets: Option<&'a BTreeMap<String, Ty>>,
    vars: Vec<BTreeMap<String, Ty>>,
}

impl<'a> TypeEnv<'a> {
    /// A fresh environment over the workspace table.
    pub fn new(table: &'a TypeTable) -> Self {
        Self {
            table,
            rets: None,
            vars: vec![BTreeMap::new()],
        }
    }

    /// Attach the workspace's unambiguous-return-type map, letting
    /// [`TypeEnv::type_of`] type bare `name(…)` calls.
    #[must_use]
    pub fn with_returns(mut self, rets: &'a BTreeMap<String, Ty>) -> Self {
        self.rets = Some(rets);
        self
    }

    /// Seed the environment with a function's parameters.
    pub fn with_params(table: &'a TypeTable, def: &FnDef) -> Self {
        let mut env = Self::new(table);
        for (name, ty) in &def.params {
            if let Some(ty) = ty {
                env.bind(name, ty.clone());
            }
        }
        env
    }

    /// Enter a nested scope (block, closure, match arm).
    pub fn push(&mut self) {
        self.vars.push(BTreeMap::new());
    }

    /// Leave the innermost scope.
    pub fn pop(&mut self) {
        if self.vars.len() > 1 {
            self.vars.pop();
        }
    }

    /// Bind `name` to `ty` in the innermost scope.
    pub fn bind(&mut self, name: &str, ty: Ty) {
        if let Some(scope) = self.vars.last_mut() {
            scope.insert(name.to_string(), ty);
        }
    }

    /// Look a variable up, innermost scope first.
    pub fn lookup(&self, name: &str) -> Option<&Ty> {
        self.vars.iter().rev().find_map(|s| s.get(name))
    }

    /// The fields of a struct, if the model knows it.
    pub fn fields_of(&self, ty: &Ty) -> Option<&BTreeMap<String, Ty>> {
        self.table.get(&ty.peeled().name)
    }

    /// Resolve the type of a value expression as far as the model
    /// allows. `None` means unknown — callers must stay conservative.
    pub fn type_of(&self, expr: &Expr) -> Option<Ty> {
        match expr {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.lookup(&segs[0]).cloned()
                } else {
                    None
                }
            }
            Expr::Field { base, name, .. } => {
                let base_ty = self.type_of(base)?;
                self.table.get(&base_ty.peeled().name)?.get(name).cloned()
            }
            Expr::Struct { ty, .. } => Some(Ty::simple(ty.clone())),
            Expr::Call { callee, .. } => {
                // `Type::new(…)` / `Type::default()` / `Type::from(…)` —
                // any associated constructor of an uppercase type.
                if let Expr::Path { segs, .. } = callee.as_ref() {
                    if segs.len() >= 2 {
                        let ty = &segs[segs.len() - 2];
                        if ty.chars().next().is_some_and(char::is_uppercase) {
                            return Some(Ty::simple(ty.clone()));
                        }
                    }
                    // A workspace fn whose namesakes all declare the same
                    // return type: `extract(text)` types as ExtractedDox.
                    if let Some(name) = segs.last() {
                        if let Some(ret) = self.rets.and_then(|r| r.get(name)) {
                            return Some(ret.clone());
                        }
                    }
                }
                None
            }
            Expr::MethodCall {
                recv,
                method,
                turbofish,
                ..
            } => match method.as_str() {
                "clone" | "as_ref" | "as_mut" | "borrow" | "borrow_mut" => self.type_of(recv),
                "to_string" | "to_owned" => Some(Ty::simple("String")),
                "collect" => turbofish.first().cloned(),
                "lock" | "write" | "read" => {
                    // `mutex.lock()` yields a guard over the protected
                    // value: surface it as MutexGuard<T> so `peeled()`
                    // reaches T.
                    let recv_ty = self.type_of(recv)?;
                    let name = &recv_ty.name;
                    if name == "Mutex" || name == "RwLock" {
                        Some(Ty {
                            name: "MutexGuard".to_string(),
                            args: recv_ty.args.clone(),
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            },
            Expr::Unary { inner } => self.type_of(inner),
            Expr::Index { base, .. } => {
                // `vec[i]` / `map[&k]` — element / value type.
                let base_ty = self.type_of(base)?;
                let t = base_ty.peeled();
                match t.name.as_str() {
                    "Vec" | "VecDeque" | "[slice]" => t.args.first().cloned(),
                    "BTreeMap" | "HashMap" => t.args.get(1).cloned(),
                    _ => None,
                }
            }
            Expr::Block(b) => match b.stmts.last() {
                Some(crate::parser::Stmt::Expr(e)) => self.type_of(e),
                _ => None,
            },
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn model(rel: &str, src: &str) -> FileModel {
        let input = FileInput {
            rel: rel.into(),
            class: crate::walker::classify(rel),
            crate_name: crate::walker::crate_name(rel),
            text: src.into(),
        };
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let parsed = parse_file(&toks);
        FileModel::build(&input, &parsed)
    }

    #[test]
    fn methods_get_self_type_and_cfg_test_marks() {
        let m = model(
            "crates/serve/src/x.rs",
            r#"
pub struct Tenant { spec: TenantSpec }
impl Tenant { fn spec(&self) -> &TenantSpec { &self.spec } }
#[cfg(test)]
mod tests { fn helper() {} }
"#,
        );
        assert_eq!(m.fns.len(), 2);
        let spec = &m.fns[0];
        assert_eq!(spec.qual.as_deref(), Some("Tenant"));
        assert_eq!(spec.def.params[0].1.as_ref().unwrap().name, "Tenant");
        assert!(!spec.cfg_test);
        assert!(m.fns[1].cfg_test);
        assert_eq!(m.structs["Tenant"]["spec"].name, "TenantSpec");
    }

    #[test]
    fn type_of_resolves_field_chains_across_structs() {
        let m1 = model(
            "crates/sites/src/a.rs",
            "pub struct CollectedDoc { doc: SynthDoc, at: SimTime }",
        );
        let m2 = model(
            "crates/synth/src/b.rs",
            "pub struct SynthDoc { id: u64, body: String }",
        );
        let table = merge_type_table(&[m1, m2]);
        let mut env = TypeEnv::new(&table);
        env.bind("collected", Ty::simple("CollectedDoc"));
        let src = "fn f() { collected.doc.body }";
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let parsed = parse_file(&toks);
        let Item::Fn(f) = &parsed.items[0] else {
            panic!("fn")
        };
        let crate::parser::Stmt::Expr(chain) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("expr: {:?}", f.body);
        };
        assert_eq!(env.type_of(chain).unwrap().name, "String");
        // And through wrappers: Arc<Mutex<CollectedDoc>> peels.
        env.bind(
            "shared",
            Ty {
                name: "Arc".into(),
                args: vec![Ty {
                    name: "Mutex".into(),
                    args: vec![Ty::simple("CollectedDoc")],
                }],
            },
        );
        let ty = env.lookup("shared").unwrap();
        assert_eq!(ty.peeled().name, "CollectedDoc");
    }

    #[test]
    fn constructor_calls_and_collect_turbofish_type() {
        let table = TypeTable::new();
        let env = TypeEnv::new(&table);
        let src = "fn f() { VecDeque::new() }";
        let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let parsed = parse_file(&toks);
        let Item::Fn(f) = &parsed.items[0] else {
            panic!("fn")
        };
        let crate::parser::Stmt::Expr(e) = &f.body.as_ref().unwrap().stmts[0] else {
            panic!("expr")
        };
        assert_eq!(env.type_of(e).unwrap().name, "VecDeque");
    }
}
