//! The `dox-lint` command-line driver.
//!
//! ```text
//! dox-lint --workspace [--format text|json] [--config lint.toml]
//!          [--root DIR] [--no-baseline] [--list-rules]
//! ```
//!
//! Exit codes: `0` clean, `1` findings or baseline problems, `2` usage,
//! configuration or I/O errors.

use dox_lint::config::Config;
use dox_lint::{diag, run_workspace, walker};
use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
dox-lint: project-specific static analysis (see DESIGN.md §Static analysis)

USAGE:
    dox-lint [--workspace] [OPTIONS]

OPTIONS:
    --workspace        Lint every non-vendor .rs file in the workspace (default)
    --root <DIR>       Workspace root (default: walk up from the current directory)
    --config <FILE>    Configuration/baseline file (default: <root>/lint.toml)
    --format <FMT>     Output format: text (default) or json
    --no-baseline      Ignore lint.toml's baseline (report everything)
    --list-rules       Print the rule names and exit
    -h, --help         This message

RULES:
    panic-hygiene     no unwrap/expect/panic!/unreachable!/todo! in dox-* library code
    pii-taint         dataflow: PII source fields must not reach log/wire sinks
                      unredacted (redact() is the only sanitizer)
    determinism       no wall-clock/entropy calls in library code outside crates/obs
    determinism-flow  dataflow: HashMap/HashSet-iteration values must not reach
                      serialization unsorted
    lock-discipline   no guards bound to _; no re-locking a held mutex in one scope
    lock-order        dataflow: no lock-acquisition-order cycles; no guard held
                      across blocking I/O or a Condvar wait
    unsafe-audit      no `unsafe` outside vendor/; crate roots carry forbid(unsafe_code)

Suppress a single line with `// dox-lint:allow(rule) <reason>`; grandfather
pockets of findings in lint.toml under [baseline] as \"<file>: <rule>: <count>\".
`--format json` emits {files_checked, findings, baselined, baseline_errors}.";

struct Args {
    root: Option<PathBuf>,
    config: Option<PathBuf>,
    json: bool,
    no_baseline: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        config: None,
        json: false,
        no_baseline: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => {}
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a file")?));
            }
            "--format" => match it.next().as_deref() {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("unknown format {other:?} (text|json)")),
            },
            "--no-baseline" => args.no_baseline = true,
            "--list-rules" => args.list_rules = true,
            "-h" | "--help" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for rule in dox_lint::rules::RULE_NAMES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    let root = match args.root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot determine current directory: {e}");
                    return ExitCode::from(2);
                }
            };
            match walker::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no workspace root above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let config_path = args.config.unwrap_or_else(|| root.join("lint.toml"));
    let mut config = match std::fs::read_to_string(&config_path) {
        Ok(text) => match Config::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", config_path.display());
                return ExitCode::from(2);
            }
        },
        // A missing lint.toml means strict defaults and an empty baseline.
        Err(_) => Config::default(),
    };
    if args.no_baseline {
        config.baseline.clear();
    }

    let report = match run_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if args.json {
        println!("{}", diag::report_to_json(&report));
    } else {
        for d in &report.findings {
            println!("{d}");
        }
        for e in &report.baseline_errors {
            println!("lint.toml: {e}");
        }
        eprintln!(
            "dox-lint: {} file(s) checked, {} finding(s), {} baselined, {} baseline error(s)",
            report.files_checked,
            report.findings.len(),
            report.baselined.len(),
            report.baseline_errors.len()
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
