//! `dox-lint` — project-specific static analysis for the doxing
//! reproduction workspace.
//!
//! The pipeline handles highly sensitive synthetic PII (names, addresses,
//! SSNs) and promises byte-identical [`ExperimentReport`]s at any
//! worker/shard topology. Two of the resulting invariants — "document
//! content never reaches an unredacted log sink" and "no wall-clock or
//! unordered-map nondeterminism on report-producing paths" — cannot be
//! expressed as clippy lints, so this crate machine-checks them, plus
//! panic hygiene, lock discipline and an unsafe audit. It is
//! dependency-free (the workspace is offline; no `syn`): its own lexer
//! feeds an error-tolerant recursive-descent parser ([`parser`]), each
//! file flattens into a symbol model of functions and struct field
//! types ([`symbols`]), and the models merge into one workspace-wide
//! call graph ([`callgraph`]). Fast token rules run per file; three
//! interprocedural dataflow rules — [`taint`] (PII sources to log/wire
//! sinks, `redact()` the sole sanitizer), [`lockorder`] (lock-acquisition
//! cycles and guards held across blocking calls) and [`detflow`]
//! (hash-ordered iteration into serialization) — run over the merged
//! model via per-function summaries driven to a fixpoint.
//!
//! Run it from the quality gate:
//!
//! ```text
//! cargo run -p dox-lint --release -- --workspace
//! ```
//!
//! Findings print rustc-style (`file:line:col: rule: message`); the
//! process exits nonzero on any non-baselined finding and on stale
//! baseline entries. See DESIGN.md §"Static analysis" for the rule
//! catalogue, the `// dox-lint:allow(rule) reason` suppression syntax and
//! the `lint.toml` baseline workflow.
//!
//! [`ExperimentReport`]: ../dox_core/study/struct.ExperimentReport.html

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod detflow;
pub mod diag;
pub mod lexer;
pub mod lockorder;
pub mod parser;
pub mod rules;
pub mod symbols;
pub mod taint;
pub mod walker;

use config::Config;
use diag::Diagnostic;
use rules::{Prepared, RULE_NAMES};
use std::collections::BTreeMap;
use std::path::Path;

/// The outcome of a workspace run, after the baseline is applied.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Findings not covered by the baseline (gate failures).
    pub findings: Vec<Diagnostic>,
    /// Findings absorbed by `lint.toml` baseline entries.
    pub baselined: Vec<Diagnostic>,
    /// Baseline problems: entries matching nothing (stale) or fewer
    /// findings than recorded (overcounting) — both gate failures, so the
    /// baseline can only ever shrink truthfully.
    pub baseline_errors: Vec<String>,
    /// Number of files checked.
    pub files_checked: usize,
}

impl RunReport {
    /// Whether the gate should pass.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.baseline_errors.is_empty()
    }
}

/// Lint every checkable file under `root` with `config`: token rules
/// per file, then the workspace-level dataflow rules (`pii-taint`,
/// `lock-order`, `determinism-flow`) over the merged symbol model.
pub fn run_workspace(root: &Path, config: &Config) -> std::io::Result<RunReport> {
    let files = walker::collect_files(root)?;
    let preps: Vec<Prepared> = files.iter().map(Prepared::new).collect();
    let mut all = Vec::new();
    for prep in &preps {
        all.extend(rules::run_rules(prep, config));
    }
    let models = preps
        .iter()
        .map(|p| symbols::FileModel::build(p.input, &parser::parse_file(&p.code)))
        .collect();
    let ws = callgraph::Workspace::build(models);
    let sup = rules::Suppressions::new(&preps);
    taint::check(&ws, config, &sup, &mut all);
    lockorder::check(&ws, config, &sup, &mut all);
    detflow::check(&ws, config, &sup, &mut all);
    all.sort_by_key(Diagnostic::sort_key);
    Ok(apply_baseline(all, config, files.len()))
}

/// Split raw findings into live vs. baselined, and validate the baseline
/// itself (every entry must match *exactly* its recorded count).
pub fn apply_baseline(diags: Vec<Diagnostic>, config: &Config, files_checked: usize) -> RunReport {
    let baseline = config.baseline_map();
    let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
    for d in &diags {
        *counts
            .entry((d.file.clone(), d.rule.to_string()))
            .or_insert(0) += 1;
    }

    let mut report = RunReport {
        files_checked,
        ..RunReport::default()
    };
    for d in diags {
        let key = (d.file.clone(), d.rule.to_string());
        let found = counts.get(&key).copied().unwrap_or(0);
        let allowed = baseline.get(&key).copied().unwrap_or(0);
        if found <= allowed {
            report.baselined.push(d);
        } else {
            report.findings.push(d);
        }
    }
    for ((file, rule), allowed) in &baseline {
        let found = counts
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if found == 0 {
            report.baseline_errors.push(format!(
                "stale baseline entry: {file}: {rule}: {allowed} matches no finding — remove it"
            ));
        } else if found < *allowed {
            report.baseline_errors.push(format!(
                "baseline overcounts: {file}: {rule}: {allowed} but only {found} finding(s) \
                 remain — tighten it to {found}"
            ));
        }
        if !RULE_NAMES.contains(&rule.as_str()) {
            report.baseline_errors.push(format!(
                "baseline entry {file}: {rule}: {allowed} names an unknown rule \
                 (known: {})",
                RULE_NAMES.join(", ")
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use config::BaselineEntry;

    fn diag(file: &str, rule: &'static str) -> Diagnostic {
        Diagnostic::new(file, 1, 1, rule, "m")
    }

    fn cfg_with(entries: Vec<BaselineEntry>) -> Config {
        Config {
            baseline: entries,
            ..Config::default()
        }
    }

    fn entry(file: &str, rule: &str, count: usize) -> BaselineEntry {
        BaselineEntry {
            file: file.into(),
            rule: rule.into(),
            count,
        }
    }

    #[test]
    fn exact_baseline_absorbs_findings() {
        let cfg = cfg_with(vec![entry("a.rs", "panic-hygiene", 2)]);
        let r = apply_baseline(
            vec![diag("a.rs", "panic-hygiene"), diag("a.rs", "panic-hygiene")],
            &cfg,
            1,
        );
        assert!(r.is_clean(), "{r:?}");
        assert_eq!(r.baselined.len(), 2);
    }

    #[test]
    fn excess_findings_fail_entirely() {
        // One more finding than baselined: the whole group surfaces so the
        // developer sees every candidate site, not an arbitrary one.
        let cfg = cfg_with(vec![entry("a.rs", "panic-hygiene", 1)]);
        let r = apply_baseline(
            vec![diag("a.rs", "panic-hygiene"), diag("a.rs", "panic-hygiene")],
            &cfg,
            1,
        );
        assert!(!r.is_clean());
        assert_eq!(r.findings.len(), 2);
    }

    #[test]
    fn stale_and_overcounting_entries_fail() {
        let cfg = cfg_with(vec![
            entry("gone.rs", "panic-hygiene", 1),
            entry("a.rs", "determinism", 5),
        ]);
        let r = apply_baseline(vec![diag("a.rs", "determinism")], &cfg, 1);
        assert!(!r.is_clean());
        assert_eq!(r.baseline_errors.len(), 2, "{:?}", r.baseline_errors);
        assert!(r.baseline_errors[1].contains("stale") || r.baseline_errors[0].contains("stale"));
    }

    #[test]
    fn unknown_rule_in_baseline_fails() {
        let cfg = cfg_with(vec![entry("a.rs", "no-such-rule", 1)]);
        let r = apply_baseline(vec![diag("a.rs", "no-such-rule")], &cfg, 1);
        assert!(!r.is_clean());
        assert!(r.baseline_errors[0].contains("unknown rule"));
    }

    #[test]
    fn clean_run_is_clean() {
        let r = apply_baseline(Vec::new(), &Config::default(), 42);
        assert!(r.is_clean());
        assert_eq!(r.files_checked, 42);
    }
}
