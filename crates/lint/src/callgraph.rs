//! The workspace-level function index and call resolution.
//!
//! Dataflow rules are interprocedural: a finding like "`doc.body`
//! reaches `emit`" may cross three functions in two crates. The
//! [`Workspace`] flattens every [`FileModel`] into one addressable list
//! of functions ([`FnId`]), merges the struct field types, and resolves
//! call expressions back to candidate definitions:
//!
//! * `Type::method(…)` / qualified paths resolve through the impl-type
//!   index;
//! * `recv.method(…)` resolves through the impl-type index when the
//!   receiver type is known, and falls back to "every method with this
//!   name" (a deliberate over-approximation — better a reviewed
//!   suppression than a silent leak) when it is not;
//! * free `name(…)` calls resolve by bare name.
//!
//! Resolution never leaves the workspace: calls into `std` or vendored
//! crates return no candidates, and each rule models the handful of
//! std methods it cares about (e.g. `Condvar::wait`) explicitly.

use crate::parser::{Expr, Ty};
use crate::symbols::{merge_type_table, FileModel, FnInfo, TypeEnv, TypeTable};
use std::collections::BTreeMap;

/// Index of a function in [`Workspace::fns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FnId(pub usize);

/// One function plus where it came from.
#[derive(Debug, Clone)]
pub struct FnEntry {
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// The function itself.
    pub info: FnInfo,
}

/// The merged model of every parsed file.
pub struct Workspace {
    /// Per-file models, in walk order.
    pub files: Vec<FileModel>,
    /// Every function in the workspace.
    pub fns: Vec<FnEntry>,
    /// Workspace-wide struct field types.
    pub table: TypeTable,
    /// Declared return types of *unambiguously named* functions — every
    /// same-named fn in the workspace agrees on the type, so a bare
    /// `name(…)` call can be typed without resolution.
    pub rets: BTreeMap<String, Ty>,
    by_name: BTreeMap<String, Vec<FnId>>,
    by_qual: BTreeMap<(String, String), Vec<FnId>>,
}

impl Workspace {
    /// Build the index from per-file models.
    pub fn build(files: Vec<FileModel>) -> Self {
        let table = merge_type_table(&files);
        let mut fns = Vec::new();
        let mut by_name: BTreeMap<String, Vec<FnId>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(String, String), Vec<FnId>> = BTreeMap::new();
        for (file_idx, model) in files.iter().enumerate() {
            for info in &model.fns {
                let id = FnId(fns.len());
                by_name.entry(info.def.name.clone()).or_default().push(id);
                if let Some(q) = &info.qual {
                    by_qual
                        .entry((q.clone(), info.def.name.clone()))
                        .or_default()
                        .push(id);
                }
                fns.push(FnEntry {
                    file: file_idx,
                    info: info.clone(),
                });
            }
        }
        let mut ret_sets: BTreeMap<&String, Vec<&Option<Ty>>> = BTreeMap::new();
        for entry in &fns {
            ret_sets
                .entry(&entry.info.def.name)
                .or_default()
                .push(&entry.info.def.ret);
        }
        let rets = ret_sets
            .into_iter()
            .filter_map(|(name, tys)| {
                // Unit-returning or divergently-typed namesakes poison the
                // name: a bare call could be any of them.
                let first = tys.first().copied()?.as_ref()?;
                tys.iter()
                    .all(|t| t.as_ref().is_some_and(|t| t.name == first.name))
                    .then(|| (name.clone(), first.clone()))
            })
            .collect();
        Self {
            files,
            fns,
            table,
            rets,
            by_name,
            by_qual,
        }
    }

    /// The function behind an id.
    pub fn entry(&self, id: FnId) -> &FnEntry {
        &self.fns[id.0]
    }

    /// The file a function lives in.
    pub fn file_of(&self, id: FnId) -> &FileModel {
        &self.files[self.entry(id).file]
    }

    /// A fresh type environment seeded with a function's parameters.
    pub fn env_for(&self, id: FnId) -> TypeEnv<'_> {
        TypeEnv::with_params(&self.table, &self.entry(id).info.def).with_returns(&self.rets)
    }

    /// Resolve a free/qualified call expression (`foo(…)`,
    /// `Type::method(…)`, `module::foo(…)`) to candidate definitions.
    pub fn resolve_call(&self, callee: &Expr) -> Vec<FnId> {
        let Expr::Path { segs, .. } = callee else {
            return Vec::new();
        };
        let Some(name) = segs.last() else {
            return Vec::new();
        };
        if segs.len() >= 2 {
            let qual = &segs[segs.len() - 2];
            if qual.chars().next().is_some_and(char::is_uppercase) {
                // `Type::method` — exact impl lookup only.
                return self
                    .by_qual
                    .get(&(qual.clone(), name.clone()))
                    .cloned()
                    .unwrap_or_default();
            }
        }
        self.by_name.get(name).cloned().unwrap_or_default()
    }

    /// Resolve `recv.method(…)` to candidate definitions. When the
    /// receiver type is unknown, every same-named method (fn with a
    /// `self` parameter) is a candidate.
    pub fn resolve_method(&self, recv_ty: Option<&Ty>, method: &str) -> Vec<FnId> {
        if let Some(ty) = recv_ty {
            return self
                .by_qual
                .get(&(ty.peeled().name.clone(), method.to_string()))
                .cloned()
                .unwrap_or_default();
        }
        self.by_name
            .get(method)
            .map(|ids| {
                ids.iter()
                    .copied()
                    .filter(|id| {
                        self.entry(*id)
                            .info
                            .def
                            .params
                            .first()
                            .is_some_and(|(n, _)| n == "self")
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;
    use crate::rules::FileInput;

    fn ws(sources: &[(&str, &str)]) -> Workspace {
        let models = sources
            .iter()
            .map(|(rel, src)| {
                let input = FileInput {
                    rel: rel.to_string(),
                    class: crate::walker::classify(rel),
                    crate_name: crate::walker::crate_name(rel),
                    text: src.to_string(),
                };
                let toks: Vec<_> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
                FileModel::build(&input, &parse_file(&toks))
            })
            .collect();
        Workspace::build(models)
    }

    fn path(segs: &[&str]) -> Expr {
        Expr::Path {
            segs: segs.iter().map(|s| s.to_string()).collect(),
            line: 1,
            col: 1,
        }
    }

    #[test]
    fn qualified_and_free_calls_resolve() {
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "impl Tenant { fn report(&self) {} }\nfn report() {}\nfn free() {}",
            ),
            ("crates/b/src/lib.rs", "fn free() {}"),
        ]);
        // Type::method hits only the impl.
        let ids = w.resolve_call(&path(&["Tenant", "report"]));
        assert_eq!(ids.len(), 1);
        assert_eq!(w.entry(ids[0]).info.qual.as_deref(), Some("Tenant"));
        // Bare name hits both candidates across files.
        assert_eq!(w.resolve_call(&path(&["free"])).len(), 2);
        // Unknown stays empty.
        assert!(w.resolve_call(&path(&["nope"])).is_empty());
    }

    #[test]
    fn method_resolution_typed_and_fallback() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl Queue { fn push(&self) {} }\nimpl Vecish { fn push(&self) {} }\nfn push() {}",
        )]);
        let ty = Ty::simple("Queue");
        let ids = w.resolve_method(Some(&ty), "push");
        assert_eq!(ids.len(), 1);
        assert_eq!(w.entry(ids[0]).info.qual.as_deref(), Some("Queue"));
        // Unknown receiver: both methods, but not the free fn.
        assert_eq!(w.resolve_method(None, "push").len(), 2);
    }
}
