//! The rule registry: every project-specific lint, run over a prepared
//! token stream.
//!
//! Rules are deliberately token-level (no AST): each one encodes an
//! invariant of *this* workspace — see DESIGN.md §"Static analysis" for
//! the catalogue. All rules honor:
//!
//! * **file class** — library code is policed, `tests/`, benches,
//!   `src/bin/` and examples are not (except `unsafe-audit`, which is
//!   global);
//! * **`#[cfg(test)]` regions** — in-file test modules count as tests;
//! * **inline suppressions** — `// dox-lint:allow(rule-a, rule-b) reason`
//!   on the offending line, or standing alone on the line above it.

use crate::config::Config;
use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use std::collections::{BTreeMap, BTreeSet};

/// What kind of source file this is, by path convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FileClass {
    /// Library code under some `src/` (the policed class).
    #[default]
    Library,
    /// A binary: `src/bin/**` or `src/main.rs`.
    Bin,
    /// Anything under a `tests/` directory.
    Test,
    /// Anything under an `examples/` directory.
    Example,
    /// Anything under a `benches/` directory.
    Bench,
}

/// One file handed to the rule registry.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Path-derived class.
    pub class: FileClass,
    /// For `crates/<name>/…` paths, the crate directory name.
    pub crate_name: Option<String>,
    /// Full source text.
    pub text: String,
}

/// A lexed file with suppression and test-region indexes built.
pub struct Prepared<'a> {
    /// The file being checked.
    pub input: &'a FileInput,
    /// Code tokens (comments filtered out).
    pub code: Vec<Token>,
    /// Rules allowed per line (from `dox-lint:allow(...)` comments).
    allow: BTreeMap<u32, BTreeSet<String>>,
    /// Line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl<'a> Prepared<'a> {
    /// Lex and index one file.
    pub fn new(input: &'a FileInput) -> Self {
        let tokens = lex(&input.text);
        let allow = collect_suppressions(&tokens);
        let code: Vec<Token> = tokens.into_iter().filter(|t| !t.is_comment()).collect();
        let test_ranges = find_test_ranges(&code);
        Self {
            input,
            code,
            allow,
            test_ranges,
        }
    }

    /// Whether `rule` is suppressed on `line`.
    pub fn allowed(&self, line: u32, rule: &str) -> bool {
        self.allow
            .get(&line)
            .is_some_and(|rules| rules.contains(rule) || rules.contains("all"))
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    fn skip(&self, line: u32, rule: &'static str) -> bool {
        self.in_test(line) || self.allowed(line, rule)
    }
}

/// Suppression lookup across every prepared file, for the
/// workspace-level dataflow rules (which emit findings in files other
/// than the one driving the analysis).
pub struct Suppressions<'a> {
    map: BTreeMap<&'a str, &'a Prepared<'a>>,
}

impl<'a> Suppressions<'a> {
    /// Index prepared files by workspace-relative path.
    pub fn new(preps: &'a [Prepared<'a>]) -> Self {
        Self {
            map: preps.iter().map(|p| (p.input.rel.as_str(), p)).collect(),
        }
    }

    /// Whether `rule` is `dox-lint:allow`ed on `line` of `rel`.
    pub fn allowed(&self, rel: &str, line: u32, rule: &str) -> bool {
        self.map.get(rel).is_some_and(|p| p.allowed(line, rule))
    }
}

/// Extract `dox-lint:allow(rule, …)` from comments. A suppression applies
/// to the comment's own line; when the comment stands alone on its line it
/// also applies to the next code line.
fn collect_suppressions(tokens: &[Token]) -> BTreeMap<u32, BTreeSet<String>> {
    let mut allow: BTreeMap<u32, BTreeSet<String>> = BTreeMap::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let Some(rules) = parse_allow(&tok.text) else {
            continue;
        };
        let standalone = !tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !t.is_comment());
        let mut lines = vec![tok.line];
        if standalone {
            if let Some(next) = tokens[i + 1..].iter().find(|t| !t.is_comment()) {
                lines.push(next.line);
            }
        }
        for line in lines {
            allow.entry(line).or_default().extend(rules.iter().cloned());
        }
    }
    allow
}

/// Parse the rule list out of one comment, if it carries a suppression.
fn parse_allow(comment: &str) -> Option<Vec<String>> {
    let idx = comment.find("dox-lint:allow(")?;
    let rest = &comment[idx + "dox-lint:allow(".len()..];
    let close = rest.find(')')?;
    Some(
        rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

/// Find the line ranges of `#[cfg(test)]` items by brace matching.
fn find_test_ranges(code: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].is_punct('#') {
            i += 1;
            continue;
        }
        // `#[ … ]` (outer) or `#![ … ]` (inner) attribute.
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if !code.get(j).is_some_and(|t| t.is_punct('[')) {
            i += 1;
            continue;
        }
        let Some(end) = matching_close(code, j, '[', ']') else {
            break;
        };
        let attr = &code[j + 1..end];
        let is_cfg_test = attr.first().is_some_and(|t| t.is_ident("cfg"))
            && attr.iter().any(|t| t.is_ident("test"));
        if is_cfg_test {
            if let Some(range) = item_extent(code, end + 1, code[i].line) {
                ranges.push(range);
            }
        }
        i = end + 1;
    }
    ranges
}

/// The line extent of the item starting after an attribute: skip further
/// attributes, then match the item's braces (or stop at a top-level `;`
/// for brace-less items).
fn item_extent(code: &[Token], mut i: usize, start_line: u32) -> Option<(u32, u32)> {
    // Skip stacked attributes.
    while code.get(i).is_some_and(|t| t.is_punct('#')) {
        let mut j = i + 1;
        if code.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if code.get(j).is_some_and(|t| t.is_punct('[')) {
            i = matching_close(code, j, '[', ']')? + 1;
        } else {
            break;
        }
    }
    // Scan to the item's opening brace, tracking (…) and […] nesting so a
    // `;` inside `fn f(x: [u8; 3])` does not end the item early.
    let mut depth = 0i32;
    while let Some(tok) = code.get(i) {
        match tok.punct() {
            Some('(') | Some('[') => depth += 1,
            Some(')') | Some(']') => depth -= 1,
            Some('{') if depth == 0 => {
                let close = matching_close(code, i, '{', '}')?;
                return Some((start_line, code[close].line));
            }
            Some(';') if depth == 0 => return Some((start_line, tok.line)),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Index of the token closing the delimiter opened at `open_idx`.
fn matching_close(code: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i32;
    for (k, tok) in code.iter().enumerate().skip(open_idx) {
        if tok.is_punct(open) {
            depth += 1;
        } else if tok.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Names of every rule, in report order. The token-level rules run
/// per-file from [`run_rules`]; `pii-taint`, `lock-order` and
/// `determinism-flow` are workspace-level dataflow rules (see the
/// `taint`, `lockorder` and `detflow` modules).
pub const RULE_NAMES: [&str; 7] = [
    "panic-hygiene",
    "pii-taint",
    "determinism",
    "determinism-flow",
    "lock-discipline",
    "lock-order",
    "unsafe-audit",
];

/// Run every token-level rule over one prepared file. (`_cfg` is kept
/// for signature stability; the token rules are currently config-free.)
pub fn run_rules(prep: &Prepared<'_>, _cfg: &Config) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    panic_hygiene(prep, &mut out);
    determinism(prep, &mut out);
    lock_discipline(prep, &mut out);
    unsafe_audit(prep, &mut out);
    out.sort_by_key(|d| (d.line, d.col, d.rule));
    out
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// `panic-hygiene`: no `unwrap`/`expect`/`panic!`-family calls in library
/// code of the `dox-*` crates.
fn panic_hygiene(prep: &Prepared<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "panic-hygiene";
    if prep.input.class != FileClass::Library || prep.input.crate_name.is_none() {
        return;
    }
    let code = &prep.code;
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || prep.skip(tok.line, RULE) {
            continue;
        }
        let prev_dot = i > 0 && code[i - 1].is_punct('.');
        let next_paren = code.get(i + 1).is_some_and(|t| t.is_punct('('));
        let next_bang = code.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if prev_dot && next_paren && (tok.text == "unwrap" || tok.text == "expect") {
            out.push(Diagnostic::new(
                &prep.input.rel,
                tok.line,
                tok.col,
                RULE,
                format!(
                    "`.{}()` in library code — return a typed error instead, \
                     or justify with `// dox-lint:allow(panic-hygiene) <why infallible>`",
                    tok.text
                ),
            ));
        } else if next_bang && PANIC_MACROS.contains(&tok.text.as_str()) {
            // `panic!` in a `#[should_panic]`-style doc? Library code still
            // must not abort: documented invariant panics use `assert!`.
            out.push(Diagnostic::new(
                &prep.input.rel,
                tok.line,
                tok.col,
                RULE,
                format!(
                    "`{}!` in library code — return a typed error instead, \
                     or justify with `// dox-lint:allow(panic-hygiene) <reason>`",
                    tok.text
                ),
            ));
        }
    }
}

/// Index of the token closing the group opened at `open` (any of
/// `(`/`[`/`{`); `None` when `open` is not an opening delimiter.
#[allow(dead_code)]
fn group_end(code: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match code.get(open)?.punct()? {
        '(' => ('(', ')'),
        '[' => ('[', ']'),
        '{' => ('{', '}'),
        _ => return None,
    };
    matching_close(code, open, o, c)
}

/// Extract the captured identifiers from a format string literal:
/// `"x {name} {count:>3}"` yields `name`, `count`. `{{` escapes are
/// skipped, positional/empty captures (`{}`, `{0}`) yield nothing.
pub(crate) fn inline_format_args(lexeme: &str) -> Vec<String> {
    let mut names = Vec::new();
    let chars: Vec<char> = lexeme.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i] == '{' {
            if chars.get(i + 1) == Some(&'{') {
                i += 2;
                continue;
            }
            let mut name = String::new();
            let mut j = i + 1;
            while j < chars.len() && chars[j] != '}' && chars[j] != ':' {
                name.push(chars[j]);
                j += 1;
            }
            let is_ident = !name.is_empty()
                && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                && !name.chars().next().is_some_and(|c| c.is_ascii_digit());
            if is_ident {
                names.push(name);
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    names
}

/// `determinism`: wall-clock/OS-entropy calls outside `crates/obs`.
/// (Unordered-container flow into output is the `determinism-flow`
/// dataflow rule's job — the old path-list `HashMap` ban is retired.)
fn determinism(prep: &Prepared<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "determinism";
    let code = &prep.code;
    let is_library = prep.input.class == FileClass::Library;
    let in_obs = prep.input.crate_name.as_deref() == Some("obs");
    if !is_library || in_obs {
        return;
    }
    for (i, tok) in code.iter().enumerate() {
        if tok.kind != TokenKind::Ident || prep.skip(tok.line, RULE) {
            continue;
        }
        let path_now = (tok.text == "Instant" || tok.text == "SystemTime")
            && code.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && code.get(i + 3).is_some_and(|t| t.is_ident("now"));
        let entropy = tok.text == "thread_rng" || tok.text == "from_entropy";
        if path_now || entropy {
            out.push(Diagnostic::new(
                &prep.input.rel,
                tok.line,
                tok.col,
                RULE,
                format!(
                    "`{}` is nondeterministic — reports must be pure functions of \
                     (config, seed); timing-only spans need \
                     `// dox-lint:allow(determinism) <reason>`",
                    if path_now {
                        format!("{}::now", tok.text)
                    } else {
                        tok.text.clone()
                    }
                ),
            ));
        }
    }
}

const GUARD_METHODS: [&str; 3] = ["lock", "read", "write"];

/// `lock-discipline`: a lock guard bound to `_` (released immediately —
/// almost always a bug), and re-locking a mutex that already has a live
/// named guard in the same scope (self-deadlock with `std::sync::Mutex`).
fn lock_discipline(prep: &Prepared<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "lock-discipline";
    if !matches!(prep.input.class, FileClass::Library | FileClass::Bin) {
        return;
    }
    let code = &prep.code;
    // (brace_depth, receiver, guard_name) for live named guards.
    let mut guards: Vec<(i32, String, String)> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;
    while i < code.len() {
        let tok = &code[i];
        match tok.punct() {
            Some('{') => {
                depth += 1;
                i += 1;
                continue;
            }
            Some('}') => {
                guards.retain(|&(d, _, _)| d < depth);
                depth -= 1;
                i += 1;
                continue;
            }
            _ => {}
        }
        // `drop(name)` releases a guard early.
        if tok.is_ident("drop") && code.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let (Some(arg), Some(close)) = (code.get(i + 2), code.get(i + 3)) {
                if arg.kind == TokenKind::Ident && close.is_punct(')') {
                    guards.retain(|(_, _, name)| name != &arg.text);
                }
            }
        }
        // `let _ = …;` whose initializer takes a guard.
        if tok.is_ident("let") && code.get(i + 1).is_some_and(|t| t.is_ident("_")) {
            if let Some(semi) = stmt_end(code, i + 2) {
                if let Some(m) = find_guard_call(code, i + 2, semi) {
                    if !prep.skip(code[m].line, RULE) {
                        out.push(Diagnostic::new(
                            &prep.input.rel,
                            tok.line,
                            tok.col,
                            RULE,
                            format!(
                                "lock guard from `.{}()` bound to `_` is dropped \
                                 immediately — bind it to a name (or drop the call)",
                                code[m].text
                            ),
                        ));
                    }
                }
                i = semi + 1;
                continue;
            }
        }
        // Any `.lock()`-family call: re-lock check, then guard recording.
        let is_guard_call = tok.kind == TokenKind::Ident
            && GUARD_METHODS.contains(&tok.text.as_str())
            && i > 0
            && code[i - 1].is_punct('.')
            && code.get(i + 1).is_some_and(|t| t.is_punct('('))
            && code.get(i + 2).is_some_and(|t| t.is_punct(')'));
        if is_guard_call {
            let recv = receiver_of(code, i - 1);
            if !recv.is_empty() && !prep.skip(tok.line, RULE) {
                if let Some((_, _, name)) = guards.iter().find(|(_, r, _)| r == &recv) {
                    out.push(Diagnostic::new(
                        &prep.input.rel,
                        tok.line,
                        tok.col,
                        RULE,
                        format!(
                            "`{recv}` is locked again while guard `{name}` from the same \
                             mutex is still live in this scope — this deadlocks \
                             std::sync::Mutex (drop the first guard, or restructure)"
                        ),
                    ));
                }
            }
            // Record `let NAME = recv.lock()…` bindings.
            if let Some((name_tok, let_idx)) = binding_name(code, i) {
                if !recv.is_empty() && code[let_idx].line == tok.line {
                    guards.push((depth, recv, name_tok));
                }
            }
        }
        i += 1;
    }
}

/// Index of the `;` ending the statement starting at `from` (top-level
/// with respect to every delimiter).
fn stmt_end(code: &[Token], from: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, tok) in code.iter().enumerate().skip(from) {
        match tok.punct() {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            Some(';') if depth == 0 => return Some(k),
            _ => {}
        }
    }
    None
}

/// First `.lock()`/`.read()`/`.write()` in `code[from..to]`.
fn find_guard_call(code: &[Token], from: usize, to: usize) -> Option<usize> {
    (from..to).find(|&k| {
        code[k].kind == TokenKind::Ident
            && GUARD_METHODS.contains(&code[k].text.as_str())
            && k > 0
            && code[k - 1].is_punct('.')
            && code.get(k + 1).is_some_and(|t| t.is_punct('('))
            && code.get(k + 2).is_some_and(|t| t.is_punct(')'))
    })
}

/// The dotted receiver chain ending at the `.` at `dot_idx`:
/// `self.state.lock()` → `"self.state"`. Walks back over idents, `.`,
/// and `::`.
fn receiver_of(code: &[Token], dot_idx: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut k = dot_idx;
    while k > 0 {
        let prev = &code[k - 1];
        match prev.kind {
            TokenKind::Ident | TokenKind::Number => parts.push(&prev.text),
            TokenKind::Punct if prev.is_punct('.') || prev.is_punct(':') => parts.push(&prev.text),
            _ => break,
        }
        k -= 1;
    }
    parts.reverse();
    parts.concat()
}

/// For a guard call at `call_idx`, the `let` binding name when the
/// statement has the shape `let NAME = …`; returns `(name, let_index)`.
fn binding_name(code: &[Token], call_idx: usize) -> Option<(String, usize)> {
    // Walk back to the statement start: the nearest `;`, `{` or `}`.
    let mut k = call_idx;
    while k > 0 {
        let t = &code[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        k -= 1;
    }
    let let_idx = k;
    if !code.get(let_idx).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut name_idx = let_idx + 1;
    if code.get(name_idx).is_some_and(|t| t.is_ident("mut")) {
        name_idx += 1;
    }
    let name = code.get(name_idx)?;
    if name.kind == TokenKind::Ident && name.text != "_" {
        Some((name.text.clone(), let_idx))
    } else {
        None
    }
}

/// `unsafe-audit`: no `unsafe` anywhere outside `vendor/`, and every
/// `dox-*` crate root must carry `#![forbid(unsafe_code)]`.
fn unsafe_audit(prep: &Prepared<'_>, out: &mut Vec<Diagnostic>) {
    const RULE: &str = "unsafe-audit";
    for tok in &prep.code {
        if tok.is_ident("unsafe") && !prep.allowed(tok.line, RULE) {
            out.push(Diagnostic::new(
                &prep.input.rel,
                tok.line,
                tok.col,
                RULE,
                "`unsafe` outside vendor/ — this workspace forbids unsafe code",
            ));
        }
    }
    let is_crate_root =
        prep.input.rel.starts_with("crates/") && prep.input.rel.ends_with("/src/lib.rs");
    if is_crate_root {
        let has_forbid = prep.code.windows(5).any(|w| {
            w[0].is_ident("forbid")
                && w[1].is_punct('(')
                && w[2].is_ident("unsafe_code")
                && w[3].is_punct(')')
                && w[4].is_punct(']')
        });
        if !has_forbid {
            out.push(Diagnostic::new(
                &prep.input.rel,
                1,
                1,
                RULE,
                "crate root is missing `#![forbid(unsafe_code)]`",
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_input(src: &str) -> FileInput {
        FileInput {
            rel: "crates/engine/src/x.rs".into(),
            class: FileClass::Library,
            crate_name: Some("engine".into()),
            text: src.into(),
        }
    }

    fn run(src: &str) -> Vec<Diagnostic> {
        let input = lib_input(src);
        let prep = Prepared::new(&input);
        run_rules(&prep, &Config::default())
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn g() { y.unwrap(); } }\n";
        let diags = run(src);
        let hygiene: Vec<_> = diags.iter().filter(|d| d.rule == "panic-hygiene").collect();
        assert_eq!(hygiene.len(), 1, "{diags:?}");
        assert_eq!(hygiene[0].line, 1);
    }

    #[test]
    fn allow_comment_suppresses_same_and_next_line() {
        let same = "fn f() { x.unwrap(); } // dox-lint:allow(panic-hygiene) infallible\n";
        assert!(run(same).iter().all(|d| d.rule != "panic-hygiene"));
        let above = "// dox-lint:allow(panic-hygiene) infallible\nfn f() { x.unwrap(); }\n";
        assert!(run(above).iter().all(|d| d.rule != "panic-hygiene"));
        let wrong_rule = "fn f() { x.unwrap(); } // dox-lint:allow(determinism)\n";
        assert!(run(wrong_rule).iter().any(|d| d.rule == "panic-hygiene"));
    }

    #[test]
    fn unwrap_in_string_not_flagged() {
        let src = "fn f() { let s = \"please .unwrap() me\"; }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn instant_now_flagged_in_library_not_obs() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(run(src).iter().any(|d| d.rule == "determinism"));
        let obs = FileInput {
            rel: "crates/obs/src/span.rs".into(),
            class: FileClass::Library,
            crate_name: Some("obs".into()),
            text: src.into(),
        };
        let prep = Prepared::new(&obs);
        assert!(run_rules(&prep, &Config::default())
            .iter()
            .all(|d| d.rule != "determinism"));
    }

    #[test]
    fn hashmap_alone_is_not_a_token_finding() {
        // Merely *using* a HashMap is fine; only its iteration order
        // reaching serialized output is a problem, and that is the
        // `determinism-flow` dataflow rule's job now.
        let src = "use std::collections::HashMap;\n";
        assert!(run(src).is_empty(), "{:?}", run(src));
    }

    #[test]
    fn wildcard_guard_flagged() {
        let src = "fn f(&self) { let _ = self.state.lock(); }\n";
        assert!(run(src).iter().any(|d| d.rule == "lock-discipline"));
    }

    #[test]
    fn relock_same_scope_flagged_but_drop_clears() {
        let relock = "fn f(&self) { let a = self.m.lock(); let b = self.m.lock(); }\n";
        assert!(run(relock).iter().any(|d| d.rule == "lock-discipline"));
        let dropped = "fn f(&self) { let a = self.m.lock(); drop(a); let b = self.m.lock(); }\n";
        assert!(
            run(dropped).iter().all(|d| d.rule != "lock-discipline"),
            "{:?}",
            run(dropped)
        );
        let sibling = "fn f(&self) { { let a = self.m.lock(); } { let b = self.m.lock(); } }\n";
        assert!(run(sibling).iter().all(|d| d.rule != "lock-discipline"));
    }

    #[test]
    fn unsafe_flagged_everywhere() {
        let input = FileInput {
            rel: "tests/x.rs".into(),
            class: FileClass::Test,
            crate_name: None,
            text: "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n".into(),
        };
        let prep = Prepared::new(&input);
        assert!(run_rules(&prep, &Config::default())
            .iter()
            .any(|d| d.rule == "unsafe-audit"));
    }

    #[test]
    fn crate_root_without_forbid_flagged() {
        let input = FileInput {
            rel: "crates/geo/src/lib.rs".into(),
            class: FileClass::Library,
            crate_name: Some("geo".into()),
            text: "//! docs\npub mod m;\n".into(),
        };
        let prep = Prepared::new(&input);
        let diags = run_rules(&prep, &Config::default());
        assert!(diags
            .iter()
            .any(|d| d.rule == "unsafe-audit" && d.message.contains("forbid")));
        let ok = FileInput {
            text: "#![forbid(unsafe_code)]\npub mod m;\n".into(),
            ..input
        };
        let prep = Prepared::new(&ok);
        assert!(run_rules(&prep, &Config::default()).is_empty());
    }

    #[test]
    fn inline_format_args_parser() {
        assert_eq!(
            inline_format_args("\"a {body} b {count:>3} {{esc}} {} {0}\""),
            vec!["body".to_string(), "count".to_string()]
        );
    }
}
