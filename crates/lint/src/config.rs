//! `lint.toml`: rule configuration and the checked-in baseline.
//!
//! The file is read with a small TOML-subset reader (sections, string /
//! integer / boolean values, and string arrays that may span lines) so the
//! analyzer stays dependency-free. Everything has a default — a missing
//! `lint.toml` means "strict, empty baseline".
//!
//! ```toml
//! [pii-taint]
//! # "Type.field" entries are typed sources; bare names are the fallback
//! # used only when the receiver type cannot be resolved.
//! source_fields = ["SynthDoc.body", "OsnRef.handle", "body", "ssn"]
//! sink_fns = ["Response::ok"]
//! sink_methods = ["emit"]
//! allow_crates = ["synth"]
//!
//! [lock-order]
//! blocking_methods = ["write_all", "accept"]
//!
//! [baseline]
//! entries = [
//!     # "<file>: <rule>: <count>" — exactly <count> findings of <rule>
//!     # in <file> are tolerated; more is a failure, fewer is stale.
//!     "crates/geo/src/alloc.rs: panic-hygiene: 2",
//! ]
//! ```
//!
//! Migration note (dox-lint v2): the `[pii-sink]` section (`deny`
//! identifier fragments) and `[determinism] ordered_paths` are gone —
//! superseded by the `pii-taint` and `determinism-flow` dataflow rules,
//! which follow values instead of matching names/paths. Old keys are
//! ignored if present (the reader skips unknown keys), but should be
//! deleted.

use std::collections::BTreeMap;

/// One tolerated pocket of findings: exactly `count` findings of `rule`
/// in `file`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Number of findings grandfathered in.
    pub count: usize,
}

/// Parsed configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// PII taint sources: `Type.field` entries match a field read on a
    /// resolved receiver type; bare field names are the conservative
    /// fallback when the receiver type is unknown.
    pub taint_source_fields: Vec<String>,
    /// Free/associated functions whose return value is PII-tainted.
    pub taint_source_fns: Vec<String>,
    /// `Type::fn` calls that are log/wire sinks.
    pub taint_sink_fns: Vec<String>,
    /// Method names that are log/wire sinks on any receiver.
    pub taint_sink_methods: Vec<String>,
    /// Crate directory names (under `crates/`) exempt from `pii-taint` —
    /// the synthetic-corpus generator whose whole job is fabricating
    /// PII-shaped text.
    pub taint_allow_crates: Vec<String>,
    /// Method names that block (I/O, accept, join) for `lock-order`'s
    /// "guard held across blocking call" check.
    pub lock_blocking_methods: Vec<String>,
    /// Serialization sink functions for `determinism-flow`
    /// (`module::fn` or bare fn names).
    pub detflow_sink_fns: Vec<String>,
    /// Serialization sink methods for `determinism-flow`.
    pub detflow_sink_methods: Vec<String>,
    /// Grandfathered findings.
    pub baseline: Vec<BaselineEntry>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            taint_source_fields: [
                // Typed sources: the synthetic data model's content and
                // ground-truth fields...
                "CollectedDoc.body",
                "SynthDoc.body",
                "SynthDoc.truth",
                "OsnRef.handle",
                "Persona.first_name",
                "Persona.last_name",
                "Persona.dob",
                "Persona.address",
                // ...and every extractor output field.
                "ExtractedFields.first_name",
                "ExtractedFields.last_name",
                "ExtractedFields.dob",
                "ExtractedFields.phones",
                "ExtractedFields.emails",
                "ExtractedFields.ips",
                "ExtractedFields.address",
                "ExtractedFields.zip",
                "ExtractedFields.ssns",
                // Bare fallbacks, used only when the receiver type is
                // unknown to the symbol model.
                "body",
                "truth",
                "handle",
                "ssn",
                "ssns",
                "address",
                "phone",
                "phones",
                "email",
                "emails",
                "dob",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            taint_source_fns: Vec::new(),
            taint_sink_fns: ["Response::ok", "Response::json", "Response::error"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            taint_sink_methods: ["emit", "hop"].iter().map(|s| s.to_string()).collect(),
            taint_allow_crates: vec!["synth".to_string()],
            lock_blocking_methods: [
                "write_all",
                "read_exact",
                "read_to_string",
                "read_to_end",
                "read_line",
                "flush",
                "accept",
                "connect",
                "join",
                "recv",
                "recv_timeout",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            detflow_sink_fns: [
                "serde_json::to_string",
                "serde_json::to_string_pretty",
                "serde_json::to_vec",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            detflow_sink_methods: vec!["to_value".to_string()],
            baseline: Vec::new(),
        }
    }
}

impl Config {
    /// Parse a `lint.toml` document. Unknown sections and keys are
    /// ignored (forward compatibility); malformed lines are errors.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut config = Config::default();
        for (section, key, value) in parse_toml_subset(text)? {
            match (section.as_str(), key.as_str()) {
                ("pii-taint", "source_fields") => {
                    config.taint_source_fields = value.into_strings()?;
                }
                ("pii-taint", "source_fns") => {
                    config.taint_source_fns = value.into_strings()?;
                }
                ("pii-taint", "sink_fns") => {
                    config.taint_sink_fns = value.into_strings()?;
                }
                ("pii-taint", "sink_methods") => {
                    config.taint_sink_methods = value.into_strings()?;
                }
                ("pii-taint", "allow_crates") => {
                    config.taint_allow_crates = value.into_strings()?;
                }
                ("lock-order", "blocking_methods") => {
                    config.lock_blocking_methods = value.into_strings()?;
                }
                ("determinism-flow", "sink_fns") => {
                    config.detflow_sink_fns = value.into_strings()?;
                }
                ("determinism-flow", "sink_methods") => {
                    config.detflow_sink_methods = value.into_strings()?;
                }
                ("baseline", "entries") => {
                    config.baseline = value
                        .into_strings()?
                        .iter()
                        .map(|s| parse_baseline_entry(s))
                        .collect::<Result<_, _>>()?;
                }
                _ => {}
            }
        }
        Ok(config)
    }

    /// Baseline allowances grouped by `(file, rule)`.
    pub fn baseline_map(&self) -> BTreeMap<(String, String), usize> {
        let mut map = BTreeMap::new();
        for e in &self.baseline {
            *map.entry((e.file.clone(), e.rule.clone())).or_insert(0) += e.count;
        }
        map
    }
}

/// `"<file>: <rule>: <count>"`.
fn parse_baseline_entry(s: &str) -> Result<BaselineEntry, String> {
    let parts: Vec<&str> = s.rsplitn(3, ':').collect();
    if parts.len() != 3 {
        return Err(format!(
            "baseline entry {s:?} is not \"<file>: <rule>: <count>\""
        ));
    }
    let count = parts[0]
        .trim()
        .parse::<usize>()
        .map_err(|_| format!("baseline entry {s:?}: count {:?} is not a number", parts[0]))?;
    Ok(BaselineEntry {
        file: parts[2].trim().to_string(),
        rule: parts[1].trim().to_string(),
        count,
    })
}

/// A parsed TOML-subset value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Quoted string.
    Str(String),
    /// Integer literal.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// Array of quoted strings.
    StrArray(Vec<String>),
}

impl Value {
    fn into_strings(self) -> Result<Vec<String>, String> {
        match self {
            Value::StrArray(v) => Ok(v),
            Value::Str(s) => Ok(vec![s]),
            other => Err(format!("expected a string array, found {other:?}")),
        }
    }
}

/// Strip a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escape => {
                escape = true;
                continue;
            }
            '"' if !escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escape = false;
    }
    line
}

/// Parse into `(section, key, value)` triples in document order.
fn parse_toml_subset(text: &str) -> Result<Vec<(String, String, Value)>, String> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((n, raw)) = lines.next() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {}: unterminated section header", n + 1))?;
            section = name.trim().trim_matches('"').to_string();
            continue;
        }
        let (key, mut rhs) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().trim_matches('"').to_string(), v.trim().to_string()))
            .ok_or_else(|| format!("line {}: expected `key = value`", n + 1))?;
        // Multiline arrays: keep consuming lines until brackets balance.
        if rhs.starts_with('[') {
            while !array_closed(&rhs) {
                let (_, next) = lines
                    .next()
                    .ok_or_else(|| format!("line {}: unterminated array", n + 1))?;
                rhs.push(' ');
                rhs.push_str(strip_comment(next).trim());
            }
        }
        out.push((section.clone(), key, parse_value(&rhs, n + 1)?));
    }
    Ok(out)
}

/// Whether a (comment-stripped, concatenated) array literal is closed.
fn array_closed(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escape => {
                escape = true;
                continue;
            }
            '"' if !escape => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escape = false;
    }
    depth == 0
}

fn parse_value(s: &str, line: usize) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or_else(|| format!("line {line}: unterminated array"))?;
        let mut items = Vec::new();
        for item in split_top_level(body) {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            match parse_value(item, line)? {
                Value::Str(v) => items.push(v),
                other => return Err(format!("line {line}: non-string array item {other:?}")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(body) = s.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("line {line}: unterminated string"))?;
        return Ok(Value::Str(unescape(body)));
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("line {line}: cannot parse value {s:?}"))
}

/// Split an array body on top-level commas (commas inside strings don't
/// count).
fn split_top_level(s: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut cur = String::new();
    let mut in_str = false;
    let mut escape = false;
    for c in s.chars() {
        match c {
            '\\' if in_str && !escape => {
                escape = true;
                cur.push(c);
                continue;
            }
            '"' if !escape => {
                in_str = !in_str;
                cur.push(c);
            }
            ',' if !in_str => {
                items.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
        escape = false;
    }
    if !cur.trim().is_empty() {
        items.push(cur);
    }
    items
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('r') => out.push('\r'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_without_file() {
        let c = Config::default();
        assert!(c.taint_source_fields.iter().any(|d| d == "SynthDoc.body"));
        assert!(c.taint_source_fields.iter().any(|d| d == "ssn"));
        assert!(c.taint_sink_methods.iter().any(|d| d == "emit"));
        assert!(c.lock_blocking_methods.iter().any(|d| d == "write_all"));
        assert!(c.baseline.is_empty());
    }

    #[test]
    fn parses_sections_and_arrays() {
        let c = Config::parse(
            r#"
# comment
[pii-taint]
source_fields = ["SynthDoc.body", "ssn"]  # inline comment
sink_methods = ["emit"]
allow_crates = ["synth", "demo"]

[lock-order]
blocking_methods = ["accept"]

[determinism-flow]
sink_fns = [
    "serde_json::to_string",
    "to_value",
]

[baseline]
entries = [
    "crates/geo/src/alloc.rs: panic-hygiene: 2",
]
"#,
        )
        .expect("parses");
        assert_eq!(c.taint_source_fields, vec!["SynthDoc.body", "ssn"]);
        assert_eq!(c.taint_sink_methods, vec!["emit"]);
        assert_eq!(c.taint_allow_crates, vec!["synth", "demo"]);
        assert_eq!(c.lock_blocking_methods, vec!["accept"]);
        assert_eq!(c.detflow_sink_fns.len(), 2);
        assert_eq!(
            c.baseline,
            vec![BaselineEntry {
                file: "crates/geo/src/alloc.rs".into(),
                rule: "panic-hygiene".into(),
                count: 2
            }]
        );
    }

    #[test]
    fn retired_v1_keys_are_ignored() {
        // `[pii-sink] deny` and `[determinism] ordered_paths` no longer
        // exist; old configs still parse (unknown keys are skipped) and
        // leave the defaults intact.
        let c = Config::parse(
            "[pii-sink]\ndeny = [\"body\"]\n[determinism]\nordered_paths = [\"x.rs\"]\n",
        )
        .expect("parses");
        assert!(c.taint_source_fields.iter().any(|d| d == "SynthDoc.body"));
    }

    #[test]
    fn baseline_entry_with_windows_free_paths() {
        // rsplitn keeps any colon inside the path out of rule/count.
        let e = parse_baseline_entry("a:b/c.rs: determinism: 3").expect("parses");
        assert_eq!(e.file, "a:b/c.rs");
        assert_eq!(e.rule, "determinism");
        assert_eq!(e.count, 3);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let c = Config::parse("[pii-taint]\nsource_fields = [\"a#b\"]\n").expect("parses");
        assert_eq!(c.taint_source_fields, vec!["a#b"]);
    }

    #[test]
    fn malformed_lines_are_errors() {
        assert!(Config::parse("[open\n").is_err());
        assert!(Config::parse("key value\n").is_err());
        assert!(Config::parse("[baseline]\nentries = [\"no-count\"]").is_err());
        assert!(Config::parse("[pii-taint]\nsource_fields = [\n\"open\"").is_err());
    }

    #[test]
    fn baseline_map_merges_duplicate_keys() {
        let c = Config::parse("[baseline]\nentries = [\"f.rs: r: 1\", \"f.rs: r: 2\"]\n")
            .expect("parses");
        assert_eq!(c.baseline_map().get(&("f.rs".into(), "r".into())), Some(&3));
    }
}
