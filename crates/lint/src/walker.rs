//! Workspace file discovery: every non-vendor `.rs` file, classified by
//! path convention.
//!
//! Skipped entirely: `target/`, `vendor/` (third-party stand-ins are not
//! ours to police), hidden directories, and `fixtures/` directories under
//! `tests/` (lint-rule fixtures *deliberately* contain violations).

use crate::rules::{FileClass, FileInput};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never descended into.
const SKIP_DIRS: [&str; 3] = ["target", "vendor", "fixtures"];

/// Recursively collect every checkable `.rs` file under `root`, sorted by
/// workspace-relative path for deterministic output.
pub fn collect_files(root: &Path) -> io::Result<Vec<FileInput>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut out = Vec::new();
    for path in paths {
        let rel = relative(root, &path);
        let text = fs::read_to_string(&path)?;
        out.push(FileInput {
            class: classify(&rel),
            crate_name: crate_name(&rel),
            rel,
            text,
        });
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Classify a workspace-relative path.
pub fn classify(rel: &str) -> FileClass {
    let segs: Vec<&str> = rel.split('/').collect();
    if segs.contains(&"tests") {
        FileClass::Test
    } else if segs.contains(&"benches") {
        FileClass::Bench
    } else if segs.contains(&"examples") {
        FileClass::Example
    } else if rel.contains("/src/bin/") || rel.ends_with("src/main.rs") {
        FileClass::Bin
    } else {
        FileClass::Library
    }
}

/// For `crates/<name>/…`, the crate directory name.
pub fn crate_name(rel: &str) -> Option<String> {
    let rest = rel.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name.to_string())
}

/// Walk up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_path() {
        assert_eq!(classify("crates/engine/src/queue.rs"), FileClass::Library);
        assert_eq!(classify("crates/bench/src/bin/repro.rs"), FileClass::Bin);
        assert_eq!(classify("src/main.rs"), FileClass::Bin);
        assert_eq!(classify("tests/engine_determinism.rs"), FileClass::Test);
        assert_eq!(classify("crates/lint/tests/fixtures.rs"), FileClass::Test);
        assert_eq!(classify("examples/quickstart.rs"), FileClass::Example);
        assert_eq!(classify("crates/bench/benches/x.rs"), FileClass::Bench);
        assert_eq!(classify("src/lib.rs"), FileClass::Library);
    }

    #[test]
    fn crate_names() {
        assert_eq!(
            crate_name("crates/engine/src/queue.rs"),
            Some("engine".into())
        );
        assert_eq!(crate_name("src/lib.rs"), None);
        assert_eq!(crate_name("crates/lib.rs"), None);
    }

    #[test]
    fn workspace_walk_finds_this_file_and_skips_vendor() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root above crates/lint");
        let files = collect_files(&root).expect("workspace walks");
        assert!(files.iter().any(|f| f.rel == "crates/lint/src/walker.rs"));
        assert!(files.iter().all(|f| !f.rel.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.rel.contains("/fixtures/")));
        assert!(files.iter().all(|f| !f.rel.starts_with("target/")));
    }
}
