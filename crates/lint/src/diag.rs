//! Diagnostics: what every rule emits and how the driver renders it.
//!
//! The text format is rustc-style — `file:line:col: rule: message` — so
//! editors and CI annotators that already understand compiler output can
//! jump to findings. `--format json` renders the same list as a JSON
//! array (hand-serialized: the analyzer is dependency-free by design).

use std::fmt;

/// One finding at an exact source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (characters).
    pub col: u32,
    /// Rule name, e.g. `panic-hygiene`.
    pub rule: &'static str,
    /// Human-readable explanation with the offending construct named.
    pub message: String,
}

impl Diagnostic {
    /// Construct a finding.
    pub fn new(
        file: impl Into<String>,
        line: u32,
        col: u32,
        rule: &'static str,
        message: impl Into<String>,
    ) -> Self {
        Self {
            file: file.into(),
            line,
            col,
            rule,
            message: message.into(),
        }
    }

    /// Sort key: file, then position, then rule.
    pub fn sort_key(&self) -> (String, u32, u32, &'static str) {
        (self.file.clone(), self.line, self.col, self.rule)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a whole run as a JSON object — live findings, baselined
/// findings, baseline errors and the file count — for `--format json`
/// consumers (the check.sh gate writes this to `lint_findings.json`).
pub fn report_to_json(report: &crate::RunReport) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "\"files_checked\": {},\n\"findings\": ",
        report.files_checked
    ));
    out.push_str(&to_json(&report.findings));
    out.push_str(",\n\"baselined\": ");
    out.push_str(&to_json(&report.baselined));
    out.push_str(",\n\"baseline_errors\": [");
    for (i, e) in report.baseline_errors.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\"", json_escape(e)));
    }
    out.push_str("]\n}");
    out
}

/// Render diagnostics as a JSON array (stable field order).
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[\n");
    for (i, d) in diags.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}{}\n",
            json_escape(&d.file),
            d.line,
            d.col,
            json_escape(d.rule),
            json_escape(&d.message),
            if i + 1 == diags.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_style() {
        let d = Diagnostic::new("crates/engine/src/queue.rs", 65, 30, "panic-hygiene", "x");
        assert_eq!(
            d.to_string(),
            "crates/engine/src/queue.rs:65:30: panic-hygiene: x"
        );
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new("a \"b\".rs", 1, 2, "pii-sink", "line\nbreak\ttab");
        let j = to_json(&[d]);
        assert!(j.contains("a \\\"b\\\".rs"), "{j}");
        assert!(j.contains("line\\nbreak\\ttab"), "{j}");
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn empty_list_is_valid_json() {
        assert_eq!(to_json(&[]), "[\n]");
    }

    #[test]
    fn report_object_has_all_sections() {
        let report = crate::RunReport {
            findings: vec![Diagnostic::new("a.rs", 1, 2, "pii-taint", "m")],
            baselined: vec![Diagnostic::new("b.rs", 3, 4, "lock-order", "n")],
            baseline_errors: vec!["stale \"entry\"".to_string()],
            files_checked: 7,
        };
        let j = report_to_json(&report);
        assert!(j.contains("\"files_checked\": 7"), "{j}");
        assert!(j.contains("\"findings\""), "{j}");
        assert!(j.contains("pii-taint"), "{j}");
        assert!(j.contains("\"baselined\""), "{j}");
        assert!(j.contains("lock-order"), "{j}");
        assert!(j.contains("stale \\\"entry\\\""), "{j}");
    }
}
