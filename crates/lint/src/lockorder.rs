//! `lock-order`: workspace-wide lock-acquisition-order analysis.
//!
//! Every engine/obs/serve subsystem guards shared state with
//! `std::sync::Mutex`/`RwLock`. Two hazards survive code review
//! routinely and deadlock only under load:
//!
//! 1. **Order cycles** — thread 1 acquires `A` then `B`, thread 2
//!    acquires `B` then `A`. The rule identifies each lock as
//!    `Type.field` (via the symbol model; textual fallback when the
//!    receiver type is unknown), records every "acquired `B` while
//!    holding `A`" edge — including acquisitions inside callees, via
//!    per-function summaries — and fails when the resulting directed
//!    graph has a cycle.
//! 2. **Guards held across blocking calls** — holding a guard over
//!    socket/file I/O, `JoinHandle::join`, channel `send`/`recv`, or a
//!    `Condvar` wait serializes the system on that lock (and can
//!    deadlock outright when the blocked peer needs it).
//!    `Condvar::wait(g)` atomically releases its *own* guard, so only
//!    *other* held guards are flagged there.
//!
//! Guard liveness follows `let` bindings: a guard lives until `drop`,
//! shadowing, or the end of its block; an unbound acquisition
//! (`x.lock().unwrap().push(…)`) is a statement-scoped temporary.
//! Closure bodies are analyzed with an empty held set — they may run on
//! another thread, so the definition site's guards are not "held" there.
//! Self-edges (re-acquiring the same lock) are `lock-discipline`'s job
//! and skipped here.

use crate::callgraph::{FnId, Workspace};
use crate::config::Config;
use crate::diag::Diagnostic;
use crate::parser::{Block, Expr, Stmt};
use crate::rules::Suppressions;
use crate::symbols::TypeEnv;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The rule name.
pub const RULE: &str = "lock-order";

/// Methods that pass a guard through unchanged.
const GUARD_PASSTHROUGH: [&str; 5] = ["unwrap", "expect", "unwrap_or_else", "into_inner", "as_mut"];

/// `Condvar` wait methods: arg 0 (or the receiver's pair) is released.
const WAIT_METHODS: [&str; 3] = ["wait", "wait_timeout", "wait_while"];

/// Per-function summary for the interprocedural pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Summary {
    /// Lock ids acquired anywhere inside (transitively).
    acquires: BTreeSet<String>,
    /// A blocking operation reachable inside (name, for messages).
    blocks: Option<String>,
    /// The lock id this function returns a live guard of.
    returns_guard: Option<String>,
}

/// One "acquired `to` while holding `from`" observation.
#[derive(Debug, Clone)]
struct Edge {
    from: String,
    to: String,
    file: String,
    line: u32,
    col: u32,
}

/// Run the rule over the whole workspace.
pub fn check(ws: &Workspace, cfg: &Config, sup: &Suppressions<'_>, out: &mut Vec<Diagnostic>) {
    let blocking: BTreeSet<&str> = cfg
        .lock_blocking_methods
        .iter()
        .map(String::as_str)
        .collect();
    let mut summaries = vec![Summary::default(); ws.fns.len()];
    for _ in 0..20 {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            let id = FnId(id);
            let mut cx = LockCx::new(ws, &blocking, &summaries, id);
            let summary = cx.run();
            if summary != summaries[id.0] {
                summaries[id.0] = summary;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges: Vec<Edge> = Vec::new();
    for id in 0..ws.fns.len() {
        let id = FnId(id);
        let mut cx = LockCx::new(ws, &blocking, &summaries, id);
        cx.report = true;
        cx.run();
        let rel = &ws.file_of(id).rel;
        for (line, col, message) in cx.findings {
            if !sup.allowed(rel, line, RULE) {
                out.push(Diagnostic::new(rel, line, col, RULE, message));
            }
        }
        for mut e in cx.edges {
            e.file = rel.clone();
            edges.push(e);
        }
    }
    report_cycles(&edges, sup, out);
}

/// Find order cycles in the edge set and report each offending edge
/// (once per `from → to` pair, at its first site in path order).
fn report_cycles(edges: &[Edge], sup: &Suppressions<'_>, out: &mut Vec<Diagnostic>) {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str())
            .or_default()
            .insert(e.to.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            if let Some(next) = adj.get(n) {
                for m in next {
                    if seen.insert(*m) {
                        queue.push_back(m);
                    }
                }
            }
        }
        false
    };
    let mut sites: BTreeMap<(&str, &str), &Edge> = BTreeMap::new();
    for e in edges {
        let key = (e.from.as_str(), e.to.as_str());
        let site = sites.entry(key).or_insert(e);
        if (e.file.as_str(), e.line, e.col) < (site.file.as_str(), site.line, site.col) {
            *site = e;
        }
    }
    for ((from, to), e) in sites {
        if from != to && reaches(to, from) && !sup.allowed(&e.file, e.line, RULE) {
            out.push(Diagnostic::new(
                &e.file,
                e.line,
                e.col,
                RULE,
                format!(
                    "lock-order cycle: `{to}` is acquired while `{from}` is held here, but \
                     the reverse order also occurs in the workspace — pick one global \
                     acquisition order"
                ),
            ));
        }
    }
}

/// A live guard in some scope.
#[derive(Debug, Clone)]
struct Held {
    lock: String,
    var: Option<String>,
}

/// Per-function walk context.
struct LockCx<'a> {
    ws: &'a Workspace,
    blocking: &'a BTreeSet<&'a str>,
    summaries: &'a [Summary],
    id: FnId,
    env: TypeEnv<'a>,
    /// Scope stack of live guards.
    held: Vec<Vec<Held>>,
    summary: Summary,
    report: bool,
    findings: Vec<(u32, u32, String)>,
    edges: Vec<Edge>,
}

impl<'a> LockCx<'a> {
    fn new(
        ws: &'a Workspace,
        blocking: &'a BTreeSet<&'a str>,
        summaries: &'a [Summary],
        id: FnId,
    ) -> Self {
        Self {
            ws,
            blocking,
            summaries,
            id,
            env: ws.env_for(id),
            held: vec![Vec::new()],
            summary: Summary::default(),
            report: false,
            findings: Vec::new(),
            edges: Vec::new(),
        }
    }

    fn run(&mut self) -> Summary {
        let info = &self.ws.entry(self.id).info;
        if info.def.degraded {
            return Summary::default();
        }
        let Some(body) = &info.def.body else {
            return Summary::default();
        };
        let tail = self.walk_block(body);
        self.summary.returns_guard = self.summary.returns_guard.take().or(tail);
        self.summary.clone()
    }

    fn finding(&mut self, line: u32, col: u32, message: String) {
        if self.report
            && !self
                .findings
                .iter()
                .any(|(l, c, _)| *l == line && *c == col)
        {
            self.findings.push((line, col, message));
        }
    }

    fn held_guards(&self) -> Vec<Held> {
        self.held.iter().flatten().cloned().collect()
    }

    /// Record the acquisition of `lock`: order edges against every held
    /// guard, plus the summary entry.
    fn acquire(&mut self, lock: &str, line: u32, col: u32) {
        for h in self.held_guards() {
            if h.lock != lock {
                self.edges.push(Edge {
                    from: h.lock,
                    to: lock.to_string(),
                    file: String::new(),
                    line,
                    col,
                });
            }
        }
        self.summary.acquires.insert(lock.to_string());
    }

    /// A blocking operation at `line`: flag every held guard.
    fn block_here(&mut self, what: &str, line: u32, col: u32, released: Option<&str>) {
        if self.summary.blocks.is_none() {
            self.summary.blocks = Some(what.to_string());
        }
        let held = self.held_guards();
        let held: Vec<&Held> = held
            .iter()
            .filter(|h| released.is_none_or(|r| h.var.as_deref() != Some(r)))
            .collect();
        if let Some(h) = held.first() {
            self.finding(
                line,
                col,
                format!(
                    "guard of `{}` held across blocking `{what}` — drop the guard (or move \
                     the blocking work outside the critical section) first",
                    h.lock
                ),
            );
        }
    }

    fn drop_var(&mut self, name: &str) {
        for scope in &mut self.held {
            scope.retain(|h| h.var.as_deref() != Some(name));
        }
    }

    /// Walk a block; returns the lock id if its tail expression is a
    /// guard (for `returns_guard` summaries).
    fn walk_block(&mut self, block: &Block) -> Option<String> {
        self.held.push(Vec::new());
        self.env.push();
        let mut tail = None;
        for stmt in &block.stmts {
            tail = None;
            match stmt {
                Stmt::Let {
                    bound, ty, init, ..
                } => {
                    let guard = init.as_ref().and_then(|e| self.eval(e));
                    let inferred = ty
                        .clone()
                        .or_else(|| init.as_ref().and_then(|e| self.env.type_of(e)));
                    if bound.len() == 1 {
                        self.drop_var(&bound[0]);
                        if let (Some(lock), Some(scope)) = (guard, self.held.last_mut()) {
                            scope.push(Held {
                                lock,
                                var: Some(bound[0].clone()),
                            });
                        }
                        if let Some(t) = inferred {
                            self.env.bind(&bound[0], t);
                        }
                    }
                }
                Stmt::Semi(e) => {
                    self.eval(e);
                }
                Stmt::Expr(e) => {
                    tail = self.eval(e);
                }
                Stmt::Item(_) => {}
            }
        }
        self.held.pop();
        self.env.pop();
        tail
    }

    /// Evaluate an expression; returns the lock id when the value is a
    /// live guard.
    fn eval(&mut self, expr: &Expr) -> Option<String> {
        match expr {
            Expr::Path { segs, .. } => {
                if segs.len() == 1 {
                    self.held
                        .iter()
                        .flatten()
                        .find(|h| h.var.as_deref() == Some(segs[0].as_str()))
                        .map(|h| h.lock.clone())
                } else {
                    None
                }
            }
            Expr::Lit { .. } | Expr::Opaque { .. } => None,
            Expr::Field { base, .. } => {
                self.eval(base);
                None
            }
            Expr::Unary { inner } => self.eval(inner),
            Expr::Index { base, index } => {
                self.eval(base);
                self.eval(index);
                None
            }
            Expr::Group { parts } => {
                let mut guard = None;
                for p in parts {
                    guard = self.eval(p).or(guard);
                }
                guard
            }
            Expr::Struct { fields, .. } => {
                for (_, v) in fields {
                    self.eval(v);
                }
                None
            }
            Expr::Block(b) => self.walk_block(b),
            Expr::Return { value } => {
                let guard = value.as_ref().and_then(|v| self.eval(v));
                if self.summary.returns_guard.is_none() {
                    self.summary.returns_guard = guard;
                }
                None
            }
            Expr::Assign { target, value, .. } => {
                let guard = self.eval(value);
                if let Expr::Path { segs, .. } = target.as_ref() {
                    if segs.len() == 1 {
                        self.drop_var(&segs[0]);
                        if let (Some(lock), Some(scope)) = (guard, self.held.last_mut()) {
                            scope.push(Held {
                                lock,
                                var: Some(segs[0].clone()),
                            });
                        }
                        return None;
                    }
                }
                None
            }
            Expr::If {
                cond, then, els, ..
            } => {
                self.eval(cond);
                let saved = self.held.clone();
                let mut guard = self.walk_block(then);
                self.held = saved.clone();
                if let Some(e) = els {
                    guard = self.eval(e).or(guard);
                    self.held = saved;
                }
                guard
            }
            Expr::Match { scrutinee, arms } => {
                self.eval(scrutinee);
                let saved = self.held.clone();
                let mut guard = None;
                for arm in arms {
                    if let Some(g) = &arm.guard {
                        self.eval(g);
                    }
                    guard = self.eval(&arm.body).or(guard);
                    self.held = saved.clone();
                }
                guard
            }
            Expr::For { iter, body, .. } => {
                self.eval(iter);
                self.walk_block(body);
                None
            }
            Expr::While { cond, body, .. } => {
                self.eval(cond);
                self.walk_block(body);
                None
            }
            Expr::Closure { body, .. } => {
                // The closure may run on another thread/later: analyze
                // with an empty held set, but keep its acquisitions in
                // this function's summary (conservative).
                let saved = std::mem::replace(&mut self.held, vec![Vec::new()]);
                self.eval(body);
                self.held = saved;
                None
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.eval(a);
                }
                None
            }
            Expr::Call {
                callee,
                args,
                line,
                col,
            } => self.eval_call(callee, args, *line, *col),
            Expr::MethodCall {
                recv,
                method,
                args,
                line,
                col,
                ..
            } => self.eval_method(recv, method, args, *line, *col),
        }
    }

    fn eval_call(&mut self, callee: &Expr, args: &[Expr], line: u32, col: u32) -> Option<String> {
        if let Expr::Path { segs, .. } = callee {
            // `drop(g)` / `std::mem::drop(g)` releases a guard.
            if segs.last().is_some_and(|s| s == "drop") {
                if let Some(Expr::Path { segs: var, .. }) = args.first() {
                    if var.len() == 1 {
                        self.eval(&args[0]);
                        self.drop_var(&var[0]);
                        return None;
                    }
                }
            }
            // `fs::write`/`fs::read*` block on disk I/O.
            if segs.len() >= 2
                && segs[segs.len() - 2] == "fs"
                && segs
                    .last()
                    .is_some_and(|s| s.starts_with("read") || s.starts_with("write"))
            {
                for a in args {
                    self.eval(a);
                }
                self.block_here(&format!("fs::{}", segs[segs.len() - 1]), line, col, None);
                return None;
            }
        }
        for a in args {
            self.eval(a);
        }
        let mut guard = None;
        for id in self.ws.resolve_call(callee) {
            let s = self.summaries[id.0].clone();
            self.apply_summary(&s, line, col, callee_label(callee));
            guard = guard.or(s.returns_guard);
        }
        guard
    }

    fn eval_method(
        &mut self,
        recv: &Expr,
        method: &str,
        args: &[Expr],
        line: u32,
        col: u32,
    ) -> Option<String> {
        // Condvar waits release their own guard but block on everything
        // else that is held.
        if WAIT_METHODS.contains(&method) {
            self.eval(recv);
            let released = match args.first() {
                Some(Expr::Path { segs, .. }) if segs.len() == 1 => Some(segs[0].clone()),
                _ => None,
            };
            for a in args.iter().skip(1) {
                self.eval(a);
            }
            self.block_here(
                &format!("Condvar::{method}"),
                line,
                col,
                released.as_deref(),
            );
            if let Some(var) = released {
                // The guard is returned (re-acquired) by the wait, so the
                // binding usually stays live; leave it held.
                let _ = var;
            }
            return None;
        }
        let recv_guard = self.eval(recv);
        // Guard pass-through (`.lock().unwrap()`, `.expect(…)`).
        if GUARD_PASSTHROUGH.contains(&method) {
            for a in args {
                self.eval(a);
            }
            if recv_guard.is_some() {
                return recv_guard;
            }
        } else {
            for a in args {
                self.eval(a);
            }
        }
        // Lock acquisition: `.lock()` always; `.read()`/`.write()` only
        // on a receiver the model can type as RwLock (plain `.write(…)`
        // is I/O, not a lock).
        let recv_ty = self.env.type_of(recv);
        let is_lock_recv = recv_ty.as_ref().is_some_and(is_lock_ty);
        let acquires = method == "lock" && args.is_empty()
            || (matches!(method, "read" | "write") && args.is_empty() && is_lock_recv);
        if acquires && (is_lock_recv || recv_ty.is_none()) {
            let lock = self.lock_id(recv);
            self.acquire(&lock, line, col);
            return Some(lock);
        }
        // Blocking methods (socket/file I/O, join, channel ops) — unless
        // the receiver is typed as a plain data container, where the same
        // names mean something harmless (`Path::join`, `Vec::append`,
        // `String::flush` does not exist but `fmt::Write` adapters do).
        let data_recv = recv_ty.as_ref().is_some_and(|t| {
            matches!(
                t.peeled().name.as_str(),
                "Path"
                    | "PathBuf"
                    | "String"
                    | "str"
                    | "Vec"
                    | "VecDeque"
                    | "OsString"
                    | "OsStr"
                    | "[slice]"
            )
        });
        if self.blocking.contains(method) && !data_recv {
            self.block_here(&format!(".{method}()"), line, col, None);
            return None;
        }
        // Workspace method: fold in the callee summary — but only under
        // *typed* resolution. The unknown-receiver fallback ("every
        // method with this name") is fine for taint, where a miss is a
        // leak; here it would make every `vec.push(…)` inherit
        // `Queue::push`'s Condvar wait and drown the rule in noise.
        recv_ty.as_ref()?;
        let mut guard = None;
        for id in self.ws.resolve_method(recv_ty.as_ref(), method) {
            let s = self.summaries[id.0].clone();
            self.apply_summary(&s, line, col, method);
            guard = guard.or(s.returns_guard);
        }
        guard
    }

    /// Fold a callee summary into this call site: its acquisitions form
    /// edges against our held guards, and a blocking callee is a
    /// blocking call.
    fn apply_summary(&mut self, s: &Summary, line: u32, col: u32, label: &str) {
        for lock in &s.acquires {
            self.acquire(lock, line, col);
        }
        if let Some(what) = &s.blocks {
            self.block_here(
                &format!("`{label}` (which blocks on {what})"),
                line,
                col,
                None,
            );
        }
    }

    /// The identity of the lock behind a receiver expression:
    /// `Type.field` when the model can type the field's base, else the
    /// textual receiver path qualified by the surrounding impl type.
    fn lock_id(&self, recv: &Expr) -> String {
        if let Expr::Field { base, name, .. } = recv {
            if let Some(ty) = self.env.type_of(base) {
                return format!("{}.{name}", ty.peeled().name);
            }
        }
        let rendered = render(recv);
        match &self.ws.entry(self.id).info.qual {
            Some(q) => format!("{q}::{rendered}"),
            None => rendered,
        }
    }
}

fn callee_label(callee: &Expr) -> &str {
    match callee {
        Expr::Path { segs, .. } => segs.last().map_or("?", String::as_str),
        _ => "?",
    }
}

/// Whether a type is (a shared-pointer wrapper around) a lock.
fn is_lock_ty(ty: &crate::parser::Ty) -> bool {
    match ty.name.as_str() {
        "Mutex" | "RwLock" => true,
        "Arc" | "Rc" | "Box" | "RefCell" => ty.args.first().is_some_and(is_lock_ty),
        _ => false,
    }
}

/// Textual rendering of a receiver path for the untyped fallback id.
fn render(expr: &Expr) -> String {
    match expr {
        Expr::Path { segs, .. } => segs.join("::"),
        Expr::Field { base, name, .. } => format!("{}.{name}", render(base)),
        Expr::Unary { inner } => render(inner),
        Expr::MethodCall { recv, method, .. } => format!("{}.{method}()", render(recv)),
        _ => "?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;
    use crate::rules::{FileInput, Prepared};
    use crate::symbols::FileModel;

    fn check_sources(sources: &[(&str, &str)]) -> Vec<Diagnostic> {
        let inputs: Vec<FileInput> = sources
            .iter()
            .map(|(rel, src)| FileInput {
                rel: rel.to_string(),
                class: crate::walker::classify(rel),
                crate_name: crate::walker::crate_name(rel),
                text: src.to_string(),
            })
            .collect();
        let preps: Vec<Prepared> = inputs.iter().map(Prepared::new).collect();
        let models = preps
            .iter()
            .map(|p| FileModel::build(p.input, &parse_file(&p.code)))
            .collect();
        let ws = Workspace::build(models);
        let sup = Suppressions::new(&preps);
        let mut out = Vec::new();
        check(&ws, &Config::default(), &sup, &mut out);
        out
    }

    const TWO_LOCKS: &str = "pub struct S { a: Mutex<u32>, b: Mutex<u32> }\n";

    #[test]
    fn opposite_orders_cycle() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{TWO_LOCKS}impl S {{\n\
                 fn one(&self) {{ let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }}\n\
                 fn two(&self) {{ let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); }}\n}}"
            ),
        )]);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].message.contains("cycle"), "{diags:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{TWO_LOCKS}impl S {{\n\
                 fn one(&self) {{ let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }}\n\
                 fn two(&self) {{ let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); }}\n}}"
            ),
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn cycle_through_callee_summary() {
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{TWO_LOCKS}impl S {{\n\
                 fn inner(&self) {{ let g = self.b.lock().unwrap(); }}\n\
                 fn outer(&self) {{ let g = self.a.lock().unwrap(); self.inner(); }}\n\
                 fn rev(&self) {{ let g = self.b.lock().unwrap(); let h = self.a.lock().unwrap(); }}\n}}"
            ),
        )]);
        assert!(!diags.is_empty(), "{diags:?}");
        assert!(
            diags.iter().any(|d| d.message.contains("cycle")),
            "{diags:?}"
        );
    }

    #[test]
    fn guard_across_blocking_write_flagged_drop_clears() {
        let flagged = check_sources(&[(
            "crates/obs/src/x.rs",
            "pub struct S { a: Mutex<u32> }\nimpl S {\n\
             fn bad(&self, out: &mut TcpStream) {\n\
             let g = self.a.lock().unwrap();\nout.write_all(b\"x\");\n}\n}",
        )]);
        assert_eq!(flagged.len(), 1, "{flagged:?}");
        assert!(flagged[0].message.contains("write_all"), "{flagged:?}");
        let clean = check_sources(&[(
            "crates/obs/src/x.rs",
            "pub struct S { a: Mutex<u32> }\nimpl S {\n\
             fn ok(&self, out: &mut TcpStream) {\n\
             let g = self.a.lock().unwrap();\ndrop(g);\nout.write_all(b\"x\");\n}\n}",
        )]);
        assert!(clean.is_empty(), "{clean:?}");
    }

    #[test]
    fn scoped_guard_released_at_block_end() {
        let diags = check_sources(&[(
            "crates/obs/src/x.rs",
            "pub struct S { a: Mutex<u32> }\nimpl S {\n\
             fn ok(&self, out: &mut TcpStream) {\n\
             { let g = self.a.lock().unwrap(); }\nout.write_all(b\"x\");\n}\n}",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn condvar_wait_releases_own_guard_flags_others() {
        let own = check_sources(&[(
            "crates/engine/src/x.rs",
            "pub struct S { a: Mutex<u32>, cv: Condvar }\nimpl S {\n\
             fn ok(&self) { let g = self.a.lock().unwrap(); let g = self.cv.wait(g); }\n}",
        )]);
        assert!(own.is_empty(), "{own:?}");
        let other = check_sources(&[(
            "crates/engine/src/x.rs",
            "pub struct S { a: Mutex<u32>, b: Mutex<u32>, cv: Condvar }\nimpl S {\n\
             fn bad(&self) {\nlet g = self.a.lock().unwrap();\nlet h = self.b.lock().unwrap();\n\
             let h = self.cv.wait(h);\n}\n}",
        )]);
        assert_eq!(other.len(), 1, "{other:?}");
        assert!(other[0].message.contains("Condvar"), "{other:?}");
    }

    #[test]
    fn guard_returning_helper_participates_in_edges() {
        let diags = check_sources(&[(
            "crates/serve/src/x.rs",
            &format!(
                "{TWO_LOCKS}impl S {{\n\
                 fn grab(&self) -> MutexGuard<u32> {{ self.a.lock().unwrap() }}\n\
                 fn one(&self) {{ let g = self.grab(); let h = self.b.lock().unwrap(); }}\n\
                 fn two(&self) {{ let g = self.b.lock().unwrap(); let h = self.grab(); }}\n}}"
            ),
        )]);
        assert!(!diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn closure_body_starts_with_empty_held_set() {
        // The spawn'd closure acquires `a`; the spawner holds `b` at the
        // definition site — no edge (the closure runs elsewhere).
        let diags = check_sources(&[(
            "crates/engine/src/x.rs",
            &format!(
                "{TWO_LOCKS}impl S {{\n\
                 fn go(&self) {{ let g = self.b.lock().unwrap(); \
                 spawn(|| {{ let h = self.a.lock().unwrap(); }}); }}\n}}"
            ),
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn suppression_is_honored() {
        let diags = check_sources(&[(
            "crates/obs/src/x.rs",
            "pub struct S { a: Mutex<u32> }\nimpl S {\n\
             fn bad(&self, out: &mut TcpStream) {\n\
             let g = self.a.lock().unwrap();\n\
             // dox-lint:allow(lock-order) short critical section, bounded write\n\
             out.write_all(b\"x\");\n}\n}",
        )]);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
