//! # dox-extract
//!
//! Semi-structured extraction from dox files (paper §3.1.3).
//!
//! Dox files are "semi-structured": easy for humans, nontrivial for
//! programs. The paper hand-labeled 125 dox files, then built an extractor
//! mixing statistical and heuristic approaches, evaluating per-field
//! accuracy (Table 2). This crate implements that extractor:
//!
//! - [`lines`] — the line-level grammar: `label: value`, `label; v1 - v2`,
//!   `LABEL value`, multi-value separators ("a - b", "a and b", commas).
//! - [`osn`] — social-network account extraction: profile-URL patterns,
//!   label aliases ("FB", "fbs", "insta", …), handle validation.
//! - [`fields`] — sensitive-field extractors: names, age, date of birth,
//!   phone numbers, emails, IPs, addresses and zip codes, SSNs, credit
//!   cards, schools, ISPs, passwords, family members.
//! - [`credits`] — doxer-credit parsing ("dropped by A and @B, thanks to
//!   C (@c)") feeding the Figure 2 network analysis.
//! - [`record`] — [`record::ExtractedDox`], the aggregate of everything
//!   extracted from one document.
//! - [`accuracy`] — the Table 2 evaluation protocol: per-field extractor
//!   accuracy against hand labels (ground truth).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod accuracy;
pub mod credits;
pub mod fields;
pub mod lines;
pub mod osn;
pub mod record;

pub use record::{extract, ExtractedDox};
