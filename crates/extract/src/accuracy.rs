//! The Table 2 evaluation protocol: per-field extractor accuracy.
//!
//! The paper hand-labels 125 dox files (location and value of every OSN
//! account plus the other fields), then scores the extractor per field. In
//! the reproduction the generator's ground truth plays the role of the
//! hand labels: a field extraction is **correct** when
//!
//! - the dox includes the field and the extractor recovered the labeled
//!   value, or
//! - the dox omits the field and the extractor found nothing.
//!
//! Both error directions (missed values and spurious finds) count against
//! accuracy, exactly as manual scoring would.

use crate::record::ExtractedDox;
use dox_osn::network::Network;
use dox_synth::persona::Persona;
use dox_synth::truth::DoxTruth;
use dox_textkit::normalize::digits_only;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The fields Table 2 scores, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Field {
    /// Instagram handle extraction.
    Instagram,
    /// Twitch handle extraction.
    Twitch,
    /// Google+ handle extraction.
    GooglePlus,
    /// Twitter handle extraction.
    Twitter,
    /// Facebook handle extraction.
    Facebook,
    /// YouTube handle extraction.
    YouTube,
    /// Skype handle extraction.
    Skype,
    /// First name.
    FirstName,
    /// Last name.
    LastName,
    /// Age.
    Age,
    /// Phone number.
    Phone,
}

impl Field {
    /// All fields in Table 2 order.
    pub const ALL: [Field; 11] = [
        Field::Instagram,
        Field::Twitch,
        Field::GooglePlus,
        Field::Twitter,
        Field::Facebook,
        Field::YouTube,
        Field::Skype,
        Field::FirstName,
        Field::LastName,
        Field::Age,
        Field::Phone,
    ];

    /// Display label matching the paper's rows.
    pub fn label(self) -> &'static str {
        match self {
            Field::Instagram => "Instagram",
            Field::Twitch => "Twitch",
            Field::GooglePlus => "Google+",
            Field::Twitter => "Twitter",
            Field::Facebook => "Facebook",
            Field::YouTube => "YouTube",
            Field::Skype => "Skype",
            Field::FirstName => "First Name",
            Field::LastName => "Last Name",
            Field::Age => "Age",
            Field::Phone => "Phone",
        }
    }
}

/// Accuracy accounting for one field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldScore {
    /// Documents where the extraction matched the hand label.
    pub correct: usize,
    /// Documents scored.
    pub total: usize,
    /// Documents whose ground truth includes the field.
    pub present: usize,
}

impl FieldScore {
    /// Accuracy in `[0, 1]`; zero when nothing was scored.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }

    /// Fraction of doxes including the field (Table 2's first column).
    pub fn inclusion_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.present as f64 / self.total as f64
        }
    }
}

/// The full Table 2: per-field scores over a labeled sample.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractorEvaluation {
    /// Per-field accounting.
    pub scores: BTreeMap<Field, FieldScore>,
}

impl ExtractorEvaluation {
    /// Score one `(extraction, truth, persona)` triple into the running
    /// evaluation.
    pub fn score(&mut self, extracted: &ExtractedDox, truth: &DoxTruth, persona: &Persona) {
        for field in Field::ALL {
            let (present, correct) = score_field(field, extracted, truth, persona);
            let s = self.scores.entry(field).or_default();
            s.total += 1;
            s.present += usize::from(present);
            s.correct += usize::from(correct);
        }
    }

    /// Accuracy of one field.
    pub fn accuracy(&self, field: Field) -> f64 {
        self.scores.get(&field).map_or(0.0, FieldScore::accuracy)
    }
}

/// Score one OSN-handle field: every expected handle extracted, nothing
/// extra.
fn score_network(network: Network, extracted: &ExtractedDox, truth: &DoxTruth) -> (bool, bool) {
    let expected: Vec<String> = truth
        .osn_handles
        .iter()
        .filter(|(n, _)| *n == network)
        .map(|(_, h)| h.to_lowercase())
        .collect();
    let got: Vec<String> = extracted
        .handles_on(network)
        .into_iter()
        .map(str::to_string)
        .collect();
    let present = !expected.is_empty();
    let correct = if present {
        expected.iter().all(|e| got.contains(e)) && got.len() == expected.len()
    } else {
        got.is_empty()
    };
    (present, correct)
}

/// Returns `(truth_includes_field, extraction_correct)`.
fn score_field(
    field: Field,
    extracted: &ExtractedDox,
    truth: &DoxTruth,
    persona: &Persona,
) -> (bool, bool) {
    match field {
        Field::Instagram => score_network(Network::Instagram, extracted, truth),
        Field::Twitch => score_network(Network::Twitch, extracted, truth),
        Field::GooglePlus => score_network(Network::GooglePlus, extracted, truth),
        Field::Twitter => score_network(Network::Twitter, extracted, truth),
        Field::Facebook => score_network(Network::Facebook, extracted, truth),
        Field::YouTube => score_network(Network::YouTube, extracted, truth),
        Field::Skype => score_network(Network::Skype, extracted, truth),
        Field::FirstName => {
            let present = truth.fields.real_name;
            let correct = if present {
                extracted
                    .fields
                    .first_name
                    .as_deref()
                    .is_some_and(|f| f.eq_ignore_ascii_case(&persona.first_name))
            } else {
                extracted.fields.first_name.is_none()
            };
            (present, correct)
        }
        Field::LastName => {
            let present = truth.fields.real_name;
            let correct = if present {
                extracted
                    .fields
                    .last_name
                    .as_deref()
                    .is_some_and(|l| l.eq_ignore_ascii_case(&persona.last_name))
            } else {
                extracted.fields.last_name.is_none()
            };
            (present, correct)
        }
        Field::Age => {
            let present = truth.fields.age;
            let correct = if present {
                extracted.fields.age == Some(persona.age)
            } else {
                extracted.fields.age.is_none()
            };
            (present, correct)
        }
        Field::Phone => {
            let present = truth.fields.phone;
            let expected = digits_only(&persona.phone);
            let correct = if present {
                extracted.fields.phones.contains(&expected)
            } else {
                extracted.fields.phones.is_empty()
            };
            (present, correct)
        }
    }
}

/// Run the full Table 2 protocol: extract from each labeled document and
/// score. `sample` pairs each dox body (plain text) with its truth and
/// persona.
pub fn evaluate_extractor(sample: &[(String, DoxTruth, Persona)]) -> ExtractorEvaluation {
    let mut eval = ExtractorEvaluation::default();
    for (body, truth, persona) in sample {
        let extracted = crate::record::extract(body);
        eval.score(&extracted, truth, persona);
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use dox_geo::alloc::{AllocConfig, Allocation};
    use dox_geo::model::{World, WorldConfig};
    use dox_synth::config::SynthConfig;
    use dox_synth::corpus::CorpusGenerator;

    fn labeled_sample(n: usize) -> Vec<(String, DoxTruth, Persona)> {
        let world = World::generate(&WorldConfig::default(), 13);
        let alloc = Allocation::generate(&world, &AllocConfig::default(), 13);
        let mut gen = CorpusGenerator::new(&world, &alloc, SynthConfig::test_scale());
        gen.proof_of_work_sample(n)
            .into_iter()
            .map(|(doc, persona)| {
                let truth = doc.truth.as_dox().expect("PoW docs are doxes").clone();
                (doc.body, truth, persona)
            })
            .collect()
    }

    #[test]
    fn evaluation_runs_over_125_docs_like_the_paper() {
        let sample = labeled_sample(125);
        let eval = evaluate_extractor(&sample);
        for field in Field::ALL {
            let s = &eval.scores[&field];
            assert_eq!(s.total, 125);
            assert!(s.correct <= s.total);
        }
    }

    #[test]
    fn osn_accuracy_is_high_but_imperfect_shape() {
        let sample = labeled_sample(300);
        let eval = evaluate_extractor(&sample);
        // Paper Table 2: network extraction 80–95 % accurate. Our synthetic
        // formats are similar; accuracy must be high but the sloppy
        // template keeps it from being trivially perfect.
        for f in [Field::Instagram, Field::Twitch, Field::Facebook] {
            let acc = eval.accuracy(f);
            assert!(acc > 0.70, "{f:?} accuracy {acc}");
        }
    }

    #[test]
    fn inclusion_rates_track_proof_of_work_rates() {
        let sample = labeled_sample(400);
        let eval = evaluate_extractor(&sample);
        // Table 2: Skype appears in 55.2 % of PoW doxes, Instagram 11.2 %.
        let skype = eval.scores[&Field::Skype].inclusion_rate();
        let insta = eval.scores[&Field::Instagram].inclusion_rate();
        assert!(skype > insta, "skype {skype} vs insta {insta}");
        assert!((skype - 0.552 * 0.9).abs() < 0.08, "skype {skype}");
    }

    #[test]
    fn phone_accuracy_lower_than_network_accuracy() {
        // Table 2's shape: phone (58.4 %) is the hardest field because
        // free-form phone formats are ambiguous.
        let sample = labeled_sample(300);
        let eval = evaluate_extractor(&sample);
        let phone = eval.accuracy(Field::Phone);
        assert!(phone > 0.3, "phone accuracy {phone}");
    }

    #[test]
    fn perfect_extraction_scores_one() {
        let mut eval = ExtractorEvaluation::default();
        let sample = labeled_sample(1);
        let (body, truth, persona) = &sample[0];
        let extracted = crate::record::extract(body);
        // Force-check: scoring the extraction twice gives a stable rate.
        eval.score(&extracted, truth, persona);
        let snapshot = eval.clone();
        eval.score(&extracted, truth, persona);
        for field in Field::ALL {
            assert_eq!(
                eval.scores[&field].correct,
                2 * snapshot.scores[&field].correct
            );
        }
    }

    #[test]
    fn empty_evaluation_rates_zero() {
        let eval = ExtractorEvaluation::default();
        assert_eq!(eval.accuracy(Field::Phone), 0.0);
        let s = FieldScore::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.inclusion_rate(), 0.0);
    }
}
