//! The aggregate extraction record.
//!
//! [`extract`] runs every extractor over one plain-text document and
//! returns an [`ExtractedDox`]: the OSN account references (used for
//! de-duplication and monitoring), the sensitive fields (Table 6
//! accounting and §4.1 validation) and the doxer credits (Figure 2).

use crate::credits::{extract_credits, Credit};
use crate::fields::{extract_fields, ExtractedFields};
use crate::osn::{extract_osn, OsnRef};
use dox_osn::network::Network;
use serde::{Deserialize, Serialize};

/// Everything extracted from one document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractedDox {
    /// Social-network account references, deduplicated and sorted.
    pub osn: Vec<OsnRef>,
    /// Sensitive fields.
    pub fields: ExtractedFields,
    /// Doxer credits.
    pub credits: Vec<Credit>,
}

impl ExtractedDox {
    /// The handles referenced on `network`.
    pub fn handles_on(&self, network: Network) -> Vec<&str> {
        self.osn
            .iter()
            .filter(|r| r.network == network)
            .map(|r| r.handle.as_str())
            .collect()
    }

    /// The account-set key used by the §3.1.4 de-duplication rule: the
    /// sorted `(network, handle)` list. Two doxes with identical non-empty
    /// keys target the same victim.
    pub fn account_set_key(&self) -> Vec<(Network, String)> {
        self.osn
            .iter()
            .map(|r| (r.network, r.handle.clone()))
            .collect()
    }
}

// The vendored serde cannot derive `Deserialize`; engine checkpoints
// round-trip extraction records by hand.
impl serde::Deserialize for ExtractedDox {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(ExtractedDox {
            osn: value
                .get("osn")?
                .as_array()?
                .iter()
                .map(OsnRef::from_value)
                .collect::<Option<Vec<_>>>()?,
            fields: ExtractedFields::from_value(value.get("fields")?)?,
            credits: value
                .get("credits")?
                .as_array()?
                .iter()
                .map(Credit::from_value)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Run every extractor over `text` (plain text — convert chan HTML first
/// with [`dox_textkit::html::html_to_text`]).
///
/// ```
/// use dox_extract::extract;
///
/// let record = extract("Name: Kaia Sandvik\nPhone: (414) 555-0123\nig: kaia_s22");
/// assert_eq!(record.fields.first_name.as_deref(), Some("Kaia"));
/// assert_eq!(record.fields.phones, vec!["4145550123".to_string()]);
/// assert_eq!(record.osn.len(), 1);
/// ```
pub fn extract(text: &str) -> ExtractedDox {
    ExtractedDox {
        osn: extract_osn(text),
        fields: extract_fields(text),
        credits: extract_credits(text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOX: &str = "\
Name: Kaia Sandvik
Age: 22
Address: 77 Cedar Lane, Halemouth, NK 10340
Phone: (414) 555-0123
IP: 73.20.1.5
Facebook: https://facebook.com/kaia.sandvik40
twitter: @kaiasand40
insta; kaiasand40
dropped by ByteCrow_3 and @HexMancer_8
";

    #[test]
    fn aggregate_extraction() {
        let e = extract(DOX);
        assert_eq!(e.osn.len(), 3);
        assert_eq!(e.handles_on(Network::Facebook), vec!["kaia.sandvik40"]);
        assert_eq!(e.handles_on(Network::Twitter), vec!["kaiasand40"]);
        assert_eq!(e.handles_on(Network::Instagram), vec!["kaiasand40"]);
        assert_eq!(e.fields.age, Some(22));
        assert_eq!(e.fields.phones, vec!["4145550123"]);
        assert_eq!(e.credits.len(), 2);
    }

    #[test]
    fn account_set_key_is_sorted_and_stable() {
        let a = extract(DOX);
        let b = extract(DOX);
        assert_eq!(a.account_set_key(), b.account_set_key());
        let key = a.account_set_key();
        let mut sorted = key.clone();
        sorted.sort();
        assert_eq!(key, sorted);
    }

    #[test]
    fn empty_document() {
        let e = extract("");
        assert!(e.osn.is_empty());
        assert!(e.credits.is_empty());
        assert!(e.account_set_key().is_empty());
    }

    #[test]
    fn handles_on_missing_network() {
        let e = extract(DOX);
        assert!(e.handles_on(Network::Twitch).is_empty());
    }
}
