//! Social-network account extraction.
//!
//! Three extraction passes, mirroring the "mixture of statistical and
//! heuristic approaches" of §3.1.3:
//!
//! 1. **URL pass** — scan for known profile hosts (`facebook.com/<h>`,
//!    `twitch.tv/<h>`, …) anywhere in the text.
//! 2. **Label pass** — run the [`crate::lines`] grammar and match labels
//!    against each network's alias list ("FB", "fbs", "insta", "ttv", …).
//! 3. **Validation** — candidate handles must satisfy the handle grammar
//!    and pass length sanity checks; URLs found in label values are routed
//!    back through the URL parser.

use crate::lines::{parse_lines, LabeledLine};
use dox_osn::network::Network;
use dox_textkit::normalize::is_handle_like;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One extracted account reference.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OsnRef {
    /// Which network.
    pub network: Network,
    /// The handle, lowercased (handles are case-insensitive on all the
    /// measured networks).
    pub handle: String,
}

// The vendored serde cannot derive `Deserialize`; engine checkpoints
// round-trip extraction records by hand.
impl serde::Deserialize for OsnRef {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(OsnRef {
            network: Network::from_value(value.get("network")?)?,
            handle: value.get("handle")?.as_str()?.to_string(),
        })
    }
}

/// Extract every social-network account referenced in `text`.
///
/// Results are deduplicated and sorted (network, handle).
pub fn extract_osn(text: &str) -> Vec<OsnRef> {
    let mut found: BTreeSet<OsnRef> = BTreeSet::new();
    url_pass(text, &mut found);
    label_pass(&parse_lines(text), &mut found);
    found.into_iter().collect()
}

/// Minimum / maximum plausible handle lengths.
const HANDLE_LEN: std::ops::RangeInclusive<usize> = 3..=40;

fn valid_handle(h: &str) -> bool {
    HANDLE_LEN.contains(&h.len()) && is_handle_like(h)
}

fn url_pass(text: &str, found: &mut BTreeSet<OsnRef>) {
    for network in Network::ALL {
        for host in network.url_hosts() {
            let mut rest = text;
            while let Some(pos) = rest.find(host) {
                let after = &rest[pos + host.len()..];
                if let Some(path) = after.strip_prefix('/') {
                    // Google+ vanity URLs carry a leading '+'.
                    let path = path.strip_prefix('+').unwrap_or(path);
                    let handle: String = path
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
                        .collect();
                    let handle = handle.trim_end_matches('.').to_lowercase();
                    if valid_handle(&handle) && !is_path_keyword(&handle) {
                        found.insert(OsnRef { network, handle });
                    }
                }
                rest = &rest[pos + host.len()..];
            }
        }
    }
}

/// URL path segments that are site features, not profile handles.
fn is_path_keyword(seg: &str) -> bool {
    matches!(
        seg,
        "watch"
            | "channel"
            | "user"
            | "profile"
            | "pages"
            | "groups"
            | "search"
            | "home"
            | "login"
            | "share"
            | "hashtag"
            | "intent"
            | "status"
    )
}

fn label_pass(lines: &[LabeledLine], found: &mut BTreeSet<OsnRef>) {
    for line in lines {
        let Some(network) = Network::parse(&line.label) else {
            continue;
        };
        for value in &line.values {
            // URLs inside label values go through the URL parser so the
            // host wins over the label (a "links:" line may mix networks).
            if value.contains('/') {
                url_pass(value, found);
                continue;
            }
            // '@' marks Twitter-style mentions; '+' marks Google+ handles.
            let handle = value
                .trim_start_matches('@')
                .trim_start_matches('+')
                .to_lowercase();
            if valid_handle(&handle) {
                found.insert(OsnRef { network, handle });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn refs(text: &str) -> Vec<(Network, String)> {
        extract_osn(text)
            .into_iter()
            .map(|r| (r.network, r.handle))
            .collect()
    }

    #[test]
    fn url_forms_extract() {
        let text = "see https://facebook.com/some.victim1 and twitch.tv/streamer_99";
        let got = refs(text);
        assert!(got.contains(&(Network::Facebook, "some.victim1".into())));
        assert!(got.contains(&(Network::Twitch, "streamer_99".into())));
    }

    #[test]
    fn all_four_paper_shapes() {
        for text in [
            "Facebook: https://facebook.com/example1",
            "FB example1",
            "fbs: example1 - example2 - example3",
            "facebooks; example1 and example2",
        ] {
            let got = refs(text);
            assert!(
                got.contains(&(Network::Facebook, "example1".into())),
                "failed on {text:?}: {got:?}"
            );
        }
    }

    #[test]
    fn label_aliases_map_to_networks() {
        assert_eq!(refs("insta: victim_pics")[0].0, Network::Instagram);
        assert_eq!(refs("ttv: victim_live")[0].0, Network::Twitch);
        assert_eq!(refs("yt: victimchannel9")[0].0, Network::YouTube);
        assert_eq!(refs("skype: live.victim3")[0].0, Network::Skype);
        assert_eq!(refs("g+: plusvictim")[0].0, Network::GooglePlus);
    }

    #[test]
    fn at_prefix_stripped() {
        assert_eq!(
            refs("twitter: @angry_victim")[0],
            (Network::Twitter, "angry_victim".into())
        );
    }

    #[test]
    fn dedup_across_forms() {
        let text = "FB example1\nfacebook.com/example1\nFacebook: example1";
        assert_eq!(refs(text).len(), 1);
    }

    #[test]
    fn path_keywords_rejected() {
        assert!(refs("https://youtube.com/watch?v=abc123xyz00").is_empty());
        assert!(refs("facebook.com/login").is_empty());
    }

    #[test]
    fn invalid_handles_rejected() {
        assert!(refs("fb: xy").is_empty(), "too short");
        assert!(refs("fb: has space in it").is_empty());
        let long = format!("fb: {}", "a".repeat(50));
        assert!(refs(&long).is_empty(), "too long");
    }

    #[test]
    fn unknown_labels_ignored() {
        assert!(refs("myspace: oldtimer99").is_empty());
        assert!(refs("Name: John Example").is_empty());
    }

    #[test]
    fn handles_lowercased() {
        assert_eq!(
            refs("twitter: AngryVictim99")[0].1,
            "angryvictim99".to_string()
        );
    }

    #[test]
    fn url_with_trailing_punctuation() {
        let got = refs("profile: instagram.com/victim.pics., check it");
        assert!(got.contains(&(Network::Instagram, "victim.pics".into())));
    }

    #[test]
    fn mixed_url_in_label_value_routes_by_host() {
        // Label says facebook, URL is twitch — host wins.
        let got = refs("facebook: https://twitch.tv/actually_a_streamer");
        assert_eq!(got, vec![(Network::Twitch, "actually_a_streamer".into())]);
    }

    #[test]
    fn empty_input() {
        assert!(refs("").is_empty());
    }
}
