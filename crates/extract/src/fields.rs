//! Sensitive-field extractors.
//!
//! One function per Table 2 / Table 6 category. Extractors are heuristic by
//! design — the paper's extractor has per-field accuracies between 58.4 %
//! (phone) and 95.2 % (Instagram) — and operate on the plain-text form of a
//! document (chan HTML is converted upstream).

use crate::lines::{parse_lines, LabeledLine};
use dox_geo::ip::find_ipv4_literals;

use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// A family-member mention: `(relation, name)`.
pub type FamilyRef = (String, String);

/// Everything the field extractors pull from one document.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExtractedFields {
    /// First name, when a real name was found.
    pub first_name: Option<String>,
    /// Last name.
    pub last_name: Option<String>,
    /// Age in years.
    pub age: Option<u8>,
    /// Date of birth `(year, month, day)`.
    pub dob: Option<(u16, u8, u8)>,
    /// Phone numbers (digit-canonicalized).
    pub phones: Vec<String>,
    /// Email addresses.
    pub emails: Vec<String>,
    /// IPv4 addresses.
    pub ips: Vec<Ipv4Addr>,
    /// Street-address line, when present.
    pub address: Option<String>,
    /// Zip code.
    pub zip: Option<u32>,
    /// SSN-shaped identifiers.
    pub ssns: Vec<String>,
    /// Credit-card-shaped numbers (digit-canonicalized).
    pub credit_cards: Vec<String>,
    /// School name.
    pub school: Option<String>,
    /// ISP name.
    pub isp: Option<String>,
    /// Passwords.
    pub passwords: Vec<String>,
    /// Family members.
    pub family: Vec<FamilyRef>,
    /// Other usernames.
    pub usernames: Vec<String>,
}

// The vendored serde cannot derive `Deserialize`; engine checkpoints
// round-trip extraction records by hand. Mirrors the derive's Serialize
// encoding: options as null-or-value, tuples as arrays, IPs as strings.
impl serde::Deserialize for ExtractedFields {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        use serde::value::Value;
        let opt_str = |v: &Value| match v {
            Value::Null => Some(None),
            other => other.as_str().map(|s| Some(s.to_string())),
        };
        let strings = |v: &Value| {
            v.as_array()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<String>>>()
        };
        Some(ExtractedFields {
            first_name: opt_str(value.get("first_name")?)?,
            last_name: opt_str(value.get("last_name")?)?,
            age: match value.get("age")? {
                Value::Null => None,
                other => Some(u8::try_from(other.as_u64()?).ok()?),
            },
            dob: match value.get("dob")? {
                Value::Null => None,
                other => {
                    let parts = other.as_array()?;
                    Some((
                        u16::try_from(parts.first()?.as_u64()?).ok()?,
                        u8::try_from(parts.get(1)?.as_u64()?).ok()?,
                        u8::try_from(parts.get(2)?.as_u64()?).ok()?,
                    ))
                }
            },
            phones: strings(value.get("phones")?)?,
            emails: strings(value.get("emails")?)?,
            ips: value
                .get("ips")?
                .as_array()?
                .iter()
                .map(|ip| ip.as_str()?.parse().ok())
                .collect::<Option<Vec<Ipv4Addr>>>()?,
            address: opt_str(value.get("address")?)?,
            zip: match value.get("zip")? {
                Value::Null => None,
                other => Some(u32::try_from(other.as_u64()?).ok()?),
            },
            ssns: strings(value.get("ssns")?)?,
            credit_cards: strings(value.get("credit_cards")?)?,
            school: opt_str(value.get("school")?)?,
            isp: opt_str(value.get("isp")?)?,
            passwords: strings(value.get("passwords")?)?,
            family: value
                .get("family")?
                .as_array()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array()?;
                    Some((
                        pair.first()?.as_str()?.to_string(),
                        pair.get(1)?.as_str()?.to_string(),
                    ))
                })
                .collect::<Option<Vec<FamilyRef>>>()?,
            usernames: strings(value.get("usernames")?)?,
        })
    }
}

/// Label aliases per field, lowercased.
const NAME_LABELS: &[&str] = &["name", "real name", "full name"];
const AGE_LABELS: &[&str] = &["age"];
const DOB_LABELS: &[&str] = &["dob", "date of birth", "birthday"];
// Phone numbers are matched by shape anywhere in the text (see
// `match_phone_at`), so no label list is needed for them.
const ADDRESS_LABELS: &[&str] = &["address", "addy", "addr", "home address"];
const SCHOOL_LABELS: &[&str] = &["school", "college", "university"];
const ISP_LABELS: &[&str] = &["isp", "provider", "carrier"];
const PASSWORD_LABELS: &[&str] = &["password", "pass", "pw", "passwords"];
const ALIAS_LABELS: &[&str] = &["known aliases", "aliases", "usernames", "alias"];

/// Run every field extractor over `text`.
pub fn extract_fields(text: &str) -> ExtractedFields {
    let lines = parse_lines(text);
    let mut out = ExtractedFields {
        ips: find_ipv4_literals(text)
            .into_iter()
            .map(|(_, ip)| ip)
            .collect(),
        emails: extract_emails(text),
        ssns: extract_ssns(text),
        credit_cards: extract_credit_cards(text),
        phones: extract_phones(text),
        ..ExtractedFields::default()
    };

    for line in &lines {
        let label = line.label.as_str();
        let joined = line.values.join(", ");
        if NAME_LABELS.contains(&label) {
            let mut words = joined.split_whitespace();
            out.first_name = words.next().map(capitalize);
            out.last_name = words.next().map(capitalize);
        } else if AGE_LABELS.contains(&label) {
            out.age = joined
                .trim()
                .parse::<u8>()
                .ok()
                .filter(|&a| (5..=120).contains(&a));
        } else if DOB_LABELS.contains(&label) {
            out.dob = parse_dob(&joined);
        } else if ADDRESS_LABELS.contains(&label) {
            out.address = Some(joined.clone());
            out.zip = trailing_zip(&joined);
        } else if SCHOOL_LABELS.contains(&label) {
            out.school = Some(joined.clone());
        } else if ISP_LABELS.contains(&label) {
            out.isp = Some(joined.clone());
        } else if PASSWORD_LABELS.contains(&label) {
            out.passwords.extend(line.values.iter().cloned());
        } else if ALIAS_LABELS.contains(&label) {
            out.usernames.extend(line.values.iter().cloned());
        }
    }

    out.family = extract_family(text, &lines);
    out
}

fn capitalize(w: &str) -> String {
    let mut c = w.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Emails: tokens containing `@` with a dotted domain.
pub fn extract_emails(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for token in text.split(|c: char| c.is_whitespace() || matches!(c, ',' | ';' | '(' | ')')) {
        let token = token.trim_matches(|c: char| !c.is_alphanumeric());
        let Some((local, domain)) = token.split_once('@') else {
            continue;
        };
        if local.is_empty() || !domain.contains('.') {
            continue;
        }
        if domain
            .split('.')
            .all(|p| !p.is_empty() && p.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'))
        {
            out.push(token.to_lowercase());
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Phones: `(ddd) ddd-dddd`, `ddd-ddd-dddd`, `ddd.ddd.dddd`, optionally
/// prefixed `1-`/`1 `; returns canonical 10-digit strings. Shapes are
/// matched explicitly so SSNs (`ddd-dd-dddd`) and longer id numbers never
/// collide, and matching never crosses line boundaries.
pub fn extract_phones(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let mut i = 0;
        while i < line.len() {
            if let Some((len, digits)) = match_phone_at(&line[i..]) {
                out.push(digits);
                i += len;
            } else {
                i += line[i..].chars().next().map_or(1, char::len_utf8);
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Try to match a phone shape at the start of `s`; returns
/// `(matched_len, canonical_digits)`.
fn match_phone_at(s: &str) -> Option<(usize, String)> {
    // Optional "1-" / "1 " country prefix.
    let (prefix_len, rest) = if let Some(r) = s.strip_prefix("1-").or_else(|| s.strip_prefix("1 "))
    {
        (2usize, r)
    } else {
        (0usize, s)
    };
    // Shape A: (ddd) ddd-dddd (space after the area code optional).
    if let Some(r) = rest.strip_prefix('(') {
        let area = take_digits(r, 3)?;
        let r = r[3..].strip_prefix(')')?;
        let r = r.strip_prefix(' ').unwrap_or(r);
        let mid = take_digits(r, 3)?;
        let r2 = r[3..].strip_prefix(['-', '.'])?;
        let last = take_digits(r2, 4)?;
        reject_digit_tail(&r2[4..])?;
        let consumed = prefix_len + (rest.len() - r2.len()) + 4;
        return Some((consumed, format!("{area}{mid}{last}")));
    }
    // Shape B: ddd<sep>ddd<sep>dddd with sep in {-, .}.
    let area = take_digits(rest, 3)?;
    let r = rest[3..].strip_prefix(['-', '.'])?;
    let mid = take_digits(r, 3)?;
    let r2 = r[3..].strip_prefix(['-', '.'])?;
    let last = take_digits(r2, 4)?;
    reject_digit_tail(&r2[4..])?;
    let consumed = prefix_len + (rest.len() - r2.len()) + 4;
    Some((consumed, format!("{area}{mid}{last}")))
}

/// The first `n` bytes of `s` as digits, if they are all digits.
fn take_digits(s: &str, n: usize) -> Option<String> {
    let b = s.as_bytes();
    if b.len() >= n && b[..n].iter().all(u8::is_ascii_digit) {
        Some(s[..n].to_string())
    } else {
        None
    }
}

/// A phone match must not be followed by further digits (they would make
/// it part of a longer number, e.g. a credit card).
fn reject_digit_tail(tail: &str) -> Option<()> {
    match tail.bytes().next() {
        Some(b) if b.is_ascii_digit() => None,
        _ => Some(()),
    }
}

/// SSN-shaped: `ddd-dd-dddd`.
pub fn extract_ssns(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    for word in text.split_whitespace() {
        let w = word.trim_matches(|c: char| !c.is_ascii_digit());
        let parts: Vec<&str> = w.split('-').collect();
        if parts.len() == 3
            && parts[0].len() == 3
            && parts[1].len() == 2
            && parts[2].len() == 4
            && parts.iter().all(|p| p.bytes().all(|b| b.is_ascii_digit()))
        {
            out.push(w.to_string());
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Credit-card-shaped: four groups of four digits (spaces or dashes).
pub fn extract_credit_cards(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let words: Vec<&str> = text.split_whitespace().collect();
    for w in words.windows(4) {
        if w.iter()
            .all(|g| g.len() == 4 && g.bytes().all(|b| b.is_ascii_digit()))
        {
            out.push(w.join(""));
        }
    }
    // Single-token 16-digit groups with dashes.
    for word in &words {
        let groups: Vec<&str> = word.split('-').collect();
        if groups.len() == 4
            && groups
                .iter()
                .all(|g| g.len() == 4 && g.bytes().all(|b| b.is_ascii_digit()))
        {
            out.push(groups.join(""));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// DOB formats: `mm/dd/yyyy` or `yyyy-mm-dd`.
pub fn parse_dob(raw: &str) -> Option<(u16, u8, u8)> {
    let t = raw.trim();
    if let Some((m, rest)) = t.split_once('/') {
        let (d, y) = rest.split_once('/')?;
        let (m, d, y) = (m.parse().ok()?, d.parse().ok()?, y.parse().ok()?);
        return valid_date(y, m, d).then_some((y, m, d));
    }
    let mut it = t.split('-');
    let y: u16 = it.next()?.parse().ok()?;
    let m: u8 = it.next()?.parse().ok()?;
    let d: u8 = it.next()?.parse().ok()?;
    valid_date(y, m, d).then_some((y, m, d))
}

fn valid_date(y: u16, m: u8, d: u8) -> bool {
    (1900..=2020).contains(&y) && (1..=12).contains(&m) && (1..=31).contains(&d)
}

/// Trailing 5-digit zip on an address line.
pub fn trailing_zip(address: &str) -> Option<u32> {
    let last = address.split_whitespace().last()?;
    let trimmed = last.trim_matches(|c: char| !c.is_ascii_digit());
    if trimmed.len() == 5 {
        trimmed.parse().ok()
    } else {
        None
    }
}

/// Family extraction: an indented block under a `Family:` header
/// (`  mother: Jane Doe`), or a `family; Name (relation) - …` line.
fn extract_family(text: &str, lines: &[LabeledLine]) -> Vec<FamilyRef> {
    let mut out = Vec::new();
    const RELATIONS: &[&str] = &[
        "mother",
        "father",
        "brother",
        "sister",
        "uncle",
        "aunt",
        "grandmother",
        "grandfather",
        "cousin",
    ];
    // Block form.
    let mut in_block = false;
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.eq_ignore_ascii_case("family:") {
            in_block = true;
            continue;
        }
        if in_block {
            if let Some((rel, name)) = trimmed.split_once(':') {
                let rel = rel.trim().to_lowercase();
                if RELATIONS.contains(&rel.as_str()) {
                    out.push((rel, name.trim().to_string()));
                    continue;
                }
            }
            in_block = false;
        }
    }
    // Inline form: `family; Jane Berg (mother) - Tom Berg (brother)`.
    for line in lines {
        if line.label != "family" {
            continue;
        }
        for value in &line.values {
            if let Some(open) = value.rfind('(') {
                let name = value[..open].trim();
                let rel = value[open + 1..]
                    .trim_end_matches(')')
                    .trim()
                    .to_lowercase();
                if RELATIONS.contains(&rel.as_str()) && !name.is_empty() {
                    out.push((rel, name.to_string()));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
Name: Jaren Thornvik
Age: 19
DOB: 04/12/1997
Address: 1210 Maple Street, Brackford, NK 10234
Phone: (312) 555-0188
Email: jaren_t@mailbox.example
IP: 73.54.12.9
ISP: Norvik Telecom
School: Riverview High School
Password: hunter4422
SSN: 912-34-5678
CC: 9999 1234 5678 9012
Family:
  mother: Maren Thornvik
  brother: Kolten Thornvik
Known aliases: xX_jaren_Xx, jaren99
";

    #[test]
    fn full_labeled_dox_extracts_everything() {
        let f = extract_fields(SAMPLE);
        assert_eq!(f.first_name.as_deref(), Some("Jaren"));
        assert_eq!(f.last_name.as_deref(), Some("Thornvik"));
        assert_eq!(f.age, Some(19));
        assert_eq!(f.dob, Some((1997, 4, 12)));
        assert_eq!(f.phones, vec!["3125550188"]);
        assert_eq!(f.emails, vec!["jaren_t@mailbox.example"]);
        assert_eq!(f.ips, vec!["73.54.12.9".parse::<Ipv4Addr>().unwrap()]);
        assert!(f.address.as_deref().unwrap().contains("Maple Street"));
        assert_eq!(f.zip, Some(10234));
        assert_eq!(f.ssns, vec!["912-34-5678"]);
        assert_eq!(f.credit_cards, vec!["9999123456789012"]);
        assert!(f.school.as_deref().unwrap().contains("Riverview"));
        assert!(f.isp.as_deref().unwrap().contains("Norvik"));
        assert_eq!(f.passwords, vec!["hunter4422"]);
        assert_eq!(f.family.len(), 2);
        assert_eq!(f.family[0].0, "mother");
        assert_eq!(f.usernames, vec!["xX_jaren_Xx", "jaren99"]);
    }

    #[test]
    fn inline_family_form() {
        let f = extract_fields("family; Maren Berg (mother) - Tomas Berg (brother)");
        assert_eq!(f.family.len(), 2);
        assert_eq!(f.family[1], ("brother".into(), "Tomas Berg".into()));
    }

    #[test]
    fn phone_formats() {
        assert_eq!(extract_phones("call 312-555-0188 now"), vec!["3125550188"]);
        assert_eq!(extract_phones("(312) 555-0188"), vec!["3125550188"]);
        assert_eq!(extract_phones("1-312-555-0188"), vec!["3125550188"]);
        // Bare digit runs are not phones.
        assert!(extract_phones("id 3125550188 in the db").is_empty());
    }

    #[test]
    fn email_edge_cases() {
        assert_eq!(
            extract_emails("mail: A.B@Inbox.Example!"),
            vec!["a.b@inbox.example"]
        );
        assert!(extract_emails("not@domain").is_empty());
        assert!(extract_emails("@nothing.example").is_empty());
        assert!(extract_emails("plain text").is_empty());
    }

    #[test]
    fn ssn_shape_only() {
        assert_eq!(extract_ssns("ssn 912-34-5678 ok"), vec!["912-34-5678"]);
        assert!(
            extract_ssns("phone 312-555-0188").is_empty(),
            "wrong grouping"
        );
        assert!(extract_ssns("date 2016-08-01").is_empty());
    }

    #[test]
    fn cc_dashed_form() {
        assert_eq!(
            extract_credit_cards("card 9999-1234-5678-9012 exp"),
            vec!["9999123456789012"]
        );
    }

    #[test]
    fn dob_iso_form() {
        assert_eq!(parse_dob("1997-04-12"), Some((1997, 4, 12)));
        assert_eq!(parse_dob("13/40/1997"), None);
        assert_eq!(parse_dob("garbage"), None);
    }

    #[test]
    fn age_bounds() {
        assert_eq!(extract_fields("Age: 200").age, None);
        assert_eq!(extract_fields("Age: 3").age, None);
        assert_eq!(extract_fields("Age: 74").age, Some(74));
    }

    #[test]
    fn zip_requires_five_digits() {
        assert_eq!(trailing_zip("12 Main St, Town, ST 10234"), Some(10234));
        assert_eq!(trailing_zip("12 Main St, Town, ST 1023"), None);
        assert_eq!(trailing_zip(""), None);
    }

    #[test]
    fn sloppy_narrative_extracts_partially() {
        let text = "say hi to Jaren Thornvik everyone. 19 years old living at \
                    1210 Maple Street, Brackford, NK 10234. connects from 73.54.12.9";
        let f = extract_fields(text);
        // IPs are found anywhere; labeled fields are not.
        assert_eq!(f.ips.len(), 1);
        assert_eq!(f.first_name, None, "narrative names need labels");
        assert_eq!(f.age, None);
    }

    #[test]
    fn empty_input() {
        assert_eq!(extract_fields(""), ExtractedFields::default());
    }
}
