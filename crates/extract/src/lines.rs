//! The line-level grammar of semi-structured dox files.
//!
//! The paper's §3.1.3 lists the formats a Facebook account shows up in:
//!
//! 1. `Facebook: https://facebook.com/example`
//! 2. `FB example`
//! 3. `fbs: example - example2 - example3`
//! 4. `facebooks; example and example2`
//!
//! [`parse_line`] normalizes a line into `(label, values)` covering all of
//! those shapes; [`split_values`] handles the multi-value separators.

use serde::{Deserialize, Serialize};

/// A parsed semi-structured line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledLine {
    /// The lowercased label.
    pub label: String,
    /// The value strings, in order.
    pub values: Vec<String>,
    /// Which syntactic shape matched.
    pub shape: LineShape,
}

/// The syntactic shape of a labeled line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LineShape {
    /// `label: value` (or `label; value`).
    Separator,
    /// `LABEL value` — bare label followed by one token.
    Bare,
}

/// Split a value string on the multi-value separators doxers use:
/// `" - "`, `" and "`, `","`. Empty fragments are dropped; fragments are
/// trimmed.
pub fn split_values(raw: &str) -> Vec<String> {
    // Apply separators in decreasing specificity; " - " before "-" is
    // deliberate: hyphens inside handles must survive.
    let mut parts: Vec<String> = vec![raw.to_string()];
    for sep in [" - ", " and ", ","] {
        parts = parts
            .into_iter()
            .flat_map(|p| {
                p.split(sep)
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect::<Vec<_>>()
            })
            .collect();
    }
    parts
}

/// Parse one line into a [`LabeledLine`], if it matches the grammar.
///
/// - Separator shape: a label of at most `max_label_words` words before the
///   first `:` or `;`.
/// - Bare shape: `LABEL value` where the first token is short (≤ 12 chars)
///   and the remainder is 1–3 handle-like tokens.
pub fn parse_line(line: &str) -> Option<LabeledLine> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    if let Some((label, rest)) = dox_textkit::normalize::split_label(line, &[':', ';']) {
        if label.is_empty() || label.split_whitespace().count() > 3 {
            return None;
        }
        let values = split_values(&rest);
        if values.is_empty() {
            return None;
        }
        return Some(LabeledLine {
            label: label.to_lowercase(),
            values,
            shape: LineShape::Separator,
        });
    }
    // Bare shape: "FB example" / "fbs example example2". The label must be
    // short or shouty (an abbreviation), or ordinary prose would match.
    let mut words = line.split_whitespace();
    let first = words.next()?;
    let abbreviation_like = first.len() <= 4 || first.chars().all(|c| c.is_ascii_uppercase());
    if !abbreviation_like {
        return None;
    }
    let rest: Vec<&str> = words.collect();
    if rest.is_empty() || rest.len() > 2 {
        return None;
    }
    if !rest
        .iter()
        .all(|w| dox_textkit::normalize::is_handle_like(w))
    {
        return None;
    }
    Some(LabeledLine {
        label: first.to_lowercase(),
        values: rest.into_iter().map(str::to_string).collect(),
        shape: LineShape::Bare,
    })
}

/// Parse every line of `text`.
pub fn parse_lines(text: &str) -> Vec<LabeledLine> {
    text.lines().filter_map(parse_line).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1_url_value() {
        let l = parse_line("Facebook: https://facebook.com/example").unwrap();
        assert_eq!(l.label, "facebook");
        assert_eq!(l.values, vec!["https://facebook.com/example"]);
        assert_eq!(l.shape, LineShape::Separator);
    }

    #[test]
    fn paper_example_2_bare() {
        let l = parse_line("FB example").unwrap();
        assert_eq!(l.label, "fb");
        assert_eq!(l.values, vec!["example"]);
        assert_eq!(l.shape, LineShape::Bare);
    }

    #[test]
    fn paper_example_3_dash_separated() {
        let l = parse_line("fbs: example - example2 - example3").unwrap();
        assert_eq!(l.label, "fbs");
        assert_eq!(l.values, vec!["example", "example2", "example3"]);
    }

    #[test]
    fn paper_example_4_and_separated() {
        let l = parse_line("facebooks; example and example2").unwrap();
        assert_eq!(l.label, "facebooks");
        assert_eq!(l.values, vec!["example", "example2"]);
    }

    #[test]
    fn hyphenated_handles_survive() {
        let l = parse_line("ig: cool-handle").unwrap();
        assert_eq!(l.values, vec!["cool-handle"]);
    }

    #[test]
    fn comma_values() {
        let l = parse_line("Known aliases: one, two, three").unwrap();
        assert_eq!(l.values, vec!["one", "two", "three"]);
    }

    #[test]
    fn long_labels_rejected() {
        assert!(parse_line("this is a very long sentence with a colon: x").is_none());
    }

    #[test]
    fn bare_shape_requires_handle_like_values() {
        assert!(parse_line("FB not a handle at all here").is_none());
        assert!(parse_line("plain sentence without separators").is_none());
    }

    #[test]
    fn empty_and_blank_lines() {
        assert!(parse_line("").is_none());
        assert!(parse_line("   ").is_none());
        assert!(parse_line("label:").is_none());
        assert!(parse_line(":value").is_none());
    }

    #[test]
    fn parse_lines_filters() {
        let text = "Name: John Example\n\nrandom prose here that is long\nIP: 10.0.0.1\n";
        let lines = parse_lines(text);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].label, "name");
        assert_eq!(lines[1].label, "ip");
    }

    #[test]
    fn values_are_trimmed() {
        let l = parse_line("skype:   live.someone  ").unwrap();
        assert_eq!(l.values, vec!["live.someone"]);
    }
}
