//! Doxer-credit parsing.
//!
//! §5.3.2: credits "mention the aliases of the doxers or collaborating
//! parties for bragging, reputation or other reasons", e.g.
//! `dropped by DoxerAlice and @DoxerBob, thanks to Charlie (@DoxerCharlie)
//! for the SSN info`. [`extract_credits`] recovers the alias list plus any
//! attached Twitter handles; the Figure 2 clique analysis consumes these.

use serde::{Deserialize, Serialize};

/// One credited party.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Credit {
    /// The alias as written (without any `@`).
    pub alias: String,
    /// Twitter handle if one was attached (`@name` form or `alias (@name)`).
    pub twitter: Option<String>,
}

// The vendored serde cannot derive `Deserialize`; engine checkpoints
// round-trip extraction records by hand.
impl serde::Deserialize for Credit {
    fn from_value(value: &serde::value::Value) -> Option<Self> {
        Some(Credit {
            alias: value.get("alias")?.as_str()?.to_string(),
            twitter: match value.get("twitter")? {
                serde::value::Value::Null => None,
                other => Some(other.as_str()?.to_string()),
            },
        })
    }
}

/// Phrases that open a credit clause.
const OPENERS: &[&str] = &[
    "dropped by ",
    "doxed by ",
    "dox by ",
    "credit to ",
    "credits: ",
];
/// Phrases that attach additional parties.
const CONNECTORS: &[&str] = &[", thanks to ", " thanks to ", " with help from "];

/// Extract the credit list from a document.
pub fn extract_credits(text: &str) -> Vec<Credit> {
    let lower = text.to_lowercase();
    let mut out: Vec<Credit> = Vec::new();
    for opener in OPENERS {
        let mut search = 0usize;
        while let Some(rel) = lower[search..].find(opener) {
            let start = search + rel + opener.len();
            // The clause runs to end-of-line.
            let end = text[start..].find('\n').map_or(text.len(), |e| start + e);
            let clause = &text[start..end];
            parse_clause(clause, &mut out);
            search = end.min(lower.len());
            if search >= lower.len() {
                break;
            }
        }
    }
    dedup(out)
}

fn parse_clause(clause: &str, out: &mut Vec<Credit>) {
    // Split off connector tails first ("…, thanks to X for the info").
    let mut segments: Vec<&str> = vec![clause];
    for conn in CONNECTORS {
        segments = segments
            .into_iter()
            .flat_map(|s| split_insensitive(s, conn))
            .collect();
    }
    for seg in segments {
        // Trim trailing prose ("for the ssn info", "for the help").
        let seg = match find_insensitive(seg, " for ") {
            Some(i) => &seg[..i],
            None => seg,
        };
        for part in split_parties(seg) {
            if let Some(c) = parse_party(part) {
                out.push(c);
            }
        }
    }
}

fn split_insensitive<'a>(s: &'a str, sep: &str) -> Vec<&'a str> {
    let lower = s.to_lowercase();
    let sep_lower = sep.to_lowercase();
    let mut parts = Vec::new();
    let mut start = 0usize;
    let mut from = 0usize;
    while let Some(rel) = lower[from..].find(&sep_lower) {
        let at = from + rel;
        parts.push(&s[start..at]);
        start = at + sep.len();
        from = start;
    }
    parts.push(&s[start..]);
    parts
}

fn find_insensitive(s: &str, needle: &str) -> Option<usize> {
    s.to_lowercase().find(&needle.to_lowercase())
}

/// Split a party list on `" and "` and commas.
fn split_parties(seg: &str) -> Vec<&str> {
    split_insensitive(seg, " and ")
        .into_iter()
        .flat_map(|p| p.split(','))
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .collect()
}

/// Parse one party: `Alias`, `@handle`, or `Alias (@handle)`.
fn parse_party(part: &str) -> Option<Credit> {
    let part = part.trim().trim_end_matches('.');
    if part.is_empty() || part.split_whitespace().count() > 3 {
        return None;
    }
    // "Alias (@handle)" form.
    if let Some(open) = part.find('(') {
        let alias = part[..open].trim();
        let inner = part[open + 1..].trim_end_matches(')').trim();
        if alias.is_empty() {
            return None;
        }
        let twitter = inner.strip_prefix('@').map(str::to_string);
        return Some(Credit {
            alias: alias.to_string(),
            twitter,
        });
    }
    // "@handle" form: the handle is both alias and Twitter identity.
    if let Some(handle) = part.strip_prefix('@') {
        if !valid_alias(handle) {
            return None;
        }
        return Some(Credit {
            alias: handle.to_string(),
            twitter: Some(handle.to_string()),
        });
    }
    if !valid_alias(part) {
        return None;
    }
    Some(Credit {
        alias: part.to_string(),
        twitter: None,
    })
}

fn valid_alias(a: &str) -> bool {
    !a.is_empty()
        && a.len() <= 30
        && a.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.'))
}

fn dedup(credits: Vec<Credit>) -> Vec<Credit> {
    let mut out: Vec<Credit> = Vec::new();
    for c in credits {
        if let Some(existing) = out
            .iter_mut()
            .find(|e| e.alias.eq_ignore_ascii_case(&c.alias))
        {
            if existing.twitter.is_none() {
                existing.twitter = c.twitter;
            }
        } else {
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_parses_fully() {
        let text = "dox below\ndropped by DoxerAlice and @DoxerBob, thanks to \
                    Charlie (@DoxerCharlie) for the SSN info";
        let credits = extract_credits(text);
        assert_eq!(credits.len(), 3);
        assert_eq!(credits[0].alias, "DoxerAlice");
        assert_eq!(credits[0].twitter, None);
        assert_eq!(credits[1].alias, "DoxerBob");
        assert_eq!(credits[1].twitter.as_deref(), Some("DoxerBob"));
        assert_eq!(credits[2].alias, "Charlie");
        assert_eq!(credits[2].twitter.as_deref(), Some("DoxerCharlie"));
    }

    #[test]
    fn single_credit() {
        let credits = extract_credits("dropped by GrimReaper_12");
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].alias, "GrimReaper_12");
    }

    #[test]
    fn comma_list() {
        let credits = extract_credits("dropped by A1x, B2y and C3z");
        let aliases: Vec<&str> = credits.iter().map(|c| c.alias.as_str()).collect();
        assert_eq!(aliases, vec!["A1x", "B2y", "C3z"]);
    }

    #[test]
    fn alternate_openers() {
        assert_eq!(
            extract_credits("doxed by NullFang_3")[0].alias,
            "NullFang_3"
        );
        assert_eq!(extract_credits("credit to HexWolf_9")[0].alias, "HexWolf_9");
    }

    #[test]
    fn clause_stops_at_newline() {
        let credits = extract_credits("dropped by OnlyMe_1\nName: Not A Credit");
        assert_eq!(credits.len(), 1);
    }

    #[test]
    fn trailing_prose_trimmed() {
        let credits = extract_credits("dropped by Vex_7 for the lulz");
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].alias, "Vex_7");
    }

    #[test]
    fn no_credits_in_plain_text() {
        assert!(extract_credits("Name: John\nPhone: 555-0100").is_empty());
        assert!(extract_credits("").is_empty());
    }

    #[test]
    fn multiword_garbage_rejected() {
        let credits = extract_credits("dropped by someone who shall remain nameless forever");
        assert!(credits.is_empty(), "{credits:?}");
    }

    #[test]
    fn duplicate_aliases_merge_keeping_twitter() {
        let text = "dropped by Omen_5\ndropped by @Omen_5";
        let credits = extract_credits(text);
        assert_eq!(credits.len(), 1);
        assert_eq!(credits[0].twitter.as_deref(), Some("Omen_5"));
    }

    #[test]
    fn case_insensitive_opener() {
        let credits = extract_credits("Dropped By ShadowKing_2");
        assert_eq!(credits.len(), 1);
    }
}
